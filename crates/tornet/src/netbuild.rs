//! Assembling whole Tor networks inside the fluid simulator.
//!
//! [`TorNet`] owns a [`Net`] plus the relays running on its hosts. It
//! knows how to express Tor traffic as fluid flows:
//!
//! * **circuit flows** — a download through a sequence of relays crosses,
//!   at each relay, the host NICs, the rate limiter, the background gate,
//!   and the CPU;
//! * **echo (measurement) flows** — FlashFlow's send/decrypt/return loop
//!   from a measurer to a target crosses the measurer NICs and the
//!   target's limiter + CPU + both NIC directions, skipping the
//!   background gate (measurement traffic is exempt from the ratio rule).
//!
//! Each tick it advances the engine, feeds every relay's forwarded bytes
//! into its observed-bandwidth tracker, and runs the ratio governors of
//! relays under measurement.

use flashflow_simnet::engine::{FlowId, TickReport};
use flashflow_simnet::flow::FlowSpec;
use flashflow_simnet::host::{HostId, HostProfile, Net};
use flashflow_simnet::resource::Resource;
use flashflow_simnet::stats::SecondsAccumulator;
use flashflow_simnet::tcp::TcpProfile;
use flashflow_simnet::time::{SimDuration, SimTime};
use flashflow_simnet::units::Rate;

use crate::relay::{BackgroundReporting, Relay, RelayConfig, RelayId, RelaySecondReport};
use crate::sched::{background_allowance, RatioGovernor, Scheduler};

/// Per-relay CPU overhead fraction per crossing socket (calibrated so the
/// Appendix C sockets sweep declines gently past its peak).
pub const CPU_SOCKET_OVERHEAD: f64 = 0.0013;

/// A measurement in progress at a relay, tracked for the governor.
#[derive(Debug)]
struct ActiveMeasurement {
    target: RelayId,
    flows: Vec<FlowId>,
}

/// A Tor network: hosts, relays, and Tor-aware flow construction.
#[derive(Debug)]
pub struct TorNet {
    /// The underlying host/engine network.
    pub net: Net,
    relays: Vec<Relay>,
    active: Vec<ActiveMeasurement>,
}

impl TorNet {
    /// An empty network.
    pub fn new() -> Self {
        TorNet { net: Net::new(), relays: Vec::new(), active: Vec::new() }
    }

    /// Wraps an existing [`Net`].
    pub fn from_net(net: Net) -> Self {
        TorNet { net, relays: Vec::new(), active: Vec::new() }
    }

    /// Adds a host (delegates to the inner net).
    pub fn add_host(&mut self, profile: HostProfile) -> HostId {
        self.net.add_host(profile)
    }

    /// Adds a relay on `host`, creating its limiter, CPU, and gate
    /// resources. The CPU capacity comes from the host profile's
    /// single-threaded Tor capacity.
    pub fn add_relay(&mut self, host: HostId, config: RelayConfig) -> RelayId {
        let tor_cpu = self.net.profile(host).tor_cpu;
        let virtualized = self.net.profile(host).virtualized;
        let cpu = self.net.engine_mut().add_resource(Resource::cpu(
            format!("{}/cpu", config.name),
            tor_cpu,
            CPU_SOCKET_OVERHEAD,
        ));
        if let Some(rng) = self.net.fork_jitter_rng() {
            let sigma = if virtualized {
                flashflow_simnet::host::JITTER_SIGMA_VIRTUAL
            } else {
                flashflow_simnet::host::JITTER_SIGMA_DEDICATED
            };
            self.net.engine_mut().add_jitter(cpu, sigma, flashflow_simnet::host::JITTER_AR, rng);
        }
        self.add_relay_with_cpu(host, config, cpu)
    }

    /// Adds a relay that shares an existing CPU resource — two relays on
    /// one machine (the §5 MyFamily/Sybil scenario) contend for the same
    /// cell-processing capacity.
    pub fn add_relay_with_cpu(
        &mut self,
        host: HostId,
        config: RelayConfig,
        cpu: flashflow_simnet::resource::ResourceId,
    ) -> RelayId {
        let limiter = match config.rate_limit {
            Some(rate) => {
                let burst = config.burst_bytes.unwrap_or_else(|| rate.bytes_per_sec());
                self.net.engine_mut().add_resource(Resource::token_bucket(
                    format!("{}/limit", config.name),
                    rate,
                    burst,
                ))
            }
            None => self
                .net
                .engine_mut()
                .add_resource(Resource::unlimited(format!("{}/limit", config.name))),
        };
        let bg_gate = self
            .net
            .engine_mut()
            .add_resource(Resource::unlimited(format!("{}/bg-gate", config.name)));
        self.relays.push(Relay {
            host,
            cpu,
            limiter,
            bg_gate,
            config,
            observed: Default::default(),
            obs_acc: SecondsAccumulator::new(),
            governor: None,
            bg_report_acc: SecondsAccumulator::new(),
            bg_actual_acc: SecondsAccumulator::new(),
        });
        RelayId(self.relays.len() - 1)
    }

    /// Number of relays.
    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }

    /// Immutable access to a relay.
    pub fn relay(&self, id: RelayId) -> &Relay {
        &self.relays[id.0]
    }

    /// Mutable access to a relay.
    pub fn relay_mut(&mut self, id: RelayId) -> &mut Relay {
        &mut self.relays[id.0]
    }

    /// Iterates over all relay ids.
    pub fn relay_ids(&self) -> impl Iterator<Item = RelayId> {
        (0..self.relays.len()).map(RelayId)
    }

    /// The resources normal (client) traffic crosses at a relay, in path
    /// order: host rx, limiter, background gate, CPU, host tx.
    pub fn background_segment(&self, id: RelayId) -> Vec<flashflow_simnet::resource::ResourceId> {
        let r = &self.relays[id.0];
        vec![self.net.rx(r.host), r.limiter, r.bg_gate, r.cpu, self.net.tx(r.host)]
    }

    /// The resources measurement traffic crosses at a relay (no
    /// background gate).
    pub fn measurement_segment(&self, id: RelayId) -> Vec<flashflow_simnet::resource::ResourceId> {
        let r = &self.relays[id.0];
        vec![self.net.rx(r.host), r.limiter, r.cpu, self.net.tx(r.host)]
    }

    /// Flow spec for a download from `server` through `path` (exit first
    /// in the transmission direction: the path slice is ordered
    /// client-side first, as circuits are built) to `client`.
    pub fn circuit_flow_spec(&self, server: HostId, path: &[RelayId], client: HostId) -> FlowSpec {
        assert!(!path.is_empty(), "circuit needs at least one relay");
        let mut resources = vec![self.net.tx(server)];
        // Data flows server → exit → … → guard → client.
        for relay in path.iter().rev() {
            resources.extend(self.background_segment(*relay));
        }
        resources.push(self.net.rx(client));
        FlowSpec::new(resources)
    }

    /// Flow spec for FlashFlow's echo loop: measurer → target → measurer.
    /// The rate of this flow is the target's forwarded measurement
    /// throughput.
    pub fn echo_flow_spec(&self, measurer: HostId, target: RelayId) -> FlowSpec {
        let r = &self.relays[target.0];
        let mut resources = vec![self.net.tx(measurer)];
        resources.extend(self.measurement_segment(target));
        resources.push(self.net.rx(measurer));
        // The relay's NIC carries the cells inbound and outbound; with
        // separate rx/tx resources a single crossing each captures that.
        let _ = r;
        FlowSpec::new(resources)
    }

    /// End-to-end RTT of a circuit (client → relays → server and back).
    pub fn circuit_rtt(&self, client: HostId, path: &[RelayId], server: HostId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut prev = client;
        for relay in path {
            let host = self.relays[relay.0].host;
            total += self.net.rtt(prev, host);
            prev = host;
        }
        total += self.net.rtt(prev, server);
        total
    }

    /// Starts an aggregate of `sockets` client download connections from
    /// `server` through `path` to `client`, scheduled by `scheduler` at
    /// the relays and capped by the circuit window over the end-to-end
    /// RTT.
    pub fn start_client_traffic(
        &mut self,
        server: HostId,
        path: &[RelayId],
        client: HostId,
        sockets: u32,
        scheduler: Scheduler,
    ) -> FlowId {
        let rtt = self.circuit_rtt(client, path, server).as_secs_f64().max(1e-4);
        let window_cap = f64::from(sockets.max(1)) * crate::circuit::circuit_window_rate_cap(rtt);
        let mut spec = self.circuit_flow_spec(server, path, client).with_sockets(sockets);
        let mut cap = window_cap;
        if let Some(sched_cap) = scheduler.bundle_cap(sockets) {
            cap = cap.min(sched_cap);
        }
        spec = spec.with_cap(cap);
        let server_host = server;
        let profile: TcpProfile = self.net.tcp_profile(server_host, client);
        self.net.engine_mut().start_tcp_flow(spec, profile)
    }

    /// Starts a measurement echo flow of `sockets` sockets from
    /// `measurer` against `target`, rate-limited at the measurer side to
    /// `allocation` (the `a_i` of §4.1, enforced via `BandwidthRate` on
    /// the measurer's Tor processes).
    pub fn start_measurement_flow(
        &mut self,
        measurer: HostId,
        target: RelayId,
        sockets: u32,
        allocation: Option<Rate>,
    ) -> FlowId {
        let target_host = self.relays[target.0].host;
        let mut spec = self.echo_flow_spec(measurer, target).with_sockets(sockets);
        if let Some(rate) = allocation {
            spec = spec.with_cap(rate.bytes_per_sec());
        }
        let profile = self.net.tcp_profile(measurer, target_host);
        self.net.engine_mut().start_tcp_flow(spec, profile)
    }

    /// Marks `target` as under measurement: installs the ratio governor
    /// over the given measurement flows. The background gate starts at
    /// the governor floor and tracks `x · r/(1−r)` each tick.
    pub fn begin_measurement(&mut self, target: RelayId, flows: Vec<FlowId>) {
        let ratio = self.relays[target.0].config.ratio;
        let relay = &mut self.relays[target.0];
        relay.governor = Some(RatioGovernor::new(ratio));
        relay.bg_report_acc = SecondsAccumulator::new();
        relay.bg_actual_acc = SecondsAccumulator::new();
        self.active.push(ActiveMeasurement { target, flows });
    }

    /// Ends a measurement: removes the governor and reopens the gate.
    pub fn end_measurement(&mut self, target: RelayId) {
        self.active.retain(|m| m.target != target);
        let relay = &mut self.relays[target.0];
        relay.governor = None;
        let gate = relay.bg_gate;
        self.net.engine_mut().resource_mut(gate).set_capacity(Rate::from_gbit(10_000.0));
    }

    /// Forwarded bytes at a relay during the last tick (its Tor
    /// throughput, the quantity observed-bandwidth tracks).
    pub fn relay_forwarded_last_tick(&self, id: RelayId) -> f64 {
        self.net.engine().resource_bytes_last_tick(self.relays[id.0].cpu)
    }

    /// Background (client) bytes forwarded at a relay during the last
    /// tick.
    pub fn relay_background_last_tick(&self, id: RelayId) -> f64 {
        self.net.engine().resource_bytes_last_tick(self.relays[id.0].bg_gate)
    }

    /// Completed per-second background reports for a relay under
    /// measurement: `(reported, actual)` pairs (§4.1's `y_j` plus ground
    /// truth). Honest relays report the truth; lying relays report the
    /// ratio allowance.
    pub fn relay_background_seconds(&self, id: RelayId) -> Vec<RelaySecondReport> {
        let relay = &self.relays[id.0];
        relay
            .bg_report_acc
            .seconds()
            .iter()
            .zip(relay.bg_actual_acc.seconds())
            .map(|(rep, act)| RelaySecondReport {
                reported_background: *rep,
                actual_background: *act,
            })
            .collect()
    }

    /// Advances the simulation one tick: engine, observed bandwidth,
    /// ratio governors, and background reporting.
    pub fn tick(&mut self) -> TickReport {
        let report = self.net.engine_mut().tick();
        let dt = self.net.engine().tick_duration().as_secs_f64();

        // Measurement traffic per relay under measurement.
        let mut meas_bytes: Vec<(RelayId, f64)> = Vec::with_capacity(self.active.len());
        for m in &self.active {
            let bytes: f64 =
                m.flows.iter().map(|f| self.net.engine().flow_bytes_last_tick(*f)).sum();
            meas_bytes.push((m.target, bytes));
        }

        for (target, bytes) in meas_bytes {
            let (gate, cap, ratio, reporting, actual_bg) = {
                let relay = &self.relays[target.0];
                let governor = relay.governor.expect("active measurement has governor");
                let x_rate = bytes / dt;
                (
                    relay.bg_gate,
                    governor.gate_capacity(x_rate),
                    governor.r,
                    relay.config.reporting,
                    self.net.engine().resource_bytes_last_tick(relay.bg_gate),
                )
            };
            self.net.engine_mut().resource_mut(gate).set_capacity(Rate::from_bytes_per_sec(cap));
            let reported = match reporting {
                BackgroundReporting::Honest => actual_bg,
                BackgroundReporting::InflateToAllowance => background_allowance(bytes, ratio),
            };
            let relay = &mut self.relays[target.0];
            relay.bg_report_acc.push(reported, dt);
            relay.bg_actual_acc.push(actual_bg, dt);
        }

        // Observed bandwidth: feed forwarded bytes, drain whole seconds.
        for i in 0..self.relays.len() {
            let bytes = self.net.engine().resource_bytes_last_tick(self.relays[i].cpu);
            let relay = &mut self.relays[i];
            relay.obs_acc.push(bytes, dt);
            let completed = relay.obs_acc.seconds().len();
            let already = relay.observed.seconds_elapsed() as usize;
            for s in already..completed {
                let v = relay.obs_acc.seconds()[s];
                relay.observed.push_second(v);
            }
        }

        report
    }

    /// Runs for `duration`, ticking the Tor layer each step.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now() + duration;
        while self.now() < end {
            self.tick();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.engine().now()
    }
}

impl Default for TorNet {
    fn default() -> Self {
        TorNet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::stats::median;

    fn small_net() -> (TorNet, HostId, HostId, HostId, RelayId) {
        let mut tor = TorNet::new();
        let measurer = tor.add_host(HostProfile::host_nl());
        let target_host = tor.add_host(HostProfile::us_sw());
        let client = tor.add_host(HostProfile::new("client", Rate::from_gbit(1.0)));
        tor.net.set_rtt(measurer, target_host, SimDuration::from_millis(137));
        tor.net.set_rtt(client, target_host, SimDuration::from_millis(50));
        let relay = tor.add_relay(target_host, RelayConfig::new("target"));
        (tor, measurer, target_host, client, relay)
    }

    #[test]
    fn echo_flow_reaches_relay_capacity() {
        let (mut tor, measurer, _, _, relay) = small_net();
        let flow = tor.start_measurement_flow(measurer, relay, 160, None);
        tor.run_for(SimDuration::from_secs(30));
        let rate = Rate::from_bytes_per_sec(tor.net.engine().flow_rate(flow));
        // US-SW relay: CPU 890 Mbit/s is the bottleneck (NIC 954).
        assert!(rate.as_mbit() > 700.0, "rate {rate}");
        assert!(rate.as_mbit() <= 900.0, "rate {rate}");
    }

    #[test]
    fn rate_limited_relay_bounded() {
        let mut tor = TorNet::new();
        let m = tor.add_host(HostProfile::host_nl());
        let h = tor.add_host(HostProfile::us_sw());
        let relay =
            tor.add_relay(h, RelayConfig::new("limited").with_rate_limit(Rate::from_mbit(250.0)));
        let flow = tor.start_measurement_flow(m, relay, 160, None);
        tor.run_for(SimDuration::from_secs(10));
        let rate = Rate::from_bytes_per_sec(tor.net.engine().flow_rate(flow));
        assert!((rate.as_mbit() - 250.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn observed_bandwidth_rises_after_flood() {
        let (mut tor, measurer, _, _, relay) = small_net();
        // Idle: observed stays zero.
        tor.run_for(SimDuration::from_secs(5));
        assert_eq!(tor.relay(relay).observed.observed().bytes_per_sec(), 0.0);
        // Flood for 20 seconds (like the §3.4 speed test).
        let flow = tor.start_measurement_flow(measurer, relay, 160, None);
        tor.run_for(SimDuration::from_secs(20));
        tor.net.engine_mut().stop_flow(flow);
        tor.run_for(SimDuration::from_secs(5));
        let observed = tor.relay(relay).observed.observed();
        assert!(observed.as_mbit() > 700.0, "observed {observed}");
    }

    #[test]
    fn ratio_governor_limits_background() {
        let (mut tor, measurer, target_host, _, relay) = small_net();
        let client = tor.add_host(HostProfile::new("c2", Rate::from_gbit(1.0)));
        let server = tor.add_host(HostProfile::new("s2", Rate::from_gbit(1.0)));
        tor.net.set_rtt(client, target_host, SimDuration::from_millis(40));
        tor.net.set_rtt(server, target_host, SimDuration::from_millis(40));

        // Plenty of client demand through the relay.
        let _bg = tor.start_client_traffic(server, &[relay], client, 40, Scheduler::Kist);
        tor.run_for(SimDuration::from_secs(10));
        let bg_before = tor.relay_background_last_tick(relay);
        assert!(bg_before > 0.0);

        // Start a measurement with ratio 0.25 and a strong measurer.
        let flow = tor.start_measurement_flow(measurer, relay, 160, None);
        tor.begin_measurement(relay, vec![flow]);
        tor.run_for(SimDuration::from_secs(20));

        let dt = tor.net.engine().tick_duration().as_secs_f64();
        let x = tor.net.engine().flow_bytes_last_tick(flow) / dt;
        let y = tor.relay_background_last_tick(relay) / dt;
        let frac = y / (x + y);
        assert!(frac <= 0.25 + 0.03, "background fraction {frac}");

        // After the measurement ends, background recovers.
        tor.end_measurement(relay);
        tor.net.engine_mut().stop_flow(flow);
        tor.run_for(SimDuration::from_secs(10));
        let bg_after = tor.relay_background_last_tick(relay);
        assert!(bg_after > y * dt, "background did not recover");
    }

    #[test]
    fn honest_and_lying_reports_differ() {
        let (mut tor, measurer, _, _, _) = small_net();
        let h2 = tor.add_host(HostProfile::us_sw());
        let liar = tor.add_relay(
            h2,
            RelayConfig::new("liar")
                .with_inflated_reporting()
                .with_rate_limit(Rate::from_mbit(200.0)),
        );
        let flow = tor.start_measurement_flow(measurer, liar, 160, None);
        tor.begin_measurement(liar, vec![flow]);
        tor.run_for(SimDuration::from_secs(10));
        let reports = tor.relay_background_seconds(liar);
        assert!(!reports.is_empty());
        // The liar forwards no client traffic but reports the allowance.
        let reported: Vec<f64> = reports.iter().map(|r| r.reported_background).collect();
        let actual: Vec<f64> = reports.iter().map(|r| r.actual_background).collect();
        assert!(median(&reported).unwrap() > 0.0);
        assert_eq!(median(&actual).unwrap(), 0.0);
    }

    #[test]
    fn shared_cpu_relays_contend() {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::host_nl());
        let m2 = tor.add_host(HostProfile::us_e());
        let h = tor.add_host(HostProfile::us_sw());
        let r1 = tor.add_relay(h, RelayConfig::new("sybil-a"));
        let cpu = tor.relay(r1).cpu;
        let r2 = tor.add_relay_with_cpu(h, RelayConfig::new("sybil-b"), cpu);
        let f1 = tor.start_measurement_flow(m1, r1, 80, None);
        let f2 = tor.start_measurement_flow(m2, r2, 80, None);
        tor.run_for(SimDuration::from_secs(20));
        let rate1 = tor.net.engine().flow_rate(f1);
        let rate2 = tor.net.engine().flow_rate(f2);
        let total = Rate::from_bytes_per_sec(rate1 + rate2);
        // Together they cannot exceed the shared machine's capacity.
        assert!(total.as_mbit() < 930.0, "total {total}");
    }

    #[test]
    fn circuit_rtt_sums_links() {
        let (tor, _m, target_host, client, relay) = small_net();
        let rtt = tor.circuit_rtt(client, &[relay], target_host);
        // client→relay (50 ms) + relay→server(=target host, ~0).
        assert!(rtt >= SimDuration::from_millis(50));
        assert!(rtt < SimDuration::from_millis(60));
    }
}
