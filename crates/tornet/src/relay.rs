//! Fluid-level Tor relays: rate limits, CPU, ratio enforcement, and
//! observed-bandwidth tracking.
//!
//! A relay contributes three resources to the engine beyond its host NICs:
//!
//! * a **token bucket** implementing `RelayBandwidthRate`/`Burst` (§2) —
//!   the burst allowance produces the one-second spike at measurement
//!   start visible in Figure 7;
//! * a **CPU** modelling Tor's single-threaded cell processing (Appendix
//!   C: 1,248 Mbit/s on the lab hardware, 890 Mbit/s on US-SW), with a
//!   small per-socket overhead so throughput declines past the socket
//!   sweet spot (Figures 11/14);
//! * a **background gate** the ratio governor (§4.1) tightens while the
//!   relay is being measured, so normal traffic never exceeds the fraction
//!   `r` of the total.
//!
//! Honest relays report the normal traffic they actually forwarded during
//! a measurement; a malicious relay can report the maximum the ratio
//! allows while forwarding none (§5) — the [`BackgroundReporting`] policy
//! selects which.

use flashflow_simnet::host::HostId;
use flashflow_simnet::resource::ResourceId;
use flashflow_simnet::stats::SecondsAccumulator;
use flashflow_simnet::units::Rate;

use crate::observed::ObservedBandwidth;
use crate::sched::RatioGovernor;

/// Identifies a relay within a [`crate::netbuild::TorNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelayId(pub(crate) usize);

impl RelayId {
    /// The raw index of this relay.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How a relay reports its forwarded normal traffic during a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackgroundReporting {
    /// Report the truth (what actually crossed the background gate).
    #[default]
    Honest,
    /// Report the maximum the ratio permits while forwarding nothing —
    /// the §5 inflation strategy bounded by `1/(1-r)`.
    InflateToAllowance,
}

/// Static configuration of a relay.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Display name.
    pub name: String,
    /// `RelayBandwidthRate`: sustained rate limit, if any.
    pub rate_limit: Option<Rate>,
    /// `RelayBandwidthBurst`: burst depth in bytes (defaults to one second
    /// of the rate limit).
    pub burst_bytes: Option<f64>,
    /// Maximum normal-traffic fraction `r` enforced during measurement.
    pub ratio: f64,
    /// Reporting honesty during measurements.
    pub reporting: BackgroundReporting,
}

impl RelayConfig {
    /// An unlimited, honest relay with the paper's default ratio
    /// `r = 0.25`.
    pub fn new(name: impl Into<String>) -> Self {
        RelayConfig {
            name: name.into(),
            rate_limit: None,
            burst_bytes: None,
            ratio: 0.25,
            reporting: BackgroundReporting::Honest,
        }
    }

    /// Applies a `RelayBandwidthRate` limit.
    pub fn with_rate_limit(mut self, limit: Rate) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// Overrides the burst depth in bytes.
    pub fn with_burst(mut self, burst_bytes: f64) -> Self {
        self.burst_bytes = Some(burst_bytes);
        self
    }

    /// Sets the measurement ratio `r`.
    ///
    /// # Panics
    /// Panics if `r` is outside `[0, 1)`.
    pub fn with_ratio(mut self, r: f64) -> Self {
        assert!((0.0..1.0).contains(&r), "ratio must be in [0,1)");
        self.ratio = r;
        self
    }

    /// Makes the relay lie about its background traffic (§5's bounded
    /// inflation attack).
    pub fn with_inflated_reporting(mut self) -> Self {
        self.reporting = BackgroundReporting::InflateToAllowance;
        self
    }
}

/// Per-second traffic record a measured relay produces (its side of the
/// §4.1 protocol).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RelaySecondReport {
    /// Bytes of normal (client) traffic the relay *claims* to have
    /// forwarded this second.
    pub reported_background: f64,
    /// Bytes of normal traffic it actually forwarded (ground truth, not
    /// visible to the BWAuth).
    pub actual_background: f64,
}

/// Runtime state of one relay.
#[derive(Debug)]
pub struct Relay {
    /// Host the relay runs on.
    pub host: HostId,
    /// CPU resource (cell processing).
    pub cpu: ResourceId,
    /// Token-bucket rate limiter.
    pub limiter: ResourceId,
    /// Background gate tightened during measurement.
    pub bg_gate: ResourceId,
    /// Static configuration.
    pub config: RelayConfig,
    /// Observed-bandwidth self-measurement state.
    pub observed: ObservedBandwidth,
    pub(crate) obs_acc: SecondsAccumulator,
    pub(crate) governor: Option<RatioGovernor>,
    /// Per-second background reports accumulated during the current
    /// measurement.
    pub(crate) bg_report_acc: SecondsAccumulator,
    pub(crate) bg_actual_acc: SecondsAccumulator,
}

impl Relay {
    /// True while a measurement governor is installed.
    pub fn under_measurement(&self) -> bool {
        self.governor.is_some()
    }

    /// The measurement ratio currently enforced, if measuring.
    pub fn active_ratio(&self) -> Option<f64> {
        self.governor.map(|g| g.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_defaults() {
        let c = RelayConfig::new("r1");
        assert_eq!(c.ratio, 0.25);
        assert!(c.rate_limit.is_none());
        assert_eq!(c.reporting, BackgroundReporting::Honest);
    }

    #[test]
    fn config_builder_options() {
        let c = RelayConfig::new("r2")
            .with_rate_limit(Rate::from_mbit(250.0))
            .with_ratio(0.1)
            .with_inflated_reporting();
        assert_eq!(c.rate_limit, Some(Rate::from_mbit(250.0)));
        assert_eq!(c.ratio, 0.1);
        assert_eq!(c.reporting, BackgroundReporting::InflateToAllowance);
    }

    #[test]
    #[should_panic]
    fn invalid_ratio_rejected() {
        let _ = RelayConfig::new("bad").with_ratio(1.0);
    }
}
