//! Onion-layer cryptography for the substrate.
//!
//! FlashFlow's security argument needs three things from the crypto layer
//! (§4.1, §5): (1) a per-circuit key exchange so the measurer and target
//! share keys, (2) per-hop stream encryption whose *cost* the target must
//! pay on every measurement cell (this is what makes the measurement
//! demonstrate forwarding capacity), and (3) cell contents that a relay
//! cannot predict without doing that work, so random spot-checks catch
//! forged echoes.
//!
//! We implement a keyed xorshift-family stream cipher and a
//! Diffie–Hellman-style handshake over the multiplicative group modulo the
//! Mersenne prime 2⁶¹−1. **This is NOT cryptographically secure** — the
//! sanctioned offline dependency set has no cipher crate, and the
//! reproduction needs structural properties (commutativity, determinism,
//! unpredictability-without-key *within the simulation*) rather than
//! real-world confidentiality. DESIGN.md §1 records this substitution.

/// The Mersenne prime 2^61 - 1: modulus of the handshake group.
pub const DH_MODULUS: u64 = (1 << 61) - 1;
/// Generator of a large subgroup mod [`DH_MODULUS`].
pub const DH_GENERATOR: u64 = 7;

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A party's secret handshake exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(u64);

/// A party's public handshake value `g^secret mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(u64);

/// The symmetric key two parties derive from the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedKey(u64);

impl SecretKey {
    /// Derives a secret key from raw entropy.
    pub fn from_entropy(entropy: u64) -> Self {
        // Keep the exponent in [2, p-2].
        SecretKey(2 + entropy % (DH_MODULUS - 3))
    }

    /// This secret's public value.
    pub fn public(self) -> PublicKey {
        PublicKey(powmod(DH_GENERATOR, self.0, DH_MODULUS))
    }

    /// Completes the handshake against a peer's public value.
    pub fn shared_with(self, peer: PublicKey) -> SharedKey {
        SharedKey(powmod(peer.0, self.0, DH_MODULUS))
    }
}

impl SharedKey {
    /// Builds a shared key directly from raw material (e.g. for tests or
    /// pre-shared measurement keys).
    pub fn from_raw(raw: u64) -> Self {
        SharedKey(raw)
    }

    /// Raw key material.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A deterministic keystream generator (xoshiro256** keyed by the shared
/// key and a direction nonce) applied as an XOR stream cipher.
#[derive(Debug, Clone)]
pub struct StreamCipher {
    s: [u64; 4],
    buffer: u64,
    buffered: usize,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StreamCipher {
    /// Creates a cipher keyed by `key` with a direction/instance `nonce`.
    /// Encryption and decryption are the same operation; the two endpoints
    /// must construct ciphers with identical parameters and apply them to
    /// the same byte positions in order.
    pub fn new(key: SharedKey, nonce: u64) -> Self {
        let mut sm = key.0 ^ nonce.rotate_left(32) ^ 0x5851_F42D_4C95_7F2D;
        StreamCipher {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
            buffer: 0,
            buffered: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn next_byte(&mut self) -> u8 {
        if self.buffered == 0 {
            self.buffer = self.next_u64();
            self.buffered = 8;
        }
        let b = (self.buffer & 0xFF) as u8;
        self.buffer >>= 8;
        self.buffered -= 1;
        b
    }

    /// XORs the keystream into `buf` in place (encrypt == decrypt).
    pub fn apply(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b ^= self.next_byte();
        }
    }
}

/// The onion encryption state for one circuit as held by the client:
/// one keyed cipher pair (forward/backward) per hop.
#[derive(Debug)]
pub struct OnionCrypto {
    forward: Vec<StreamCipher>,
    backward: Vec<StreamCipher>,
}

/// Nonce tag for the forward (client → exit) direction.
pub const NONCE_FORWARD: u64 = 0xF0F0_0001;
/// Nonce tag for the backward (exit → client) direction.
pub const NONCE_BACKWARD: u64 = 0x0B0B_0002;

impl OnionCrypto {
    /// Builds the client-side layered state from the per-hop shared keys,
    /// ordered guard first.
    pub fn new(hop_keys: &[SharedKey]) -> Self {
        OnionCrypto {
            forward: hop_keys.iter().map(|k| StreamCipher::new(*k, NONCE_FORWARD)).collect(),
            backward: hop_keys.iter().map(|k| StreamCipher::new(*k, NONCE_BACKWARD)).collect(),
        }
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.forward.len()
    }

    /// Client-side encryption for an outbound payload: applies each hop's
    /// forward cipher from the last hop inward, so that each relay peels
    /// exactly one layer.
    pub fn encrypt_outbound(&mut self, payload: &mut [u8]) {
        for cipher in self.forward.iter_mut().rev() {
            cipher.apply(payload);
        }
    }

    /// Client-side decryption for an inbound payload: peels each hop's
    /// backward layer guard-first (the reverse of what relays applied).
    pub fn decrypt_inbound(&mut self, payload: &mut [u8]) {
        for cipher in self.backward.iter_mut() {
            cipher.apply(payload);
        }
    }
}

/// One relay's view of a circuit's crypto: it peels a single forward layer
/// and adds a single backward layer.
#[derive(Debug)]
pub struct RelayLayer {
    forward: StreamCipher,
    backward: StreamCipher,
}

impl RelayLayer {
    /// Builds the relay-side state from the hop's shared key.
    pub fn new(key: SharedKey) -> Self {
        RelayLayer {
            forward: StreamCipher::new(key, NONCE_FORWARD),
            backward: StreamCipher::new(key, NONCE_BACKWARD),
        }
    }

    /// Peels this relay's layer from an outbound payload.
    pub fn peel_outbound(&mut self, payload: &mut [u8]) {
        self.forward.apply(payload);
    }

    /// Adds this relay's layer to an inbound payload.
    pub fn add_inbound(&mut self, payload: &mut [u8]) {
        self.backward.apply(payload);
    }
}

/// A 64-bit FNV-1a digest used for cell integrity spot checks.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_is_commutative() {
        let a = SecretKey::from_entropy(123456789);
        let b = SecretKey::from_entropy(987654321);
        assert_eq!(a.shared_with(b.public()), b.shared_with(a.public()));
    }

    #[test]
    fn different_peers_different_keys() {
        let a = SecretKey::from_entropy(1);
        let b = SecretKey::from_entropy(2);
        let c = SecretKey::from_entropy(3);
        assert_ne!(a.shared_with(b.public()), a.shared_with(c.public()));
    }

    #[test]
    fn stream_cipher_round_trips() {
        let key = SharedKey::from_raw(42);
        let mut enc = StreamCipher::new(key, 7);
        let mut dec = StreamCipher::new(key, 7);
        let mut data = *b"attack at dawn, bring cells";
        let orig = data;
        enc.apply(&mut data);
        assert_ne!(data, orig);
        dec.apply(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn cipher_differs_by_nonce() {
        let key = SharedKey::from_raw(42);
        let mut a = StreamCipher::new(key, 1);
        let mut b = StreamCipher::new(key, 2);
        let mut da = [0u8; 16];
        let mut db = [0u8; 16];
        a.apply(&mut da);
        b.apply(&mut db);
        assert_ne!(da, db);
    }

    #[test]
    fn onion_layers_peel_in_order() {
        // Client encrypts for 3 hops; each relay peels one layer; the exit
        // sees plaintext.
        let keys: Vec<SharedKey> = (1..=3).map(SharedKey::from_raw).collect();
        let mut client = OnionCrypto::new(&keys);
        let mut relays: Vec<RelayLayer> = keys.iter().map(|k| RelayLayer::new(*k)).collect();

        let mut payload = *b"forward secret payload";
        let plain = payload;
        client.encrypt_outbound(&mut payload);
        for (i, relay) in relays.iter_mut().enumerate() {
            assert_ne!(payload, plain, "hop {i} saw plaintext early");
            relay.peel_outbound(&mut payload);
        }
        assert_eq!(payload, plain);
    }

    #[test]
    fn onion_inbound_round_trips() {
        let keys: Vec<SharedKey> = (10..13).map(SharedKey::from_raw).collect();
        let mut client = OnionCrypto::new(&keys);
        let mut relays: Vec<RelayLayer> = keys.iter().map(|k| RelayLayer::new(*k)).collect();

        let mut payload = *b"reply travelling back";
        let plain = payload;
        // The exit adds its layer first, then middle, then guard.
        for relay in relays.iter_mut().rev() {
            relay.add_inbound(&mut payload);
        }
        client.decrypt_inbound(&mut payload);
        assert_eq!(payload, plain);
    }

    #[test]
    fn single_hop_measurement_echo_round_trip() {
        // FlashFlow's measurement circuit has exactly one hop: the target.
        let key = SharedKey::from_raw(0xFEED);
        let mut measurer = OnionCrypto::new(&[key]);
        let mut target = RelayLayer::new(key);

        let mut cells: Vec<[u8; 32]> = Vec::new();
        for i in 0..50u8 {
            let mut cell = [i; 32];
            let orig = cell;
            measurer.encrypt_outbound(&mut cell);
            target.peel_outbound(&mut cell); // target decrypts
            assert_eq!(cell, orig, "target must recover the random bytes");
            cells.push(cell);
        }
        assert_eq!(cells.len(), 50);
    }

    #[test]
    fn digest_detects_mutation() {
        let d1 = digest(b"cell contents");
        let mut mutated = *b"cell contents";
        mutated[3] ^= 1;
        assert_ne!(d1, digest(&mutated));
        assert_eq!(d1, digest(b"cell contents"));
    }

    #[test]
    fn powmod_small_cases() {
        assert_eq!(powmod(2, 10, 1_000_003), 1024);
        assert_eq!(powmod(7, 0, 11), 1);
        assert_eq!(powmod(5, 3, 13), 125 % 13);
    }
}
