//! Process-wide metric registries: atomic counters, gauges, and
//! fixed-bucket histograms cheap enough for the blast hot path.
//!
//! A [`Counter`] is one `Arc<AtomicU64>`; incrementing it from a frame
//! parser is a single relaxed fetch-add, and handles clone freely so a
//! per-connection parser can feed a process-global total without locks.
//! The [`MetricsRegistry`] is only touched at registration and snapshot
//! time — never per byte — so the registry's interior mutex stays off
//! every hot path by construction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// A monotonically increasing `u64` metric. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter starting at zero, not attached to any registry.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable `i64` metric (pool idle depth, live sessions, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge starting at zero, not attached to any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // ORDERING: Relaxed is sufficient — a gauge is a monitoring
        // sample with no reader synchronizing on it; a scrape may see
        // a slightly stale value but never a torn one.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive) of each bucket, ascending; one implicit
    /// overflow bucket follows.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations. Buckets are chosen
/// at construction (no resizing, no allocation on observe); recording
/// is a short bounds scan plus three relaxed atomics.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper `bounds`
    /// plus an implicit overflow bucket.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                total: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let inner = &*self.inner;
        let bucket = inner.bounds.iter().position(|&b| value <= b).unwrap_or(inner.bounds.len());
        inner.counts[bucket].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self.inner.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the final cell is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named collection of metrics, shared by cloning. Handles returned
/// by [`counter`](MetricsRegistry::counter) (and friends) are the live
/// cells: callers keep them and update without ever re-entering the
/// registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("counters lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.gauges.lock().expect("gauges lock").entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later calls return the existing histogram regardless of
    /// `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("histograms lock")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("counters lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("gauges lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("histograms lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A registry's state at one instant, ordered by name — what the
/// `--metrics-addr` endpoint dumps and `flashflow-top` tabulates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Counters by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The snapshot as one JSON object
    /// (`{"counters":{...},"gauges":{...},"histograms":{...}}`).
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().map(|(k, v)| (k.clone(), Json::Int(i128::from(*v)))).collect();
        let gauges =
            self.gauges.iter().map(|(k, v)| (k.clone(), Json::Int(i128::from(*v)))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        (
                            "bounds".to_string(),
                            Json::Arr(h.bounds.iter().map(|&b| Json::Int(i128::from(b))).collect()),
                        ),
                        (
                            "counts".to_string(),
                            Json::Arr(h.counts.iter().map(|&c| Json::Int(i128::from(c))).collect()),
                        ),
                        ("sum".to_string(), Json::Int(i128::from(h.sum))),
                        ("count".to_string(), Json::Int(i128::from(h.count))),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }

    /// Parses a snapshot previously encoded by
    /// [`to_json`](RegistrySnapshot::to_json).
    ///
    /// # Errors
    /// A static description of the first malformed field.
    pub fn parse(text: &str) -> Result<RegistrySnapshot, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let obj_pairs = |v: &Json| -> Result<Vec<(String, Json)>, String> {
            match v {
                Json::Obj(pairs) => Ok(pairs.clone()),
                _ => Err("expected an object".to_string()),
            }
        };
        let mut snap = RegistrySnapshot::default();
        if let Some(counters) = doc.get("counters") {
            for (k, v) in obj_pairs(counters)? {
                snap.counters.push((k, v.as_u64().ok_or("counter must be a u64")?));
            }
        }
        if let Some(gauges) = doc.get("gauges") {
            for (k, v) in obj_pairs(gauges)? {
                snap.gauges.push((k, v.as_i64().ok_or("gauge must be an i64")?));
            }
        }
        if let Some(histograms) = doc.get("histograms") {
            for (k, v) in obj_pairs(histograms)? {
                let arr = |key: &str| -> Result<Vec<u64>, String> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("histogram {k} missing {key}"))?
                        .iter()
                        .map(|x| x.as_u64().ok_or_else(|| format!("histogram {k}: bad {key}")))
                        .collect()
                };
                snap.histograms.push((
                    k.clone(),
                    HistogramSnapshot {
                        bounds: arr("bounds")?,
                        counts: arr("counts")?,
                        sum: v.get("sum").and_then(Json::as_u64).ok_or("bad histogram sum")?,
                        count: v
                            .get("count")
                            .and_then(Json::as_u64)
                            .ok_or("bad histogram count")?,
                    },
                ));
            }
        }
        Ok(snap)
    }

    /// A fixed-width text table of the snapshot, one metric per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<40} {value:>16}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:<40} {value:>16}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name:<40} count={} sum={}", h.count, h.sum);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_across_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("blast.received_bytes");
        let b = registry.counter("blast.received_bytes");
        a.add(5);
        b.inc();
        assert_eq!(registry.counter("blast.received_bytes").get(), 6);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 500] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 522);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter("a.count").add(u64::MAX);
        registry.gauge("b.depth").set(-3);
        registry.histogram("c.lat", &[1, 2, 4]).observe(3);
        let snap = registry.snapshot();
        let back = RegistrySnapshot::parse(&snap.to_json().to_string()).unwrap();
        assert_eq!(back, snap);
        assert!(snap.to_text().contains("a.count"));
    }
}
