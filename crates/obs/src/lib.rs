//! # flashflow-obs
//!
//! The workspace's telemetry core: metric registries, structured
//! events, sinks, and machine-readable period exports — with **zero
//! dependencies** (std only), because the build environment is offline
//! and because every other crate (including the wire-protocol hot path)
//! must be able to depend on this one without cycles.
//!
//! The pieces, bottom up:
//!
//! * [`json`] — a minimal JSON value/encoder/parser (no serde
//!   available); integers are `i128` so `u64` counters round-trip
//!   exactly.
//! * [`metrics`] — [`MetricsRegistry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s. Handles are
//!   `Arc<Atomic…>` clones: updating one from a frame parser is a
//!   single relaxed fetch-add, cheap enough for the blast hot path.
//! * [`event`] / [`sink`] — structured [`Event`]s with period → group →
//!   item → channel [`Scope`]s, emitted through a shared [`EventSink`]
//!   to human-text stderr, JSONL files, and a bounded in-memory ring;
//!   [`Span`]s carry scope prefixes through the layers.
//! * [`export`] — [`PeriodExport`], the JSON period result file with
//!   per-target [`Percentiles`] summaries and a one-screen CI text
//!   summary.

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{Event, Scope, Value};
pub use export::{
    fmt_rate, Percentiles, PeriodExport, PoolSummary, ReactorSummary, TargetSummary, EXPORT_SCHEMA,
};
pub use json::{Json, JsonError};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use sink::{EventSink, Span};
