//! Event sinks and spans: where [`Event`]s go once emitted.
//!
//! An [`EventSink`] is a cloneable handle shared by every thread of a
//! process. Each emitted event is rendered once per attached output —
//! human text (stderr) or JSONL (a file, a pipe) — and written as one
//! `write_all` under the output lock, so concurrent session threads can
//! never tear each other's lines (the historical `eprintln!` logging
//! interleaved mid-line under load). Independently of outputs, the sink
//! keeps a bounded in-memory ring of recent events for live consumers
//! such as `flashflow-top`.
//!
//! A [`Span`] is a sink plus a fixed [`Scope`] prefix; child spans add
//! coordinates (period → group → item → channel) so deep layers emit
//! fully-addressed events without threading indices by hand.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, Scope, Value};

/// Default capacity of the in-memory event ring.
const DEFAULT_RING: usize = 4096;

enum Format {
    Text,
    Jsonl,
}

struct Output {
    format: Format,
    writer: Box<dyn Write + Send>,
}

struct SinkInner {
    start: Instant,
    outputs: Mutex<Vec<Output>>,
    ring: Mutex<VecDeque<Event>>,
    ring_cap: usize,
}

/// A shared destination for structured events. Clones share state.
#[derive(Clone)]
pub struct EventSink {
    inner: Arc<SinkInner>,
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::new()
    }
}

impl EventSink {
    /// A sink with no outputs (events still land in the ring).
    pub fn new() -> Self {
        EventSink {
            inner: Arc::new(SinkInner {
                start: Instant::now(),
                outputs: Mutex::new(Vec::new()),
                ring: Mutex::new(VecDeque::new()),
                ring_cap: DEFAULT_RING,
            }),
        }
    }

    /// Attaches a human-text output writing to the process's stderr.
    #[must_use]
    pub fn with_stderr_text(self) -> Self {
        self.attach(Format::Text, Box::new(std::io::stderr()));
        self
    }

    /// Attaches a JSONL output writing to `writer`.
    #[must_use]
    pub fn with_jsonl(self, writer: Box<dyn Write + Send>) -> Self {
        self.attach(Format::Jsonl, writer);
        self
    }

    /// Attaches a JSONL output appending to the file at `path`
    /// (created if absent).
    ///
    /// # Errors
    /// Whatever opening the file returned.
    pub fn with_jsonl_path(self, path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        self.attach(Format::Jsonl, Box::new(file));
        Ok(self)
    }

    fn attach(&self, format: Format, writer: Box<dyn Write + Send>) {
        self.inner.outputs.lock().expect("outputs lock").push(Output { format, writer });
    }

    /// Emits one event at the current monotonic timestamp.
    pub fn emit(&self, kind: &str, scope: Scope, fields: Vec<(String, Value)>) {
        let event = Event {
            ts: self.inner.start.elapsed().as_secs_f64(),
            kind: kind.to_string(),
            scope,
            fields,
        };
        self.deliver(event);
    }

    fn deliver(&self, event: Event) {
        {
            let mut outputs = self.inner.outputs.lock().expect("outputs lock");
            for output in outputs.iter_mut() {
                let mut line = match output.format {
                    Format::Text => event.to_text_line(),
                    Format::Jsonl => event.to_json_line(),
                };
                line.push('\n');
                // One write per line keeps lines atomic even if the
                // descriptor is shared with another process.
                let _ = output.writer.write_all(line.as_bytes());
                let _ = output.writer.flush();
            }
        }
        let mut ring = self.inner.ring.lock().expect("ring lock");
        if ring.len() == self.inner.ring_cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// A copy of the retained recent events, oldest first.
    pub fn ring(&self) -> Vec<Event> {
        self.inner.ring.lock().expect("ring lock").iter().cloned().collect()
    }

    /// Seconds elapsed since the sink was created (the timescale of
    /// every event it stamps).
    pub fn elapsed(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64()
    }
}

/// A sink plus a fixed scope prefix. Cheap to clone and send across
/// worker threads; children narrow the scope.
#[derive(Clone)]
pub struct Span {
    sink: EventSink,
    scope: Scope,
}

impl Span {
    /// The root span (empty scope) over `sink`.
    pub fn root(sink: EventSink) -> Span {
        Span { sink, scope: Scope::root() }
    }

    /// The underlying sink.
    pub fn sink(&self) -> &EventSink {
        &self.sink
    }

    /// This span's scope.
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// A child span scoped to measurement period `period`.
    #[must_use]
    pub fn period(&self, period: u64) -> Span {
        let mut child = self.clone();
        child.scope.period = Some(period);
        child
    }

    /// A child span scoped to item group `group`.
    #[must_use]
    pub fn group(&self, group: u64) -> Span {
        let mut child = self.clone();
        child.scope.group = Some(group);
        child
    }

    /// A child span scoped to item `item`.
    #[must_use]
    pub fn item(&self, item: u64) -> Span {
        let mut child = self.clone();
        child.scope.item = Some(item);
        child
    }

    /// A child span scoped to data channel `channel`.
    #[must_use]
    pub fn channel(&self, channel: u64) -> Span {
        let mut child = self.clone();
        child.scope.channel = Some(channel);
        child
    }

    /// A child span scoped to control session `session`.
    #[must_use]
    pub fn session(&self, session: u64) -> Span {
        let mut child = self.clone();
        child.scope.session = Some(session);
        child
    }

    /// A child span stamped with cross-process trace id `trace`.
    #[must_use]
    pub fn trace(&self, trace: u64) -> Span {
        let mut child = self.clone();
        child.scope.trace = Some(trace);
        child
    }

    /// Emits `kind` with this span's scope and the given fields.
    pub fn emit(&self, kind: &str, fields: Vec<(String, Value)>) {
        self.sink.emit(kind, self.scope, fields);
    }

    /// Emits `kind` with no fields.
    pub fn event(&self, kind: &str) {
        self.emit(kind, Vec::new());
    }
}

/// Builds a field list tersely: `fields![bytes = 42, clean = true]`.
#[macro_export]
macro_rules! fields {
    ($($key:ident = $value:expr),* $(,)?) => {
        vec![$((stringify!($key).to_string(), $crate::event::Value::from($value))),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` that appends into a shared buffer.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_narrow_scope_and_events_reach_ring_and_writer() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = EventSink::new().with_jsonl(Box::new(SharedBuf(buf.clone())));
        let span = Span::root(sink.clone()).period(7).group(1).item(2);
        span.emit("slot.go", fields![at = 0.5f64]);
        span.channel(3).emit("channel.open", fields![addr = "127.0.0.1:1"]);

        let ring = sink.ring();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring[0].scope.period, Some(7));
        assert_eq!(ring[1].scope.channel, Some(3));

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back = Event::parse_json_line(lines[0]).unwrap();
        assert_eq!(back.kind, "slot.go");
        assert_eq!(back.scope.item, Some(2));
    }

    #[test]
    fn concurrent_emitters_never_tear_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = EventSink::new().with_jsonl(Box::new(SharedBuf(buf.clone())));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let sink = sink.clone();
                scope.spawn(move || {
                    let span = Span::root(sink).session(t);
                    for i in 0..50u64 {
                        span.emit("spam", fields![i = i, pad = "x".repeat(64)]);
                    }
                });
            }
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        for line in lines {
            Event::parse_json_line(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
        }
    }

    #[test]
    fn ring_is_bounded() {
        let sink = EventSink::new();
        let span = Span::root(sink.clone());
        for i in 0..(DEFAULT_RING as u64 + 10) {
            span.emit("tick", fields![i = i]);
        }
        let ring = sink.ring();
        assert_eq!(ring.len(), DEFAULT_RING);
        assert_eq!(ring[0].u64_field("i"), Some(10));
    }
}
