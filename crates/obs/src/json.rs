//! A minimal JSON value, encoder, and parser.
//!
//! The build environment has no crates.io access, so the workspace
//! cannot pull `serde_json`; everything machine-readable this crate
//! emits (JSONL events, registry snapshots, period exports, bench
//! records) goes through this module instead. The subset implemented is
//! exactly what those producers need — objects, arrays, strings with
//! standard escapes, booleans, null, and numbers — with one deliberate
//! extension over a naive float-only model: integers are carried as
//! `i128` so `u64` byte counters round-trip exactly instead of being
//! flattened through an `f64` (which silently loses precision past
//! 2^53).

use std::fmt;

/// Maximum nesting depth the parser accepts; anything deeper is a
/// hostile or corrupt document, not telemetry.
const MAX_DEPTH: usize = 64;

/// A parsed or to-be-encoded JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent. `i128` covers the
    /// full `u64` and `i64` ranges, so counters survive a round-trip
    /// bit-exactly.
    Int(i128),
    /// A number written with a fraction or exponent. Encoded with
    /// Rust's shortest-round-trip `Display`, so `parse(encode(x)) == x`
    /// for every finite `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (insertion order is
    /// preserved on encode; duplicate keys are kept as parsed).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input
    /// (modulo surrounding whitespace).
    ///
    /// # Errors
    /// A [`JsonError`] describing the first offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { pos, what: "trailing bytes after document" });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest representation that round-trips; force a
                    // fraction so the value re-parses as Num, not Int.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/inf; telemetry never produces
                    // them, but a lossy `null` beats invalid output.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (ix, item) in items.iter().enumerate() {
                    if ix > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (ix, (key, value)) in pairs.iter().enumerate() {
                    if ix > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Why a parse failed, with the byte offset of the offense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Static description of what went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, what: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { pos: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError { pos: *pos, what: "nesting too deep" });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError { pos: *pos, what: "unexpected end of input" }),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':' after object key")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError { pos: *pos, what: "expected ',' or '}'" }),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError { pos: *pos, what: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError { pos: *pos, what: "unknown literal" })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError { pos: start, what: "invalid number bytes" })?;
    if text.is_empty() || text == "-" {
        return Err(JsonError { pos: start, what: "expected a value" });
    }
    if fractional {
        let x: f64 =
            text.parse().map_err(|_| JsonError { pos: start, what: "malformed number" })?;
        Ok(Json::Num(x))
    } else {
        let i: i128 =
            text.parse().map_err(|_| JsonError { pos: start, what: "malformed integer" })?;
        Ok(Json::Int(i))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { pos: *pos, what: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pair: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(JsonError { pos: *pos, what: "lone high surrogate" });
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(JsonError { pos: *pos, what: "bad low surrogate" });
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or(JsonError { pos: *pos, what: "invalid codepoint" })?);
                    }
                    _ => return Err(JsonError { pos: *pos, what: "unknown escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError { pos: *pos, what: "invalid utf-8" })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses `\uXXXX`'s four hex digits; `pos` is left on the last digit
/// (the caller's shared `*pos += 1` completes the escape).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let digits = bytes
        .get(*pos + 1..*pos + 5)
        .ok_or(JsonError { pos: *pos, what: "truncated \\u escape" })?;
    let text =
        std::str::from_utf8(digits).map_err(|_| JsonError { pos: *pos, what: "bad \\u digits" })?;
    let code = u32::from_str_radix(text, 16)
        .map_err(|_| JsonError { pos: *pos, what: "bad \\u digits" })?;
    *pos += 4;
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::Num(2.0).to_string(), "2.0", "float stays float on encode");
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let v = Json::Int(i128::from(u64::MAX));
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nwith \"quotes\", tab\t, back\\slash, unicode ☃ and \u{0001}";
        let v = Json::Str(s.to_string());
        let encoded = v.to_string();
        assert!(!encoded.contains('\n'), "newlines must be escaped for JSONL: {encoded}");
        assert_eq!(Json::parse(&encoded).unwrap(), v);
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":true,"d":"x"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "\"abc", "tru", "1.2.3", "{\"a\" 1}", "[] []", "nul"] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
