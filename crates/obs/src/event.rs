//! Structured events: one record per observable occurrence, carrying a
//! monotonic timestamp, a dotted `kind`, the scope coordinates of the
//! period hierarchy (period → group → item → channel, plus the
//! cross-process trace id), and free-form typed fields.
//!
//! Every event has two faithful encodings: a single JSONL line (for
//! machines and replay) and a human text line (for operator stderr).
//! [`Event::to_json_line`] / [`Event::parse_json_line`] are exact
//! inverses for every representable event — the property test in this
//! module is the contract `flashflow-top`'s replay mode depends on.

use crate::json::Json;

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (byte counts, seconds, indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rates, ratios).
    F64(f64),
    /// A flag.
    Bool(bool),
    /// Free text (reasons, addresses, fingerprints).
    Str(String),
}

impl Value {
    /// The value as `u64` if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::Int(i128::from(*v)),
            Value::I64(v) => Json::Int(i128::from(*v)),
            Value::F64(v) => Json::Num(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(s) => Json::Str(s.clone()),
        }
    }

    fn from_json(json: &Json) -> Option<Value> {
        match json {
            // Non-negative integers decode as U64, negative as I64:
            // the JSON integer carries no signedness, so the encoding
            // canonicalizes (see `canonical` on [`Event`]'s docs).
            Json::Int(i) => u64::try_from(*i)
                .map(Value::U64)
                .ok()
                .or_else(|| i64::try_from(*i).map(Value::I64).ok()),
            Json::Num(x) => Some(Value::F64(*x)),
            Json::Bool(b) => Some(Value::Bool(*b)),
            Json::Str(s) => Some(Value::Str(s.clone())),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Where in the period hierarchy an event happened. All coordinates are
/// optional: a process-level event has none, a per-channel sample has
/// most of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Scope {
    /// Measurement period number.
    pub period: Option<u64>,
    /// Item group index within the period.
    pub group: Option<u64>,
    /// Item index within the group.
    pub item: Option<u64>,
    /// Data channel index.
    pub channel: Option<u64>,
    /// Control session id (process side).
    pub session: Option<u64>,
    /// Cross-process trace id: the coordinator-minted correlation key
    /// of one item-attempt, carried over the wire (protocol v6) and
    /// stamped by every peer — the join key that merges the
    /// coordinator's, the measurers', and the relay's JSONL streams
    /// into one causal record.
    pub trace: Option<u64>,
}

impl Scope {
    /// The empty scope.
    pub fn root() -> Scope {
        Scope::default()
    }

    const KEYS: [&'static str; 6] = ["period", "group", "item", "channel", "session", "trace"];

    fn slots(&self) -> [Option<u64>; 6] {
        [self.period, self.group, self.item, self.channel, self.session, self.trace]
    }

    fn set(&mut self, key: &str, value: u64) {
        match key {
            "period" => self.period = Some(value),
            "group" => self.group = Some(value),
            "item" => self.item = Some(value),
            "channel" => self.channel = Some(value),
            "session" => self.session = Some(value),
            "trace" => self.trace = Some(value),
            _ => {}
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds since the sink's start (monotonic, sub-ms resolution).
    pub ts: f64,
    /// Dotted event kind (`"period.start"`, `"session.sample"`, …).
    pub kind: String,
    /// Period-hierarchy coordinates.
    pub scope: Scope,
    /// Typed fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// The first field named `name`.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The first field named `name` as a `u64`.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        self.field(name).and_then(Value::as_u64)
    }

    /// The first field named `name` as an `f64`.
    pub fn f64_field(&self, name: &str) -> Option<f64> {
        self.field(name).and_then(Value::as_f64)
    }

    /// The event as one JSONL line (no trailing newline):
    /// `{"ts":…,"kind":…,<scope coords>,<fields…>}`. Scope coordinates
    /// and fields share the flat object; scope keys come first and are
    /// reserved (an event field named e.g. `"item"` would collide, so
    /// field names must avoid `ts`, `kind`, and the scope keys).
    pub fn to_json_line(&self) -> String {
        let mut pairs: Vec<(String, Json)> = vec![
            ("ts".to_string(), Json::Num(self.ts)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
        ];
        for (key, slot) in Scope::KEYS.iter().zip(self.scope.slots()) {
            if let Some(v) = slot {
                pairs.push(((*key).to_string(), Json::Int(i128::from(v))));
            }
        }
        for (key, value) in &self.fields {
            pairs.push((key.clone(), value.to_json()));
        }
        Json::Obj(pairs).to_string()
    }

    /// Parses one JSONL line back into an event.
    ///
    /// # Errors
    /// A description of the first malformed part.
    pub fn parse_json_line(line: &str) -> Result<Event, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        let Json::Obj(pairs) = &doc else {
            return Err("event line must be a JSON object".to_string());
        };
        let ts = doc.get("ts").and_then(Json::as_f64).ok_or("missing ts")?;
        let kind = doc.get("kind").and_then(Json::as_str).ok_or("missing kind")?.to_string();
        let mut scope = Scope::root();
        let mut fields = Vec::new();
        for (key, value) in pairs {
            if key == "ts" || key == "kind" {
                continue;
            }
            if Scope::KEYS.contains(&key.as_str()) {
                scope.set(key, value.as_u64().ok_or_else(|| format!("scope {key} not a u64"))?);
            } else {
                fields.push((
                    key.clone(),
                    Value::from_json(value)
                        .ok_or_else(|| format!("field {key} unrepresentable"))?,
                ));
            }
        }
        Ok(Event { ts, kind, scope, fields })
    }

    /// The event as one human-readable text line (no trailing newline):
    /// `[   12.345] kind period=0 item=2 bytes=4096 …`.
    pub fn to_text_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "[{:9.3}] {}", self.ts, self.kind);
        for (key, slot) in Scope::KEYS.iter().zip(self.scope.slots()) {
            if let Some(v) = slot {
                let _ = write!(out, " {key}={v}");
            }
        }
        for (key, value) in &self.fields {
            match value {
                Value::U64(v) => {
                    let _ = write!(out, " {key}={v}");
                }
                Value::I64(v) => {
                    let _ = write!(out, " {key}={v}");
                }
                Value::F64(v) => {
                    let _ = write!(out, " {key}={v:.3}");
                }
                Value::Bool(v) => {
                    let _ = write!(out, " {key}={v}");
                }
                Value::Str(s) => {
                    let _ = write!(out, " {key}={s:?}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_event() -> Event {
        Event {
            ts: 12.5,
            kind: "session.sample".to_string(),
            scope: Scope { period: Some(1), item: Some(2), ..Scope::root() },
            fields: vec![
                ("peer".to_string(), Value::U64(3)),
                ("bytes".to_string(), Value::U64(u64::MAX)),
                ("rate".to_string(), Value::F64(0.25)),
                ("clean".to_string(), Value::Bool(true)),
                ("addr".to_string(), Value::Str("127.0.0.1:9\nline".to_string())),
            ],
        }
    }

    #[test]
    fn json_line_round_trips() {
        let ev = sample_event();
        let line = ev.to_json_line();
        assert!(!line.contains('\n'), "JSONL lines must be newline-free: {line}");
        assert_eq!(Event::parse_json_line(&line).unwrap(), ev);
    }

    #[test]
    fn text_line_is_single_line_and_labelled() {
        let text = sample_event().to_text_line();
        assert!(!text.contains('\n'));
        assert!(text.contains("session.sample"));
        assert!(text.contains("period=1"));
        assert!(text.contains("bytes=18446744073709551615"));
    }

    #[test]
    fn field_accessors() {
        let ev = sample_event();
        assert_eq!(ev.u64_field("peer"), Some(3));
        assert_eq!(ev.f64_field("rate"), Some(0.25));
        assert!(ev.field("missing").is_none());
    }

    proptest! {
        #[test]
        fn any_event_round_trips_through_jsonl(
            ts in 0.0f64..1.0e6,
            period in 0u64..1000,
            item in 0u64..64,
            n_fields in 0usize..6,
            u in proptest::collection::vec(0u64..=u64::MAX, 6),
            f in proptest::collection::vec(-1.0e9f64..1.0e9, 6),
            s in proptest::collection::vec(0u32..4, 6),
        ) {
            let fields: Vec<(String, Value)> = (0..n_fields)
                .map(|i| {
                    let value = match s[i] {
                        0 => Value::U64(u[i]),
                        1 => Value::F64(f[i]),
                        2 => Value::Bool(u[i] % 2 == 0),
                        _ => Value::Str(format!("s-{}-\"quoted\"\n\t☃", u[i])),
                    };
                    (format!("f{i}"), value)
                })
                .collect();
            let ev = Event {
                ts,
                kind: format!("kind.{period}"),
                scope: Scope { period: Some(period), item: Some(item), ..Scope::root() },
                fields,
            };
            let line = ev.to_json_line();
            prop_assert!(!line.contains('\n'));
            let back = Event::parse_json_line(&line).unwrap();
            prop_assert_eq!(back, ev);
        }
    }
}
