//! Machine-readable period results: the JSON file a period writes for
//! consensus tooling and archives, and the one-screen text summary CI
//! logs print.
//!
//! A [`PeriodExport`] carries one [`TargetSummary`] per measured relay:
//! the accepted capacity estimate, audit provenance (clean sessions,
//! divergent ledger rows), and [`Percentiles`] of the per-second echo,
//! background, and combined series — the same five-number-plus-mean
//! summary as `flashflow-bench`'s `Boxplot` (paper Figure 9), computed
//! here with identical linear-interpolation quantiles so the two layers
//! can never disagree (the bench crate carries the conformance test).

use crate::json::Json;

/// Schema version stamped into every export.
pub const EXPORT_SCHEMA: u64 = 1;

/// Five-number summary plus mean: 5th percentile, quartiles, median,
/// mean, 95th percentile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 5th percentile.
    pub p5: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Mean.
    pub mean: f64,
    /// Third quartile.
    pub q3: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Percentiles {
    /// Computes the summary, or `None` for empty input.
    ///
    /// # Panics
    /// Panics if any value is NaN.
    pub fn of(values: &[f64]) -> Option<Percentiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
        Some(Percentiles {
            p5: interpolated(&sorted, 0.05),
            q1: interpolated(&sorted, 0.25),
            median: interpolated(&sorted, 0.5),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            q3: interpolated(&sorted, 0.75),
            p95: interpolated(&sorted, 0.95),
        })
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("p5".to_string(), Json::Num(self.p5)),
            ("q1".to_string(), Json::Num(self.q1)),
            ("median".to_string(), Json::Num(self.median)),
            ("mean".to_string(), Json::Num(self.mean)),
            ("q3".to_string(), Json::Num(self.q3)),
            ("p95".to_string(), Json::Num(self.p95)),
        ])
    }

    fn from_json(json: &Json) -> Result<Percentiles, String> {
        let num = |key: &str| {
            json.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing {key}"))
        };
        Ok(Percentiles {
            p5: num("p5")?,
            q1: num("q1")?,
            median: num("median")?,
            mean: num("mean")?,
            q3: num("q3")?,
            p95: num("p95")?,
        })
    }
}

/// Linear-interpolation quantile over pre-sorted values; the same rule
/// as `flashflow_simnet::stats::quantile` (and therefore `Boxplot`).
fn interpolated(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One relay's period result inside a [`PeriodExport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSummary {
    /// Relay fingerprint, lowercase hex.
    pub relay_fp: String,
    /// Accepted capacity estimate, bytes per second.
    pub capacity_bytes_per_sec: f64,
    /// True if every session of the item ended cleanly.
    pub clean: bool,
    /// Ledger rows that failed a cross-check.
    pub divergent_rows: u64,
    /// Number of measured seconds contributing to the series.
    pub seconds: u64,
    /// Per-second echoed measurement bytes (`x_j`).
    pub echo: Option<Percentiles>,
    /// Per-second reported background bytes (`y_j`).
    pub bg: Option<Percentiles>,
    /// Per-second combined estimate (`z_j = x_j + min(y_j, r·z_j)`).
    pub combined: Option<Percentiles>,
}

impl TargetSummary {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("relay_fp".to_string(), Json::Str(self.relay_fp.clone())),
            ("capacity_bytes_per_sec".to_string(), Json::Num(self.capacity_bytes_per_sec)),
            ("clean".to_string(), Json::Bool(self.clean)),
            ("divergent_rows".to_string(), Json::Int(i128::from(self.divergent_rows))),
            ("seconds".to_string(), Json::Int(i128::from(self.seconds))),
        ];
        for (key, summary) in [("echo", self.echo), ("bg", self.bg), ("combined", self.combined)] {
            if let Some(p) = summary {
                pairs.push((key.to_string(), p.to_json()));
            }
        }
        Json::Obj(pairs)
    }

    fn from_json(json: &Json) -> Result<TargetSummary, String> {
        let summary = |key: &str| match json.get(key) {
            Some(v) => Percentiles::from_json(v).map(Some),
            None => Ok(None),
        };
        Ok(TargetSummary {
            relay_fp: json
                .get("relay_fp")
                .and_then(Json::as_str)
                .ok_or("missing relay_fp")?
                .to_string(),
            capacity_bytes_per_sec: json
                .get("capacity_bytes_per_sec")
                .and_then(Json::as_f64)
                .ok_or("missing capacity_bytes_per_sec")?,
            clean: json.get("clean").and_then(Json::as_bool).ok_or("missing clean")?,
            divergent_rows: json
                .get("divergent_rows")
                .and_then(Json::as_u64)
                .ok_or("missing divergent_rows")?,
            seconds: json.get("seconds").and_then(Json::as_u64).ok_or("missing seconds")?,
            echo: summary("echo")?,
            bg: summary("bg")?,
            combined: summary("combined")?,
        })
    }
}

/// Connection-pool traffic over the period (dial/reuse/probe/discard
/// counts surfaced from the coordinator's pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSummary {
    /// Fresh TCP dials.
    pub dials: u64,
    /// Checkouts satisfied by an idle warm connection.
    pub reuses: u64,
    /// Idle connections discarded (failed probe, dead socket).
    pub discarded: u64,
    /// Keepalive probes sent.
    pub probes: u64,
    /// Idle connections parked at export time.
    pub idle: u64,
}

impl PoolSummary {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("dials".to_string(), Json::Int(i128::from(self.dials))),
            ("reuses".to_string(), Json::Int(i128::from(self.reuses))),
            ("discarded".to_string(), Json::Int(i128::from(self.discarded))),
            ("probes".to_string(), Json::Int(i128::from(self.probes))),
            ("idle".to_string(), Json::Int(i128::from(self.idle))),
        ])
    }

    fn from_json(json: &Json) -> Result<PoolSummary, String> {
        let int = |key: &str| {
            json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing pool {key}"))
        };
        Ok(PoolSummary {
            dials: int("dials")?,
            reuses: int("reuses")?,
            discarded: int("discarded")?,
            probes: int("probes")?,
            idle: int("idle")?,
        })
    }
}

/// Reactor-runtime health over the period, condensed from the
/// per-shard instruments a peer's `--metrics-addr` endpoint serves
/// (see `flashflow-procutil`'s `ReactorObs`): shard count, stall
/// count, live/backlog slot totals, and mean latencies of the three
/// loop histograms. Built with
/// [`from_snapshot`](ReactorSummary::from_snapshot) from a fetched
/// [`RegistrySnapshot`](crate::metrics::RegistrySnapshot).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReactorSummary {
    /// Shards that registered instruments under the prefix.
    pub shards: u64,
    /// Loop turns that blew the stall budget (`<prefix>.stalls`).
    pub stalls: u64,
    /// Live slab slots summed across shards at snapshot time.
    pub live: i64,
    /// Write-armed (backlogged) slots summed across shards.
    pub write_backlog: i64,
    /// Mean `epoll_wait` dwell across all shards' observations, µs.
    pub dwell_mean_us: f64,
    /// Mean per-`on_ready` dispatch latency, µs.
    pub dispatch_mean_us: f64,
    /// Mean tick-sweep overshoot beyond the configured cadence, µs.
    pub tick_jitter_mean_us: f64,
}

impl ReactorSummary {
    /// Condenses the `<prefix>.shard<i>.*` instruments of `snap` into
    /// one summary; `None` when the snapshot has no reactor metrics
    /// under `prefix` (an uninstrumented or pre-upgrade peer).
    pub fn from_snapshot(snap: &crate::metrics::RegistrySnapshot, prefix: &str) -> Option<Self> {
        let shard_prefix = format!("{prefix}.shard");
        let mut shards = 0u64;
        let mut live = 0i64;
        let mut backlog = 0i64;
        for (name, value) in &snap.gauges {
            let Some(rest) = name.strip_prefix(&shard_prefix) else { continue };
            if rest.ends_with(".slab_live") {
                shards += 1;
                live += value;
            } else if rest.ends_with(".write_backlog") {
                backlog += value;
            }
        }
        if shards == 0 {
            return None;
        }
        let mean_of = |suffix: &str| {
            let (sum, count) = snap
                .histograms
                .iter()
                .filter(|(name, _)| name.starts_with(&shard_prefix) && name.ends_with(suffix))
                .fold((0u64, 0u64), |(s, c), (_, h)| (s + h.sum, c + h.count));
            if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            }
        };
        let stalls = snap
            .counters
            .iter()
            .find(|(name, _)| *name == format!("{prefix}.stalls"))
            .map_or(0, |(_, v)| *v);
        Some(ReactorSummary {
            shards,
            stalls,
            live,
            write_backlog: backlog,
            dwell_mean_us: mean_of(".epoll_dwell_us"),
            dispatch_mean_us: mean_of(".dispatch_us"),
            tick_jitter_mean_us: mean_of(".tick_jitter_us"),
        })
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("shards".to_string(), Json::Int(i128::from(self.shards))),
            ("stalls".to_string(), Json::Int(i128::from(self.stalls))),
            ("live".to_string(), Json::Int(i128::from(self.live))),
            ("write_backlog".to_string(), Json::Int(i128::from(self.write_backlog))),
            ("dwell_mean_us".to_string(), Json::Num(self.dwell_mean_us)),
            ("dispatch_mean_us".to_string(), Json::Num(self.dispatch_mean_us)),
            ("tick_jitter_mean_us".to_string(), Json::Num(self.tick_jitter_mean_us)),
        ])
    }

    fn from_json(json: &Json) -> Result<ReactorSummary, String> {
        let int = |key: &str| {
            json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing reactor {key}"))
        };
        let num = |key: &str| {
            json.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing reactor {key}"))
        };
        Ok(ReactorSummary {
            shards: int("shards")?,
            stalls: int("stalls")?,
            live: json.get("live").and_then(Json::as_i64).ok_or("missing reactor live")?,
            write_backlog: json
                .get("write_backlog")
                .and_then(Json::as_i64)
                .ok_or("missing reactor write_backlog")?,
            dwell_mean_us: num("dwell_mean_us")?,
            dispatch_mean_us: num("dispatch_mean_us")?,
            tick_jitter_mean_us: num("tick_jitter_mean_us")?,
        })
    }
}

/// A full period's machine-readable result file.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodExport {
    /// Schema version ([`EXPORT_SCHEMA`]).
    pub schema: u64,
    /// Background ratio `r` the estimates used.
    pub ratio: f64,
    /// Worker shards the period ran across.
    pub shards: u64,
    /// One summary per measured relay, item order.
    pub targets: Vec<TargetSummary>,
    /// Pool traffic, when a pool drove the period.
    pub pool: Option<PoolSummary>,
    /// Reactor-runtime health of the serving peers, when the exporter
    /// had metrics snapshots to condense (absent otherwise — older
    /// exports parse unchanged).
    pub reactor: Option<ReactorSummary>,
}

impl PeriodExport {
    /// The export as a JSON document (single line; pipe through a
    /// pretty-printer for humans — the text summary exists for that).
    pub fn to_json_string(&self) -> String {
        let mut pairs = vec![
            ("schema".to_string(), Json::Int(i128::from(self.schema))),
            ("ratio".to_string(), Json::Num(self.ratio)),
            ("shards".to_string(), Json::Int(i128::from(self.shards))),
            (
                "targets".to_string(),
                Json::Arr(self.targets.iter().map(TargetSummary::to_json).collect()),
            ),
        ];
        if let Some(pool) = self.pool {
            pairs.push(("pool".to_string(), pool.to_json()));
        }
        if let Some(reactor) = self.reactor {
            pairs.push(("reactor".to_string(), reactor.to_json()));
        }
        Json::Obj(pairs).to_string()
    }

    /// Parses an export previously encoded by
    /// [`to_json_string`](PeriodExport::to_json_string).
    ///
    /// # Errors
    /// Describes the first malformed or missing field; an unknown
    /// schema version is rejected outright.
    pub fn parse(text: &str) -> Result<PeriodExport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.get("schema").and_then(Json::as_u64).ok_or("missing schema")?;
        if schema != EXPORT_SCHEMA {
            return Err(format!("unsupported schema {schema} (expected {EXPORT_SCHEMA})"));
        }
        Ok(PeriodExport {
            schema,
            ratio: doc.get("ratio").and_then(Json::as_f64).ok_or("missing ratio")?,
            shards: doc.get("shards").and_then(Json::as_u64).ok_or("missing shards")?,
            targets: doc
                .get("targets")
                .and_then(Json::as_arr)
                .ok_or("missing targets")?
                .iter()
                .map(TargetSummary::from_json)
                .collect::<Result<_, _>>()?,
            pool: match doc.get("pool") {
                Some(v) => Some(PoolSummary::from_json(v)?),
                None => None,
            },
            reactor: match doc.get("reactor") {
                Some(v) => Some(ReactorSummary::from_json(v)?),
                None => None,
            },
        })
    }

    /// The one-screen text summary CI logs print: a header, one row per
    /// target, and the pool line.
    pub fn text_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let clean = self.targets.iter().filter(|t| t.clean).count();
        let divergent: u64 = self.targets.iter().map(|t| t.divergent_rows).sum();
        let _ = writeln!(
            out,
            "period summary: {} targets ({} clean), {} divergent rows, r={}, {} shards",
            self.targets.len(),
            clean,
            divergent,
            self.ratio,
            self.shards,
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>7} {:>9} {:>12} {:>12}",
            "target", "capacity", "clean", "divergent", "echo.median", "bg.median"
        );
        for t in &self.targets {
            let fp = if t.relay_fp.len() > 16 { &t.relay_fp[..16] } else { &t.relay_fp };
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>7} {:>9} {:>12} {:>12}",
                fp,
                fmt_rate(t.capacity_bytes_per_sec),
                if t.clean { "yes" } else { "NO" },
                t.divergent_rows,
                t.echo.map_or_else(|| "-".to_string(), |p| fmt_rate(p.median)),
                t.bg.map_or_else(|| "-".to_string(), |p| fmt_rate(p.median)),
            );
        }
        if let Some(pool) = self.pool {
            let _ = writeln!(
                out,
                "  pool: {} dials, {} reuses, {} discarded, {} probes, {} idle",
                pool.dials, pool.reuses, pool.discarded, pool.probes, pool.idle
            );
        }
        if let Some(r) = self.reactor {
            let _ = writeln!(
                out,
                "  reactor: {} shards, {} stalls, {} live, {} backlogged, dwell {:.0}us, dispatch {:.0}us, jitter {:.0}us",
                r.shards,
                r.stalls,
                r.live,
                r.write_backlog,
                r.dwell_mean_us,
                r.dispatch_mean_us,
                r.tick_jitter_mean_us,
            );
        }
        out
    }
}

/// Formats a bytes-per-second rate with a binary-free SI-ish unit
/// (`"36.0 MB/s"`), stable across platforms for golden tests.
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    let magnitude = bytes_per_sec.abs();
    if magnitude >= 1e9 {
        format!("{:.1} GB/s", bytes_per_sec / 1e9)
    } else if magnitude >= 1e6 {
        format!("{:.1} MB/s", bytes_per_sec / 1e6)
    } else if magnitude >= 1e3 {
        format!("{:.1} kB/s", bytes_per_sec / 1e3)
    } else {
        format!("{bytes_per_sec:.0} B/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_export() -> PeriodExport {
        let series: Vec<f64> = (1..=30).map(f64::from).collect();
        PeriodExport {
            schema: EXPORT_SCHEMA,
            ratio: 0.25,
            shards: 2,
            targets: vec![
                TargetSummary {
                    relay_fp: "aa".repeat(20),
                    capacity_bytes_per_sec: 36_000_000.0,
                    clean: true,
                    divergent_rows: 0,
                    seconds: 30,
                    echo: Percentiles::of(&series),
                    bg: Percentiles::of(&[0.0; 30]),
                    combined: Percentiles::of(&series),
                },
                TargetSummary {
                    relay_fp: "bb".repeat(20),
                    capacity_bytes_per_sec: 150_000.5,
                    clean: false,
                    divergent_rows: 3,
                    seconds: 0,
                    echo: None,
                    bg: None,
                    combined: None,
                },
            ],
            pool: Some(PoolSummary { dials: 4, reuses: 8, discarded: 1, probes: 6, idle: 2 }),
            reactor: None,
        }
    }

    #[test]
    fn export_round_trips_and_summary_is_identical() {
        let export = sample_export();
        let text = export.to_json_string();
        let back = PeriodExport::parse(&text).unwrap();
        assert_eq!(back, export);
        assert_eq!(back.text_summary(), export.text_summary());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut export = sample_export();
        export.schema = 99;
        assert!(PeriodExport::parse(&export.to_json_string()).is_err());
    }

    #[test]
    fn text_summary_golden() {
        let summary = sample_export().text_summary();
        let expected = "period summary: 2 targets (1 clean), 3 divergent rows, r=0.25, 2 shards\n  target               capacity   clean divergent  echo.median    bg.median\n  aaaaaaaaaaaaaaaa    36.0 MB/s     yes         0       16 B/s        0 B/s\n  bbbbbbbbbbbbbbbb   150.0 kB/s      NO         3            -            -\n  pool: 4 dials, 8 reuses, 1 discarded, 6 probes, 2 idle\n";
        assert_eq!(summary, expected, "golden text summary drifted:\n{summary}");
    }

    #[test]
    fn reactor_block_round_trips_and_prints() {
        let mut export = sample_export();
        export.reactor = Some(ReactorSummary {
            shards: 4,
            stalls: 1,
            live: 12,
            write_backlog: 3,
            dwell_mean_us: 950.5,
            dispatch_mean_us: 12.25,
            tick_jitter_mean_us: 80.0,
        });
        let back = PeriodExport::parse(&export.to_json_string()).unwrap();
        assert_eq!(back, export);
        let summary = export.text_summary();
        assert!(
            summary.contains("reactor: 4 shards, 1 stalls, 12 live, 3 backlogged"),
            "{summary}"
        );
        // Absent block stays absent: the golden summary above proves
        // the old shape, this proves parse tolerance.
        assert_eq!(sample_export().reactor, None);
    }

    #[test]
    fn reactor_summary_condenses_a_registry_snapshot() {
        let registry = crate::metrics::MetricsRegistry::new();
        for shard in 0..2 {
            let h = registry
                .histogram(&format!("relay.reactor.shard{shard}.epoll_dwell_us"), &[1_000, 10_000]);
            h.observe(500);
            h.observe(1_500);
            registry
                .histogram(&format!("relay.reactor.shard{shard}.dispatch_us"), &[10, 100])
                .observe(4);
            registry
                .histogram(&format!("relay.reactor.shard{shard}.tick_jitter_us"), &[100])
                .observe(50);
            registry.gauge(&format!("relay.reactor.shard{shard}.slab_live")).set(5);
            registry.gauge(&format!("relay.reactor.shard{shard}.write_backlog")).set(1);
        }
        registry.counter("relay.reactor.stalls").add(3);
        let snap = registry.snapshot();

        let summary = ReactorSummary::from_snapshot(&snap, "relay.reactor").expect("present");
        assert_eq!(summary.shards, 2);
        assert_eq!(summary.stalls, 3);
        assert_eq!(summary.live, 10);
        assert_eq!(summary.write_backlog, 2);
        assert_eq!(summary.dwell_mean_us, 1000.0);
        assert_eq!(summary.dispatch_mean_us, 4.0);
        assert_eq!(summary.tick_jitter_mean_us, 50.0);

        assert_eq!(ReactorSummary::from_snapshot(&snap, "measurer.reactor"), None);
    }

    #[test]
    fn percentiles_match_linear_interpolation() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&v).unwrap();
        assert_eq!(p.median, 50.5);
        assert_eq!(p.mean, 50.5);
        assert!((p.p5 - 5.95).abs() < 1e-9);
        assert!((p.p95 - 95.05).abs() < 1e-9);
        assert!(Percentiles::of(&[]).is_none());
    }
}
