//! Equation (7): relative standard deviation of capacities and weights
//! (Appendix A, Figure 10).
//!
//! A perfect capacity estimator would report a constant advertised
//! bandwidth; variation indicates estimation error. The paper summarises
//! each relay by the mean over time of `RSD(A(r,t,p))` (and likewise for
//! normalized consensus weights).

use flashflow_simnet::stats::relative_std_dev;

use crate::archive::Archive;

/// Mean trailing-window RSD of advertised bandwidth per relay
/// (Fig. 10a): for each relay, the mean over its presence of the RSD of
/// the advertised bandwidths in the preceding `p` steps. Relays present
/// for fewer than `min_steps` are skipped.
pub fn mean_advertised_rsd_per_relay(archive: &Archive, p: usize, min_steps: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for r in archive.relay_ids() {
        let series = &archive.relay(r).advertised;
        if series.len() < min_steps {
            continue;
        }
        if let Some(v) = mean_trailing_rsd(series, p) {
            out.push(v);
        }
    }
    out
}

/// Mean trailing-window RSD of *normalized consensus weight* per relay
/// (Fig. 10b).
pub fn mean_weight_rsd_per_relay(archive: &Archive, p: usize, min_steps: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for r in archive.relay_ids() {
        let series = archive.relay(r);
        if series.len() < min_steps {
            continue;
        }
        let weights: Vec<f64> = (series.start_step..series.end_step())
            .map(|t| archive.normalized_weight(r, t).unwrap_or(0.0))
            .collect();
        if let Some(v) = mean_trailing_rsd(&weights, p) {
            out.push(v);
        }
    }
    out
}

/// The mean over all positions of the RSD of each trailing window of
/// `p` samples (windows shorter than 2 samples are skipped).
pub fn mean_trailing_rsd(values: &[f64], p: usize) -> Option<f64> {
    assert!(p >= 1, "window must be positive");
    let mut sum = 0.0;
    let mut n = 0usize;
    for t in 1..values.len() {
        let lo = t.saturating_sub(p - 1);
        let window = &values[lo..=t];
        if window.len() < 2 {
            continue;
        }
        if let Some(rsd) = relative_std_dev(window) {
            sum += rsd;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::RelaySeries;
    use crate::synth::{generate, SynthConfig};
    use flashflow_simnet::stats::median;

    #[test]
    fn constant_series_has_zero_rsd() {
        assert_eq!(mean_trailing_rsd(&[5.0; 20], 10), Some(0.0));
    }

    #[test]
    fn alternating_series_has_positive_rsd() {
        let v: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 10.0 } else { 20.0 }).collect();
        let rsd = mean_trailing_rsd(&v, 10).unwrap();
        assert!(rsd > 0.2, "rsd {rsd}");
    }

    #[test]
    fn rsd_grows_with_window_on_drifting_series() {
        // A slow ramp: short windows see little variation, long windows a lot.
        let v: Vec<f64> = (0..200).map(|i| 100.0 + i as f64).collect();
        let short = mean_trailing_rsd(&v, 4).unwrap();
        let long = mean_trailing_rsd(&v, 100).unwrap();
        assert!(long > short * 5.0, "short {short}, long {long}");
    }

    #[test]
    fn archive_rsd_ordering_matches_fig10() {
        let s = generate(&SynthConfig::test_scale(21));
        let (d, w, m, y) = s.archive.period_steps();
        let med = |p| median(&mean_advertised_rsd_per_relay(&s.archive, p, 8)).unwrap();
        let (md, mw, mm, my) = (med(d), med(w), med(m), med(y));
        assert!(md <= mw && mw <= mm && mm <= my, "medians {md:.3} {mw:.3} {mm:.3} {my:.3}");
        assert!(my > 0.1, "year-window RSD should be sizable: {my:.3}");
    }

    #[test]
    fn weight_rsd_computable() {
        let mut a = Archive::new(1.0, 30);
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![10.0; 30],
            weight: vec![1.0; 30],
        });
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![10.0; 30],
            weight: (0..30).map(|i| 1.0 + (i % 3) as f64).collect(),
        });
        let rsds = mean_weight_rsd_per_relay(&a, 10, 2);
        assert_eq!(rsds.len(), 2);
        // Both relays' normalized weights vary because the total varies.
        assert!(rsds[1] > 0.0);
    }
}
