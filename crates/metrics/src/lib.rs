//! # flashflow-metrics
//!
//! The paper's §3 TorFlow analysis: a model of the Tor metrics archive
//! (server descriptors + consensus weights), a statistically calibrated
//! synthetic 11-year corpus standing in for the real archives, and the
//! error/variation analyses of Equations (1)–(7).
//!
//! * [`archive`] — the time-gridded archive data model.
//! * [`synth`] — the synthetic corpus generator (DESIGN.md §1 records
//!   the substitution for the real archives).
//! * [`error`] — relay/network capacity and weight error (Figs. 1–4).
//! * [`variation`] — relative standard deviation (Fig. 10).
//! * [`speedtest`] — the §3.4 flood experiment (Fig. 5).

pub mod archive;
pub mod error;
pub mod speedtest;
pub mod synth;
pub mod variation;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::archive::{trailing_max, Archive, RelaySeries};
    pub use crate::error::{
        mean_rce_per_relay, mean_rwe_per_relay, nce_series, nwe_against_truth, nwe_series,
        rce_against_truth,
    };
    pub use crate::speedtest::{run_speed_test, SpeedTestConfig, SpeedTestOutcome};
    pub use crate::synth::{generate, RelayTruth, SynthArchive, SynthConfig};
    pub use crate::variation::{mean_advertised_rsd_per_relay, mean_weight_rsd_per_relay};
}
