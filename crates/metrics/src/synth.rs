//! Synthetic Tor metrics archive generation.
//!
//! The paper analyses 11 years of real archives; this reproduction
//! generates a statistically calibrated synthetic corpus instead
//! (DESIGN.md §1 records the substitution). The generator encodes the
//! paper's own explanation of the data (§3.3): relays are chronically
//! *under-utilised*, so their observed/advertised bandwidth tracks their
//! fluctuating load, not their capacity; utilisation varies on both fast
//! (daily) and slow (weekly/monthly) timescales; the network grows over
//! the years; relays churn.
//!
//! Each relay has:
//! * a fixed true capacity (log-normal across relays);
//! * a utilisation process `u(t) = clamp(base + slow AR(1) + fast AR(1))`;
//! * observed bandwidth = trailing 5-day max of throughput, published to
//!   its descriptor every 18 hours;
//! * a consensus weight = advertised × a slowly-wandering measurement
//!   ratio (TorFlow's noisy speed ratio).

use flashflow_simnet::rng::SimRng;

use crate::archive::{trailing_max, Archive, RelaySeries};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// RNG seed.
    pub seed: u64,
    /// Years covered by the archive.
    pub years: f64,
    /// Hours per step (real descriptors arrive every 18 h; 6 h resolves
    /// the daily structure the analysis windows need).
    pub step_hours: f64,
    /// Relay population at the start.
    pub initial_relays: usize,
    /// Relay population at the end (linear ramp).
    pub final_relays: usize,
    /// Mean relay lifetime in days (exponential churn).
    pub mean_lifetime_days: f64,
    /// Mean long-run utilisation across relays.
    pub utilization_mean: f64,
    /// Std-dev of the slow utilisation drift.
    pub utilization_slow_sigma: f64,
    /// Std-dev of the fast (per-step) utilisation noise.
    pub utilization_fast_sigma: f64,
    /// Log-std-dev of the TorFlow measurement ratio noise in weights.
    pub weight_noise_sigma: f64,
    /// Median relay capacity (bytes/s).
    pub median_capacity: f64,
    /// Log-std-dev of capacities across relays.
    pub capacity_sigma: f64,
}

impl SynthConfig {
    /// A configuration shaped like the paper's 2008–2019 corpus, scaled
    /// to a tractable relay count.
    pub fn paper_scale(seed: u64) -> Self {
        SynthConfig {
            seed,
            years: 11.0,
            step_hours: 6.0,
            initial_relays: 120,
            final_relays: 650,
            mean_lifetime_days: 400.0,
            utilization_mean: 0.45,
            utilization_slow_sigma: 0.22,
            utilization_fast_sigma: 0.10,
            weight_noise_sigma: 0.35,
            median_capacity: 12.5e6, // 100 Mbit/s
            capacity_sigma: 1.2,
        }
    }

    /// A small, fast configuration for tests.
    pub fn test_scale(seed: u64) -> Self {
        SynthConfig {
            years: 2.0,
            initial_relays: 30,
            final_relays: 60,
            ..SynthConfig::paper_scale(seed)
        }
    }

    /// Total steps on the grid.
    pub fn steps(&self) -> usize {
        ((self.years * 365.25 * 24.0) / self.step_hours).round() as usize
    }
}

/// Ground truth the generator knows but the archive's "observers" do not.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayTruth {
    /// The relay's true capacity (bytes/s).
    pub capacity: f64,
    /// First step present.
    pub start_step: usize,
    /// One past the last step present.
    pub end_step: usize,
}

/// A generated archive plus its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArchive {
    /// The observable archive (what §3's analysis consumes).
    pub archive: Archive,
    /// Per-relay ground truth, indexed like the archive's relays.
    pub truths: Vec<RelayTruth>,
}

/// Generates a synthetic archive.
pub fn generate(cfg: &SynthConfig) -> SynthArchive {
    let steps = cfg.steps();
    let mut archive = Archive::new(cfg.step_hours, steps);
    let mut truths = Vec::new();
    let mut rng = SimRng::seed_from_u64(cfg.seed);

    // Spawn schedule: linear population ramp with exponential lifetimes.
    // We spawn relays at a rate that sustains the ramp.
    let lifetime_steps = (cfg.mean_lifetime_days * 24.0 / cfg.step_hours).max(1.0);
    // Initial population spawns at step zero.
    let mut spawn_events: Vec<usize> = vec![0; cfg.initial_relays];
    // Ongoing: at each step, expected spawns = replacement + growth.
    let growth_per_step = (cfg.final_relays as f64 - cfg.initial_relays as f64) / steps as f64;
    let mut acc = 0.0f64;
    for t in 1..steps {
        let pop_now = cfg.initial_relays as f64 + growth_per_step * t as f64;
        let replacement = pop_now / lifetime_steps;
        acc += replacement + growth_per_step;
        while acc >= 1.0 {
            spawn_events.push(t);
            acc -= 1.0;
        }
    }

    let window_5d = ((5.0 * 24.0) / cfg.step_hours).round().max(1.0) as usize;
    let publish_every = ((18.0 / cfg.step_hours).round() as usize).max(1);

    for &start in &spawn_events {
        let capacity = cfg.median_capacity * rng.gen_lognormal(0.0, cfg.capacity_sigma);
        let lifetime = rng.gen_exponential(lifetime_steps).ceil().max(2.0) as usize;
        let end = (start + lifetime).min(steps);
        if end <= start + 1 {
            continue;
        }
        let n = end - start;

        // Utilisation: base + slow AR(1) + fast AR(1), clamped to [0, 1].
        let base = (cfg.utilization_mean + rng.gen_normal(0.0, 0.15)).clamp(0.05, 0.9);
        let slow_ar = 0.999f64;
        let fast_ar = 0.7f64;
        let mut slow = 0.0f64;
        let mut fast = 0.0f64;
        let mut throughput = Vec::with_capacity(n);
        for _ in 0..n {
            slow = slow_ar * slow
                + rng
                    .gen_normal(0.0, (1.0 - slow_ar * slow_ar).sqrt() * cfg.utilization_slow_sigma);
            fast = fast_ar * fast
                + rng
                    .gen_normal(0.0, (1.0 - fast_ar * fast_ar).sqrt() * cfg.utilization_fast_sigma);
            let u = (base + slow + fast).clamp(0.0, 1.0);
            throughput.push(capacity * u);
        }

        // Observed bandwidth: trailing 5-day max of throughput; advertised
        // updates only at descriptor publications.
        let observed = trailing_max(&throughput, window_5d);
        let mut advertised = Vec::with_capacity(n);
        let mut current = observed[0];
        for (i, &o) in observed.iter().enumerate() {
            if i % publish_every == 0 {
                current = o;
            }
            advertised.push(current.min(capacity));
        }

        // Consensus weight: advertised × measurement ratio. The ratio has
        // a *static* per-relay component plus a wandering component. The
        // static part is a mixture matching the paper's Fig. 3: a small
        // minority of relays is strongly over-weighted (TorFlow's speed
        // ratio flatters relays its probes happen to favour) while the
        // large majority sit slightly below their fair share — which
        // yields >80% under-weighting at a 20–30% total-variation error.
        let static_bias =
            if rng.gen_bool(0.10) { rng.gen_normal(1.5, 0.5) } else { rng.gen_normal(-0.15, 0.30) };
        let ratio_ar = 0.98f64;
        let mut log_ratio = rng.gen_normal(0.0, cfg.weight_noise_sigma);
        let mut weight = Vec::with_capacity(n);
        for &a in &advertised {
            log_ratio = ratio_ar * log_ratio
                + rng.gen_normal(0.0, (1.0 - ratio_ar * ratio_ar).sqrt() * cfg.weight_noise_sigma);
            weight.push(a * (static_bias + log_ratio).exp());
        }

        archive.add_relay(RelaySeries { start_step: start, advertised, weight });
        truths.push(RelayTruth { capacity, start_step: start, end_step: end });
    }

    SynthArchive { archive, truths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{mean_rce_per_relay, nce_series, nwe_series};
    use flashflow_simnet::stats::median;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::test_scale(5));
        let b = generate(&SynthConfig::test_scale(5));
        assert_eq!(a.archive, b.archive);
        let c = generate(&SynthConfig::test_scale(6));
        assert_ne!(a.archive, c.archive);
    }

    #[test]
    fn advertised_never_exceeds_capacity() {
        let s = generate(&SynthConfig::test_scale(7));
        for (r, truth) in s.truths.iter().enumerate() {
            for &a in &s.archive.relay(r).advertised {
                assert!(a <= truth.capacity + 1e-9);
            }
        }
    }

    #[test]
    fn population_grows() {
        let s = generate(&SynthConfig::test_scale(8));
        let early = s.archive.relay_ids().filter(|&r| s.archive.present(r, 10)).count();
        let late_step = s.archive.steps - 10;
        let late = s.archive.relay_ids().filter(|&r| s.archive.present(r, late_step)).count();
        assert!(late > early, "population should grow: {early} → {late}");
    }

    #[test]
    fn rce_increases_with_period_like_fig1() {
        let s = generate(&SynthConfig::test_scale(9));
        let (d, w, m, y) = s.archive.period_steps();
        let med = |p| median(&mean_rce_per_relay(&s.archive, p, 8)).unwrap();
        let (md, mw, mm, my) = (med(d), med(w), med(m), med(y));
        assert!(md < mw && mw < mm && mm <= my, "medians {md:.3} {mw:.3} {mm:.3} {my:.3}");
        assert!(md < 0.15, "day-window error should be small: {md:.3}");
        assert!(my > 0.10, "year-window error should be large: {my:.3}");
    }

    #[test]
    fn nce_is_substantial_at_year_window() {
        let s = generate(&SynthConfig::test_scale(10));
        let (_, _, _, y) = s.archive.period_steps();
        let series = nce_series(&s.archive, y);
        // Skip the first year (window warm-up).
        let tail = &series[series.len() / 2..];
        let med = median(tail).unwrap();
        assert!(med > 0.08, "median year-window NCE {med:.3}");
        assert!(med < 0.7, "median year-window NCE {med:.3}");
    }

    #[test]
    fn nwe_in_paper_range() {
        let s = generate(&SynthConfig::test_scale(11));
        let (d, ..) = s.archive.period_steps();
        let series = nwe_series(&s.archive, d);
        let tail = &series[series.len() / 2..];
        let med = median(tail).unwrap();
        // Paper: medians 21–30% depending on window; accept a band.
        assert!((0.08..0.45).contains(&med), "median NWE {med:.3}");
    }
}
