//! The Tor metrics archive model (§3).
//!
//! The Tor Project has published relay server descriptors and network
//! consensuses for over a decade; §3 analyses 11 years of them. This
//! module models that corpus: a time grid of fixed-length steps, and per
//! relay a presence window with an *advertised bandwidth* series (from
//! descriptors) and a *consensus weight* series (from consensuses).

/// One relay's time series within an archive.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaySeries {
    /// First step at which the relay is present.
    pub start_step: usize,
    /// Advertised bandwidth per step while present (bytes/s).
    pub advertised: Vec<f64>,
    /// Raw (unnormalized) consensus weight per step while present.
    pub weight: Vec<f64>,
}

impl RelaySeries {
    /// Number of steps the relay is present.
    pub fn len(&self) -> usize {
        self.advertised.len()
    }

    /// True if the relay never appears.
    pub fn is_empty(&self) -> bool {
        self.advertised.is_empty()
    }

    /// The step one past the relay's last presence.
    pub fn end_step(&self) -> usize {
        self.start_step + self.advertised.len()
    }
}

/// A time-gridded archive of descriptors and consensus weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Archive {
    /// Hours per step.
    pub step_hours: f64,
    /// Total steps covered.
    pub steps: usize,
    relays: Vec<RelaySeries>,
    /// Σ raw weight over present relays, per step (for normalisation).
    weight_totals: Vec<f64>,
}

impl Archive {
    /// An empty archive with the given grid.
    ///
    /// # Panics
    /// Panics if the grid is degenerate.
    pub fn new(step_hours: f64, steps: usize) -> Self {
        assert!(step_hours > 0.0 && step_hours.is_finite(), "bad step {step_hours}");
        assert!(steps > 0, "need at least one step");
        Archive { step_hours, steps, relays: Vec::new(), weight_totals: vec![0.0; steps] }
    }

    /// Adds a relay's series; returns its index.
    ///
    /// # Panics
    /// Panics if the series extends beyond the grid or the two series
    /// disagree in length.
    pub fn add_relay(&mut self, series: RelaySeries) -> usize {
        assert_eq!(series.advertised.len(), series.weight.len(), "series length mismatch");
        assert!(series.end_step() <= self.steps, "series exceeds archive grid");
        for (i, w) in series.weight.iter().enumerate() {
            self.weight_totals[series.start_step + i] += w;
        }
        self.relays.push(series);
        self.relays.len() - 1
    }

    /// Number of relays ever present.
    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }

    /// A relay's series.
    pub fn relay(&self, r: usize) -> &RelaySeries {
        &self.relays[r]
    }

    /// Whether relay `r` is present at step `t`.
    pub fn present(&self, r: usize, t: usize) -> bool {
        let s = &self.relays[r];
        t >= s.start_step && t < s.end_step()
    }

    /// Advertised bandwidth of `r` at `t`, if present.
    pub fn advertised(&self, r: usize, t: usize) -> Option<f64> {
        if !self.present(r, t) {
            return None;
        }
        Some(self.relays[r].advertised[t - self.relays[r].start_step])
    }

    /// Normalized consensus weight of `r` at `t`, if present.
    pub fn normalized_weight(&self, r: usize, t: usize) -> Option<f64> {
        if !self.present(r, t) {
            return None;
        }
        let total = self.weight_totals[t];
        if total <= 0.0 {
            return Some(0.0);
        }
        Some(self.relays[r].weight[t - self.relays[r].start_step] / total)
    }

    /// Converts a duration in hours to whole steps (at least 1).
    pub fn steps_for_hours(&self, hours: f64) -> usize {
        ((hours / self.step_hours).round() as usize).max(1)
    }

    /// Steps per common analysis periods: (day, week, month, year).
    pub fn period_steps(&self) -> (usize, usize, usize, usize) {
        (
            self.steps_for_hours(24.0),
            self.steps_for_hours(24.0 * 7.0),
            self.steps_for_hours(24.0 * 30.0),
            self.steps_for_hours(24.0 * 365.0),
        )
    }

    /// Iterates relay indices.
    pub fn relay_ids(&self) -> std::ops::Range<usize> {
        0..self.relays.len()
    }

    /// Total advertised bandwidth over present relays at `t`.
    pub fn total_advertised(&self, t: usize) -> f64 {
        self.relay_ids().filter_map(|r| self.advertised(r, t)).sum()
    }
}

/// Computes the trailing-window maximum of `values` for a window of
/// `window` samples **including the current one** — Eq. (1)'s
/// `C(r,t,p) = max(A(r,t,p))` on the step grid. Uses a monotonic deque
/// (O(n) total).
pub fn trailing_max(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be at least 1");
    let mut out = Vec::with_capacity(values.len());
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (i, &v) in values.iter().enumerate() {
        while let Some(&back) = deque.back() {
            if values[back] <= v {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        if let Some(&front) = deque.front() {
            if front + window <= i {
                deque.pop_front();
            }
        }
        out.push(values[*deque.front().expect("non-empty")]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_archive() -> Archive {
        let mut a = Archive::new(1.0, 10);
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![10.0; 10],
            weight: vec![1.0; 10],
        });
        a.add_relay(RelaySeries { start_step: 5, advertised: vec![30.0; 5], weight: vec![3.0; 5] });
        a
    }

    #[test]
    fn presence_windows() {
        let a = tiny_archive();
        assert!(a.present(0, 0));
        assert!(!a.present(1, 4));
        assert!(a.present(1, 5));
        assert!(a.present(1, 9));
        assert_eq!(a.advertised(1, 4), None);
        assert_eq!(a.advertised(1, 5), Some(30.0));
    }

    #[test]
    fn weights_normalize_per_step() {
        let a = tiny_archive();
        // Before relay 1 joins, relay 0 has all the weight.
        assert_eq!(a.normalized_weight(0, 0), Some(1.0));
        // After, weights split 1:3.
        assert_eq!(a.normalized_weight(0, 7), Some(0.25));
        assert_eq!(a.normalized_weight(1, 7), Some(0.75));
    }

    #[test]
    fn total_advertised_sums_present() {
        let a = tiny_archive();
        assert_eq!(a.total_advertised(0), 10.0);
        assert_eq!(a.total_advertised(9), 40.0);
    }

    #[test]
    fn trailing_max_window_semantics() {
        let v = [1.0, 5.0, 2.0, 2.0, 8.0, 1.0, 1.0, 1.0];
        assert_eq!(trailing_max(&v, 1), v.to_vec());
        let m3 = trailing_max(&v, 3);
        assert_eq!(m3, vec![1.0, 5.0, 5.0, 5.0, 8.0, 8.0, 8.0, 1.0]);
        let m100 = trailing_max(&v, 100);
        assert_eq!(m100.last(), Some(&8.0));
    }

    #[test]
    fn period_steps_scale_with_resolution() {
        let a = Archive::new(6.0, 100);
        let (d, w, m, y) = a.period_steps();
        assert_eq!(d, 4);
        assert_eq!(w, 28);
        assert_eq!(m, 120);
        assert_eq!(y, 1460);
    }

    #[test]
    #[should_panic]
    fn series_beyond_grid_rejected() {
        let mut a = Archive::new(1.0, 5);
        a.add_relay(RelaySeries { start_step: 3, advertised: vec![1.0; 5], weight: vec![1.0; 5] });
    }
}
