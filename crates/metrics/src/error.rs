//! Equations (1)–(6): capacity and weight error analysis (§3.1, §3.2).
//!
//! * Eq. (1): `C(r,t,p) = max(A(r,t,p))` — true-capacity proxy.
//! * Eq. (2): `RCE(r,t,p) = 1 − A(r,t)/C(r,t,p)` — relay capacity error.
//! * Eq. (3): `NCE(t,p) = 1 − ΣA/ΣC` — network capacity error.
//! * Eq. (4): normalized capacity `C̄(r,t,p)`.
//! * Eq. (5): `RWE(r,t,p) = W(r,t)/C̄(r,t,p)` — relay weight error.
//! * Eq. (6): `NWE(t,p) = ½ Σ|W − C̄|` — network weight error
//!   (total variation distance).

use crate::archive::{trailing_max, Archive};

/// Per-relay trailing-max capacity estimates (Eq. 1) for window `p`
/// steps: `result[r][i]` corresponds to the relay's local step `i`.
pub fn capacity_estimates(archive: &Archive, p: usize) -> Vec<Vec<f64>> {
    archive.relay_ids().map(|r| trailing_max(&archive.relay(r).advertised, p)).collect()
}

/// Mean relay capacity error per relay (the Fig. 1 distribution): for
/// each relay, the mean over its presence of Eq. (2). Relays present
/// for fewer than `min_steps` are skipped.
pub fn mean_rce_per_relay(archive: &Archive, p: usize, min_steps: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for r in archive.relay_ids() {
        let series = archive.relay(r);
        if series.len() < min_steps {
            continue;
        }
        let cmax = trailing_max(&series.advertised, p);
        let mut sum = 0.0;
        let mut n = 0usize;
        for (a, c) in series.advertised.iter().zip(&cmax) {
            if *c > 0.0 {
                sum += 1.0 - a / c;
                n += 1;
            }
        }
        if n > 0 {
            out.push(sum / n as f64);
        }
    }
    out
}

/// Network capacity error over time (Eq. 3, the Fig. 2 series): at each
/// step, `1 − Σ_r A(r,t) / Σ_r C(r,t,p)` over present relays.
pub fn nce_series(archive: &Archive, p: usize) -> Vec<f64> {
    let caps = capacity_estimates(archive, p);
    (0..archive.steps)
        .map(|t| {
            let mut sum_a = 0.0;
            let mut sum_c = 0.0;
            for r in archive.relay_ids() {
                if let Some(a) = archive.advertised(r, t) {
                    sum_a += a;
                    sum_c += caps[r][t - archive.relay(r).start_step];
                }
            }
            if sum_c > 0.0 {
                1.0 - sum_a / sum_c
            } else {
                0.0
            }
        })
        .collect()
}

/// Normalized capacity (Eq. 4) for every present relay at step `t`,
/// given precomputed per-relay capacity estimates.
fn normalized_capacities(archive: &Archive, caps: &[Vec<f64>], t: usize) -> Vec<(usize, f64)> {
    let mut entries = Vec::new();
    let mut total = 0.0;
    for r in archive.relay_ids() {
        if archive.present(r, t) {
            let c = caps[r][t - archive.relay(r).start_step];
            entries.push((r, c));
            total += c;
        }
    }
    if total > 0.0 {
        for e in &mut entries {
            e.1 /= total;
        }
    }
    entries
}

/// Mean relay weight error per relay (Eq. 5, the Fig. 3 distribution):
/// for each relay, the mean over its presence of `W(r,t)/C̄(r,t,p)`.
/// Values below 1 mean under-weighted. Plotting applies `log10`.
pub fn mean_rwe_per_relay(archive: &Archive, p: usize, min_steps: usize) -> Vec<f64> {
    let caps = capacity_estimates(archive, p);
    let mut sums = vec![0.0f64; archive.relay_count()];
    let mut counts = vec![0usize; archive.relay_count()];
    for t in 0..archive.steps {
        let normalized = normalized_capacities(archive, &caps, t);
        for (r, cbar) in normalized {
            if cbar > 0.0 {
                if let Some(w) = archive.normalized_weight(r, t) {
                    sums[r] += w / cbar;
                    counts[r] += 1;
                }
            }
        }
    }
    archive
        .relay_ids()
        .filter(|&r| counts[r] >= min_steps.max(1))
        .map(|r| sums[r] / counts[r] as f64)
        .collect()
}

/// Network weight error over time (Eq. 6, the Fig. 4 series): the total
/// variation distance between the normalized weight distribution and the
/// normalized capacity distribution.
pub fn nwe_series(archive: &Archive, p: usize) -> Vec<f64> {
    let caps = capacity_estimates(archive, p);
    (0..archive.steps)
        .map(|t| {
            let normalized = normalized_capacities(archive, &caps, t);
            let mut tv = 0.0;
            for (r, cbar) in normalized {
                let w = archive.normalized_weight(r, t).unwrap_or(0.0);
                tv += (w - cbar).abs();
            }
            tv / 2.0
        })
        .collect()
}

/// Network weight error against *known* true capacities (used by the
/// Shadow experiments, where ground truth exists): `½ Σ|W − C̄|` with
/// `C̄` the normalized true capacity.
pub fn nwe_against_truth(weights: &[f64], true_capacities: &[f64]) -> f64 {
    assert_eq!(weights.len(), true_capacities.len(), "length mismatch");
    let wsum: f64 = weights.iter().sum();
    let csum: f64 = true_capacities.iter().sum();
    assert!(wsum > 0.0 && csum > 0.0, "degenerate distributions");
    weights.iter().zip(true_capacities).map(|(w, c)| (w / wsum - c / csum).abs()).sum::<f64>() / 2.0
}

/// Relay capacity error against known truth (Fig. 8a): `1 − est/true`,
/// clamped at 0 for overestimates' magnitude reported separately.
pub fn rce_against_truth(estimate: f64, truth: f64) -> f64 {
    assert!(truth > 0.0, "true capacity must be positive");
    (1.0 - estimate / truth).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::RelaySeries;

    /// A relay advertising half its capacity except one step at full.
    fn underutilized_archive() -> Archive {
        let mut a = Archive::new(1.0, 100);
        let mut adv = vec![50.0; 100];
        adv[10] = 100.0; // one burst reveals the true capacity
        a.add_relay(RelaySeries { start_step: 0, advertised: adv, weight: vec![1.0; 100] });
        a
    }

    #[test]
    fn rce_grows_with_window() {
        let a = underutilized_archive();
        // Small window: the burst is forgotten quickly → low error.
        let short = mean_rce_per_relay(&a, 2, 1);
        // Large window: the burst dominates the estimate → high error.
        let long = mean_rce_per_relay(&a, 95, 1);
        assert!(short[0] < long[0], "short {} vs long {}", short[0], long[0]);
        assert!(long[0] > 0.3, "long-window error should be substantial: {}", long[0]);
    }

    #[test]
    fn nce_zero_for_constant_advertised() {
        let mut a = Archive::new(1.0, 50);
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![10.0; 50],
            weight: vec![1.0; 50],
        });
        let series = nce_series(&a, 10);
        for v in series {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn nce_reflects_underestimation() {
        let a = underutilized_archive();
        let series = nce_series(&a, 95);
        // After the burst, ΣA = 50, ΣC = 100 → NCE = 0.5.
        assert!((series[50] - 0.5).abs() < 1e-9, "nce {}", series[50]);
    }

    #[test]
    fn rwe_detects_misweighting() {
        // Two relays with equal capacity estimates but 1:3 weights.
        let mut a = Archive::new(1.0, 20);
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![100.0; 20],
            weight: vec![1.0; 20],
        });
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![100.0; 20],
            weight: vec![3.0; 20],
        });
        let rwe = mean_rwe_per_relay(&a, 5, 1);
        // Relay 0: W=0.25 vs C̄=0.5 → 0.5 (under-weighted); relay 1: 1.5.
        assert!((rwe[0] - 0.5).abs() < 1e-9);
        assert!((rwe[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nwe_matches_hand_computation() {
        let mut a = Archive::new(1.0, 10);
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![100.0; 10],
            weight: vec![1.0; 10],
        });
        a.add_relay(RelaySeries {
            start_step: 0,
            advertised: vec![100.0; 10],
            weight: vec![3.0; 10],
        });
        let nwe = nwe_series(&a, 5);
        // W = (0.25, 0.75), C̄ = (0.5, 0.5) → TV = ½(0.25+0.25) = 0.25.
        assert!((nwe[5] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn nwe_truth_perfect_weights() {
        assert!(nwe_against_truth(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) < 1e-12);
        let err = nwe_against_truth(&[1.0, 1.0], &[1.0, 3.0]);
        assert!((err - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_archive_has_zero_errors() {
        let mut a = Archive::new(1.0, 30);
        for cap in [10.0, 20.0, 30.0] {
            a.add_relay(RelaySeries {
                start_step: 0,
                advertised: vec![cap; 30],
                weight: vec![cap; 30],
            });
        }
        let (d, ..) = a.period_steps();
        assert!(nce_series(&a, d).iter().all(|v| v.abs() < 1e-12));
        assert!(nwe_series(&a, d).iter().all(|v| v.abs() < 1e-12));
        for rwe in mean_rwe_per_relay(&a, d, 1) {
            assert!((rwe - 1.0).abs() < 1e-12);
        }
    }
}
