//! The §3.4 relay speed-test experiment (Figure 5).
//!
//! The authors flooded every live Tor relay with SPEEDTEST cells for 20
//! seconds each over a 51-hour campaign. The flood pushes each relay's
//! observed-bandwidth heuristic through a full-capacity 10-second window,
//! so its next descriptor advertises (≈) its true capacity: the network's
//! estimated capacity jumped by ≈200 Gbit/s (≈50%), and the network
//! weight error (Eq. 6) rose 5–10% because consensus weights lagged the
//! suddenly-accurate capacity estimates; both decayed as the 5-day
//! observed-bandwidth history expired and TorFlow re-balanced.
//!
//! This module reproduces the experiment over the synthetic relay model:
//! the same utilisation, observed-bandwidth, and descriptor-publication
//! mechanics as [`crate::synth`], plus the flood event and a lagging
//! weight response.

use flashflow_simnet::rng::SimRng;

use crate::archive::trailing_max;

/// Configuration of the speed-test simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedTestConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total simulated days.
    pub days: f64,
    /// Hours per step (1 h resolves the Fig. 5 dynamics).
    pub step_hours: f64,
    /// Number of relays.
    pub relays: usize,
    /// When the flood starts, in days from the simulation start.
    pub flood_start_day: f64,
    /// Flood campaign length in hours (the paper's ran 51 h).
    pub flood_hours: f64,
    /// Fraction of relays whose speed test times out (paper: 2,132 of
    /// 6,999 ≈ 0.30).
    pub timeout_probability: f64,
    /// How long consensus weights lag advertised-bandwidth changes
    /// (TorFlow's response time).
    pub weight_lag_hours: f64,
    /// Mean long-run utilisation (drives the ≈50% underestimation).
    pub utilization_mean: f64,
    /// Median relay capacity (bytes/s).
    pub median_capacity: f64,
    /// Log-std-dev of capacities.
    pub capacity_sigma: f64,
}

impl SpeedTestConfig {
    /// A configuration shaped like the paper's August 2019 experiment.
    pub fn paper_scale(seed: u64) -> Self {
        SpeedTestConfig {
            seed,
            days: 14.0,
            step_hours: 1.0,
            relays: 700,
            flood_start_day: 4.0,
            flood_hours: 51.0,
            timeout_probability: 0.30,
            weight_lag_hours: 36.0,
            utilization_mean: 0.42,
            median_capacity: 12.5e6,
            capacity_sigma: 1.2,
        }
    }

    /// A small, fast configuration for tests.
    pub fn test_scale(seed: u64) -> Self {
        SpeedTestConfig { relays: 120, ..SpeedTestConfig::paper_scale(seed) }
    }

    /// Steps on the grid.
    pub fn steps(&self) -> usize {
        (self.days * 24.0 / self.step_hours).round() as usize
    }
}

/// The simulation output: the two series Fig. 5 plots, plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedTestOutcome {
    /// Estimated network capacity (Σ advertised, bytes/s) per step.
    pub capacity_series: Vec<f64>,
    /// Network weight error (Eq. 6 against the advertised-derived
    /// capacity estimates) per step.
    pub weight_error_series: Vec<f64>,
    /// Step at which the flood begins.
    pub flood_start_step: usize,
    /// Step at which the flood ends.
    pub flood_end_step: usize,
    /// Relays successfully measured.
    pub measured: usize,
    /// Relays that timed out.
    pub timeouts: usize,
    /// True total capacity (bytes/s).
    pub true_total_capacity: f64,
}

impl SpeedTestOutcome {
    /// Estimated network capacity just before the flood.
    pub fn baseline_capacity(&self) -> f64 {
        self.capacity_series[self.flood_start_step.saturating_sub(1)]
    }

    /// Peak estimated capacity after the flood starts.
    pub fn peak_capacity(&self) -> f64 {
        self.capacity_series[self.flood_start_step..].iter().copied().fold(0.0, f64::max)
    }

    /// The §3.4 headline: the relative capacity increase the flood
    /// reveals (the paper found ≈50%).
    pub fn discovered_fraction(&self) -> f64 {
        (self.peak_capacity() - self.baseline_capacity()) / self.baseline_capacity()
    }
}

/// Runs the speed-test experiment.
pub fn run_speed_test(cfg: &SpeedTestConfig) -> SpeedTestOutcome {
    let steps = cfg.steps();
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let flood_start = (cfg.flood_start_day * 24.0 / cfg.step_hours).round() as usize;
    let flood_len = (cfg.flood_hours / cfg.step_hours).round() as usize;
    let flood_end = (flood_start + flood_len).min(steps);
    let window_5d = ((5.0 * 24.0) / cfg.step_hours).round() as usize;
    let publish_every = ((18.0 / cfg.step_hours).round() as usize).max(1);
    let weight_lag = (cfg.weight_lag_hours / cfg.step_hours).round() as usize;

    let mut advertised_all: Vec<Vec<f64>> = Vec::with_capacity(cfg.relays);
    let mut capacities: Vec<f64> = Vec::with_capacity(cfg.relays);
    let mut measured = 0usize;
    let mut timeouts = 0usize;

    for i in 0..cfg.relays {
        let capacity = cfg.median_capacity * rng.gen_lognormal(0.0, cfg.capacity_sigma);
        capacities.push(capacity);
        let timed_out = rng.gen_bool(cfg.timeout_probability);
        if timed_out {
            timeouts += 1;
        } else {
            measured += 1;
        }
        // The campaign sweeps relays one at a time: this relay's 20-second
        // flood lands at a uniformly random step of the campaign.
        let flood_step = flood_start + rng.gen_index(flood_len.max(1));

        let base = (cfg.utilization_mean + rng.gen_normal(0.0, 0.15)).clamp(0.05, 0.9);
        let slow_ar = 0.995f64;
        let fast_ar = 0.6f64;
        let mut slow = 0.0f64;
        let mut fast = 0.0f64;
        let mut throughput = Vec::with_capacity(steps);
        for t in 0..steps {
            slow = slow_ar * slow + rng.gen_normal(0.0, (1.0 - slow_ar * slow_ar).sqrt() * 0.15);
            fast = fast_ar * fast + rng.gen_normal(0.0, (1.0 - fast_ar * fast_ar).sqrt() * 0.08);
            let mut tp = capacity * (base + slow + fast).clamp(0.0, 1.0);
            // The 20-second flood saturates the relay: the 10-second
            // observed-bandwidth window inside this step sees capacity.
            if !timed_out && t == flood_step {
                tp = capacity;
            }
            throughput.push(tp);
        }

        let observed = trailing_max(&throughput, window_5d);
        let mut advertised = Vec::with_capacity(steps);
        let mut current = observed[0];
        for (t, &o) in observed.iter().enumerate() {
            if t % publish_every == 0 {
                current = o;
            }
            advertised.push(current.min(capacity));
        }
        advertised_all.push(advertised);
        let _ = i;
    }

    // Consensus weights: advertised lagged by TorFlow's response time,
    // with mild measurement noise.
    let mut weight_all: Vec<Vec<f64>> = Vec::with_capacity(cfg.relays);
    for adv in &advertised_all {
        let mut log_ratio = rng.gen_normal(0.0, 0.25);
        let ratio_ar = 0.99f64;
        let weights: Vec<f64> = (0..steps)
            .map(|t| {
                log_ratio = ratio_ar * log_ratio + rng.gen_normal(0.0, 0.035);
                let lagged = adv[t.saturating_sub(weight_lag)];
                lagged * log_ratio.exp()
            })
            .collect();
        weight_all.push(weights);
    }

    // Series: Σ advertised, and Eq. 6 against the advertised estimates.
    let capacity_series: Vec<f64> =
        (0..steps).map(|t| advertised_all.iter().map(|a| a[t]).sum()).collect();
    let weight_error_series: Vec<f64> = (0..steps)
        .map(|t| {
            let total_w: f64 = weight_all.iter().map(|w| w[t]).sum();
            let total_c: f64 = capacity_series[t];
            let mut tv = 0.0;
            for (w, a) in weight_all.iter().zip(&advertised_all) {
                tv += (w[t] / total_w - a[t] / total_c).abs();
            }
            tv / 2.0
        })
        .collect();

    SpeedTestOutcome {
        capacity_series,
        weight_error_series,
        flood_start_step: flood_start,
        flood_end_step: flood_end,
        measured,
        timeouts,
        true_total_capacity: capacities.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::stats::mean;

    #[test]
    fn flood_discovers_hidden_capacity() {
        let out = run_speed_test(&SpeedTestConfig::test_scale(3));
        let discovered = out.discovered_fraction();
        // Paper: ≈50%. Accept a generous band around it.
        assert!((0.2..1.0).contains(&discovered), "discovered {discovered:.2}");
    }

    #[test]
    fn capacity_decays_after_five_days() {
        let out = run_speed_test(&SpeedTestConfig::test_scale(4));
        let peak = out.peak_capacity();
        let last = *out.capacity_series.last().unwrap();
        assert!(last < peak * 0.85, "capacity should decay: peak {peak:.3e}, last {last:.3e}");
    }

    #[test]
    fn weight_error_rises_during_flood() {
        let out = run_speed_test(&SpeedTestConfig::test_scale(5));
        let before = mean(
            &out.weight_error_series[out.flood_start_step.saturating_sub(24)..out.flood_start_step],
        )
        .unwrap();
        let campaign_end = out.flood_end_step.min(out.weight_error_series.len() - 1);
        let during = mean(&out.weight_error_series[out.flood_start_step..=campaign_end]).unwrap();
        assert!(
            during > before + 0.02,
            "weight error should rise: before {before:.3}, during {during:.3}"
        );
    }

    #[test]
    fn timeout_fraction_matches_config() {
        let out = run_speed_test(&SpeedTestConfig::test_scale(6));
        let frac = out.timeouts as f64 / (out.timeouts + out.measured) as f64;
        assert!((frac - 0.30).abs() < 0.12, "timeout fraction {frac:.2}");
    }

    #[test]
    fn estimates_stay_below_truth() {
        let out = run_speed_test(&SpeedTestConfig::test_scale(7));
        for &c in &out.capacity_series {
            assert!(c <= out.true_total_capacity * 1.0 + 1e-6);
        }
    }
}
