//! Property tests for the wire codec.
//!
//! Two totality claims: every message round-trips through
//! encode → (chunked) decode unchanged for arbitrary field values, and
//! the decoder never panics on arbitrary byte soup — it either yields
//! messages or a typed `WireError`.

use flashflow_proto::frame::{decode_payload, encode, FrameDecoder, LEN_PREFIX};
use flashflow_proto::msg::{
    AbortReason, MeasureSpec, Msg, PeerRole, TargetEndpoint, AUTH_TOKEN_LEN, FINGERPRINT_LEN,
};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = [u8; AUTH_TOKEN_LEN]> {
    prop::collection::vec(any::<u8>(), AUTH_TOKEN_LEN).prop_map(|v| {
        let mut t = [0u8; AUTH_TOKEN_LEN];
        t.copy_from_slice(&v);
        t
    })
}

fn arb_fp() -> impl Strategy<Value = [u8; FINGERPRINT_LEN]> {
    prop::collection::vec(any::<u8>(), FINGERPRINT_LEN).prop_map(|v| {
        let mut t = [0u8; FINGERPRINT_LEN];
        t.copy_from_slice(&v);
        t
    })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    // Pick a variant, then fill its fields from independent draws.
    (
        0u8..11,
        arb_token(),
        arb_fp(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), 0u8..2, 0u8..7),
    )
        .prop_map(
            |(variant, token, relay_fp, (a, b, c), (x, y, role, reason))| match variant {
                0 => Msg::Auth {
                    token,
                    role: PeerRole::from_u8(role).expect("role in range"),
                    nonce: c,
                },
                1 => Msg::AuthOk { session: a, nonce: c },
                2 => Msg::MeasureCmd(MeasureSpec {
                    relay_fp,
                    slot_secs: x,
                    sockets: y,
                    rate_cap: b,
                    // Derive the endpoint, secret, and trace id from the
                    // draws so the v4/v6 fields round-trip arbitrary
                    // values too.
                    target: TargetEndpoint {
                        ip: relay_fp[..4].try_into().expect("4 bytes"),
                        port: (a & 0xFFFF) as u16,
                    },
                    measurement_secret: c,
                    trace_id: a ^ b,
                }),
                3 => Msg::Ready,
                4 => Msg::Go,
                5 => Msg::SecondReport { second: x, bg_bytes: b, measured_bytes: c },
                6 => Msg::SlotDone,
                7 => Msg::Ping { probe: a },
                8 => Msg::Pong { probe: b },
                9 => Msg::Resume {
                    token,
                    role: PeerRole::from_u8(role).expect("role in range"),
                    nonce_prior: a,
                    nonce: c,
                    trace_id: b ^ c,
                },
                _ => Msg::Abort { reason: AbortReason::from_u8(reason).expect("reason in range") },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn round_trip_every_variant(msg in arb_msg()) {
        let frame = encode(&msg);
        // Layer 1: payload decode.
        prop_assert_eq!(decode_payload(&frame[LEN_PREFIX..]), Ok(msg));
        // Layer 2: stream decode of the whole frame.
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        prop_assert_eq!(dec.next_msg().unwrap(), Some(msg));
        prop_assert_eq!(dec.next_msg().unwrap(), None);
        prop_assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn round_trip_survives_arbitrary_chunking(
        msgs in prop::collection::vec(arb_msg(), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(m) = dec.next_msg().expect("valid stream") {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Whole-payload decode: any result is fine, panics are not.
        let _ = decode_payload(&bytes);
        // Stream decode, drained to quiescence or error.
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        loop {
            match dec.next_msg() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    #[test]
    fn corrupted_frames_error_or_decode_but_never_panic(
        msg in arb_msg(),
        flip_at in 0usize..64,
        flip_with in 1u8..=255,
    ) {
        let mut frame = encode(&msg);
        let idx = flip_at % frame.len();
        frame[idx] ^= flip_with;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        // A single flipped byte may still decode (e.g. inside a token);
        // the property is totality, not detection.
        let _ = dec.next_msg();
    }

    #[test]
    fn encoded_frames_are_bounded_and_well_prefixed(msg in arb_msg()) {
        let frame = encode(&msg);
        let declared =
            u32::from_be_bytes(frame[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
        prop_assert_eq!(declared + LEN_PREFIX, frame.len());
        prop_assert!(declared <= flashflow_proto::frame::MAX_FRAME_LEN);
    }
}
