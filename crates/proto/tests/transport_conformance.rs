//! One conformance suite, every transport.
//!
//! The `Transport` contract (ordered un-duplicated delivery with no
//! message boundaries, close-drains-then-errors, readiness reporting)
//! is what lets the sessions and the measurement engine stay identical
//! across the simulated stream, real TCP, and the fault decorator. This
//! suite runs the same generic scenarios against all three, including
//! the two cases that historically break transports: partial-frame
//! delivery (a length-prefixed frame cut at an arbitrary byte) and a
//! mid-slot disconnect, which must abort the session in bounded time
//! rather than wedge it.

use std::net::TcpListener;

use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::fault::{FaultMode, FaultyTransport};
use flashflow_proto::frame::{encode, FrameDecoder};
use flashflow_proto::msg::{MeasureSpec, Msg, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_proto::session::{
    CoordPhase, CoordinatorSession, MeasurerAction, MeasurerPhase, MeasurerSession, SessionTimeouts,
};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{Duplex, Readiness, Transport};
use flashflow_simnet::time::{SimDuration, SimTime};

/// A transport pair under test. `now(round)` supplies the simulated
/// time for retry round `round` — simulated transports need time to
/// advance past their latency, TCP needs wall-clock patience (the
/// helper sleeps between rounds either way).
struct Pair {
    name: &'static str,
    a: Box<dyn Transport>,
    b: Box<dyn Transport>,
}

fn now_for(round: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(10 * round)
}

fn duplex_pair() -> Pair {
    // 5 ms latency, 5-byte re-chunking: every frame crosses reassembly.
    let (a, b) = Duplex::new(SimDuration::from_millis(5), 5).into_endpoints();
    Pair { name: "Duplex", a: Box::new(a), b: Box::new(b) }
}

fn tcp_pair() -> Pair {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let client = TcpTransport::connect(addr).expect("connect");
    let (accepted, _) = listener.accept().expect("accept");
    let server = TcpTransport::from_stream(accepted).expect("wrap");
    Pair { name: "TcpTransport", a: Box::new(server), b: Box::new(client) }
}

fn faulty_pair() -> Pair {
    // The decorator in its healthy (untripped) state must be a perfect
    // passthrough over any inner transport.
    let (a, b) = Duplex::new(SimDuration::from_millis(5), 5).into_endpoints();
    Pair {
        name: "FaultyTransport<Duplex>",
        a: Box::new(FaultyTransport::new(a, FaultMode::Disconnect)),
        b: Box::new(FaultyTransport::new(b, FaultMode::Blackhole)),
    }
}

fn all_pairs() -> Vec<Pair> {
    vec![duplex_pair(), tcp_pair(), faulty_pair()]
}

/// Drains `t` until `want` bytes arrived, advancing time and sleeping
/// between rounds; panics (bounded) if they never do.
fn recv_exactly(name: &str, t: &mut dyn Transport, want: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for round in 0..2000 {
        match t.recv(now_for(round)) {
            Ok(bytes) => out.extend_from_slice(&bytes),
            Err(e) => panic!("[{name}] recv failed with {e} after {} bytes", out.len()),
        }
        if out.len() >= want {
            return out;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("[{name}] only {} of {want} bytes arrived", out.len());
}

/// Polls until `recv` errors (post-close drain done); bounded.
fn recv_until_err(name: &str, t: &mut dyn Transport) {
    for round in 0..2000 {
        match t.recv(now_for(round)) {
            Ok(bytes) => assert!(
                bytes.is_empty(),
                "[{name}] unexpected bytes after expected close: {bytes:?}"
            ),
            Err(_) => return,
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("[{name}] close never surfaced as a recv error");
}

#[test]
fn delivers_ordered_bytes_both_directions() {
    for mut pair in all_pairs() {
        let t0 = now_for(0);
        pair.a.send(t0, b"abc").expect("send");
        pair.a.send(t0, b"defg").expect("send");
        assert_eq!(
            recv_exactly(pair.name, &mut *pair.b, 7),
            b"abcdefg",
            "[{}] order across writes",
            pair.name
        );
        pair.b.send(t0, b"up").expect("send");
        assert_eq!(recv_exactly(pair.name, &mut *pair.a, 2), b"up", "[{}] reverse", pair.name);
    }
}

#[test]
fn partial_frames_reassemble_through_the_codec() {
    let msg = Msg::Auth { token: [7; AUTH_TOKEN_LEN], role: PeerRole::Measurer, nonce: 0xFEED };
    let frame = encode(&msg);
    for mut pair in all_pairs() {
        // Deliver the frame cut mid-length-prefix and mid-body.
        let t0 = now_for(0);
        pair.a.send(t0, &frame[..3]).expect("send head");
        let mut dec = FrameDecoder::new();
        dec.push(&recv_exactly(pair.name, &mut *pair.b, 3));
        assert_eq!(dec.next_msg().expect("no error"), None, "[{}] incomplete", pair.name);
        pair.a.send(t0, &frame[3..20]).expect("send middle");
        pair.a.send(t0, &frame[20..]).expect("send tail");
        dec.push(&recv_exactly(pair.name, &mut *pair.b, frame.len() - 3));
        assert_eq!(dec.next_msg().expect("no error"), Some(msg), "[{}] reassembled", pair.name);
    }
}

#[test]
fn close_drains_in_flight_bytes_then_errors() {
    for mut pair in all_pairs() {
        pair.a.send(now_for(0), b"last words").expect("send");
        pair.a.close();
        assert_eq!(recv_exactly(pair.name, &mut *pair.b, 10), b"last words");
        recv_until_err(pair.name, &mut *pair.b);
    }
}

#[test]
fn readiness_tracks_available_bytes() {
    for mut pair in all_pairs() {
        // Nothing sent yet: quiet.
        assert_eq!(pair.b.readiness(now_for(0)), Readiness::Quiet, "[{}]", pair.name);
        pair.a.send(now_for(0), b"x").expect("send");
        // Eventually readable...
        let mut readable = false;
        for round in 0..2000 {
            if pair.b.readiness(now_for(round)) == Readiness::Readable {
                readable = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(readable, "[{}] sent byte never became readable", pair.name);
        // ...and quiet again once drained.
        let last = recv_exactly(pair.name, &mut *pair.b, 1);
        assert_eq!(last, b"x");
        assert_eq!(pair.b.readiness(now_for(2000)), Readiness::Quiet, "[{}]", pair.name);
    }
}

/// Send-side backpressure: a sender that outruns the kernel's send
/// buffer sees `WouldBlock` mid-frame. The transport must queue the
/// unwritten remainder and flush it opportunistically — every frame
/// eventually arrives intact, none torn at the `WouldBlock` boundary,
/// none silently dropped.
#[test]
fn would_block_on_send_never_tears_or_drops_frames() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let mut tx = TcpTransport::connect(addr).expect("connect");
    let (accepted, _) = listener.accept().expect("accept");
    let mut rx = TcpTransport::from_stream(accepted).expect("wrap");

    // One burst of frames large enough to overrun any auto-tuned
    // loopback send+receive buffering while the peer reads nothing.
    let frame = encode(&Msg::SecondReport { second: 0, bg_bytes: 7, measured_bytes: 0xDEAD });
    let frames_per_write = 64 * 1024 / frame.len();
    let chunk: Vec<u8> =
        frame.iter().copied().cycle().take(frames_per_write * frame.len()).collect();
    let writes = 512; // ~32 MiB total
    let total_frames = writes * frames_per_write;
    let mut saw_backpressure = false;
    for _ in 0..writes {
        tx.send(SimTime::ZERO, &chunk).expect("send queues under backpressure");
        saw_backpressure |= tx.pending_send_bytes() > 0;
    }
    assert!(saw_backpressure, "the kernel send buffer never filled; burst too small?");

    // Hang up mid-backpressure: close must defer the FIN rather than
    // tear the queued tail — the repeated `close` calls below (the
    // endpoint retries close every pump while terminal) finish the
    // flush first.
    tx.close();

    // Drain the receiver, nudging the sender's outbox along (repeated
    // close retries the flush, like a terminal endpoint's pump would).
    let want = total_frames * frame.len();
    let mut dec = FrameDecoder::new();
    let mut got_frames = 0usize;
    let mut got_bytes = 0usize;
    for round in 0..200_000 {
        let bytes = rx.recv(now_for(round)).expect("recv");
        got_bytes += bytes.len();
        dec.push(&bytes);
        while let Some(msg) = dec.next_msg().expect("no torn frame ever surfaces") {
            assert_eq!(
                msg,
                Msg::SecondReport { second: 0, bg_bytes: 7, measured_bytes: 0xDEAD },
                "frame corrupted at the WouldBlock boundary"
            );
            got_frames += 1;
        }
        if got_bytes >= want {
            break;
        }
        if bytes.is_empty() {
            tx.close(); // retry the deferred-FIN flush
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    // Let the sender finish flushing its queued remainder.
    for round in 0..200_000 {
        if tx.pending_send_bytes() == 0 && got_bytes >= want {
            break;
        }
        tx.close();
        let bytes = rx.recv(now_for(round)).expect("recv tail");
        got_bytes += bytes.len();
        dec.push(&bytes);
        while let Some(msg) = dec.next_msg().expect("no torn frame in the tail") {
            assert_eq!(msg, Msg::SecondReport { second: 0, bg_bytes: 7, measured_bytes: 0xDEAD });
            got_frames += 1;
        }
        if bytes.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    assert_eq!(got_bytes, want, "bytes lost under send backpressure");
    assert_eq!(got_frames, total_frames, "frames lost under send backpressure");
    assert_eq!(tx.pending_send_bytes(), 0, "outbox fully flushed");
    // With the outbox drained the deferred FIN goes out; the receiver
    // observes a clean EOF, not a torn stream.
    tx.close();
    recv_until_err("TcpTransport", &mut rx);
}

/// The data plane rides the same transports as the control plane: a
/// pattern-stamped blast stream (hello + bulk frames) must reassemble
/// and verify byte-exactly across the simulated chunked stream, real
/// TCP, and the (untripped) fault decorator — partial frame delivery
/// included, since the 5-byte Duplex chunking cuts every frame many
/// times.
#[test]
fn blast_streams_reassemble_and_verify_on_every_transport() {
    use flashflow_proto::blast::{BlastEvent, BlastParser, DataChannelHello, TrafficSource};

    for pair in all_pairs() {
        let name = pair.name;
        let mut src = TrafficSource::new(pair.a, 0x0B1A_57ED, 3);
        src.set_rate_cap(50_000);
        let mut rx = pair.b;
        let mut parser = BlastParser::new();
        src.greet(now_for(0));
        src.start(now_for(0));
        let mut hello = None;
        // 3 simulated seconds of paced blasting, drained as it arrives.
        for round in 0..400u64 {
            let now = now_for(round); // 10 ms per round
            src.pump(now);
            let bytes = rx.recv(now).expect("healthy stream");
            for ev in parser.push(&bytes).expect("framing intact") {
                if let BlastEvent::Hello(h) = ev {
                    hello = Some(h);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        src.stop(now_for(400));
        // Drain the tail.
        for round in 400..800u64 {
            let bytes = rx.recv(now_for(round)).expect("healthy stream");
            parser.push(&bytes).expect("framing intact");
            if parser.received_total() >= src.sent_total() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(
            hello,
            Some(DataChannelHello { nonce: 0x0B1A_57ED, channel: 3 }),
            "[{name}] hello bound the channel"
        );
        assert!(src.sent_total() > 0, "[{name}] nothing was blasted");
        assert_eq!(parser.received_total(), src.sent_total(), "[{name}] bytes lost");
        assert_eq!(parser.corrupt_total(), 0, "[{name}] pattern verification failed");
        assert!(
            !src.completed_seconds().is_empty(),
            "[{name}] no second completed: {:?}",
            src.completed_seconds()
        );
    }
}

/// Send-side backpressure on the data plane: an uncapped source
/// outruns the kernel send buffer, `WouldBlock` cuts blast frames at
/// arbitrary byte offsets into the transport outbox, and the receiver
/// must still see every frame whole — none torn, none dropped, every
/// payload byte verifying against the pattern.
#[test]
fn blast_would_block_backpressure_never_tears_frames() {
    use flashflow_proto::blast::{BlastParser, TrafficSource};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let tx = TcpTransport::connect(addr).expect("connect");
    let (accepted, _) = listener.accept().expect("accept");
    let mut rx = TcpTransport::from_stream(accepted).expect("wrap");

    let mut src = TrafficSource::new(tx, 0xF00D, 0);
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    // Uncapped pumps while the peer reads nothing: the kernel buffers
    // fill and the remainder queues in the transport outbox.
    let mut saw_backpressure = false;
    for _ in 0..64 {
        src.pump(SimTime::ZERO);
        saw_backpressure |= src.transport_mut().pending_send_bytes() > 0;
    }
    assert!(saw_backpressure, "the kernel send buffer never filled; burst too small?");
    let sent_at_stall = src.sent_total();
    src.stop(now_for(1));

    // Drain the receiver while nudging the sender's outbox along.
    let mut parser = BlastParser::new();
    for round in 0..200_000u64 {
        let bytes = rx.recv(now_for(round)).expect("recv");
        parser.push(&bytes).expect("no torn frame ever surfaces");
        if parser.received_total() >= sent_at_stall && src.transport_mut().pending_send_bytes() == 0
        {
            break;
        }
        // An empty transport send retries the queued outbox, exactly
        // like a driver's next pump would.
        let _ = src.transport_mut().send(SimTime::ZERO, &[]);
        if bytes.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    assert_eq!(parser.received_total(), sent_at_stall, "bytes lost under send backpressure");
    assert_eq!(parser.corrupt_total(), 0, "frame torn at the WouldBlock boundary");
    assert_eq!(src.transport_mut().pending_send_bytes(), 0, "outbox fully flushed");
}

/// A data connection that dies mid-blast must stop the source in
/// bounded rounds (error recorded, no wedging, counters frozen at what
/// actually moved) and surface as a closed stream at the sink.
#[test]
fn mid_blast_disconnect_stops_source_and_sink_in_bounded_rounds() {
    use flashflow_proto::blast::{SourceState, TrafficSink, TrafficSource};

    for base in [duplex_pair(), tcp_pair()] {
        let name = base.name;
        // The source's side of the wire dies after ~64 KiB have been
        // delivered toward it... but blast is one-directional, so arm
        // the fault on wall time/calls instead: trip explicitly after a
        // few pumped rounds.
        let mut faulty = FaultyTransport::new(base.a, FaultMode::Disconnect);
        let mut sink = TrafficSink::new(base.b);
        let mut src_rounds = 0u64;
        let mut src = {
            let mut s = TrafficSource::new(&mut faulty, 0xDEAD, 0);
            s.set_rate_cap(100_000);
            s.greet(now_for(0));
            s.start(now_for(0));
            sink.start(now_for(0));
            s
        };
        let mut tripped = false;
        for round in 0..2000u64 {
            let now = now_for(round);
            src.pump(now);
            let _ = sink.pump(now).expect("pre-trip stream is clean");
            src_rounds = round;
            if round == 20 && !tripped {
                tripped = true;
                src.transport_mut().trip();
            }
            if tripped && src.state() == SourceState::Stopped {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(src.state(), SourceState::Stopped, "[{name}] source did not stop");
        assert!(src.error().is_some(), "[{name}] transport error recorded");
        assert!(
            src_rounds < 100,
            "[{name}] disconnect took {src_rounds} rounds to stop the source"
        );
        let received_at_death = sink.received_total();
        assert_eq!(sink.corrupt_total(), 0, "[{name}] pre-trip bytes verified");
        // The sink drains what was in flight, then observes the close.
        for round in 0..2000u64 {
            let _ = sink.pump(now_for(round));
            if sink.transport_error().is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(sink.transport_error().is_some(), "[{name}] sink never saw the disconnect");
        assert!(sink.received_total() >= received_at_death, "[{name}] counters moved backwards");
    }
}

/// The scenario that motivates the whole error path: a measurer's
/// connection dies mid-slot. The coordinator session must abort with
/// `ConnectionLost` within a bounded number of pump rounds — no
/// timeouts needed, no wedging — and quarantine logic upstream drops the
/// peer's samples.
#[test]
fn mid_slot_disconnect_aborts_in_bounded_rounds() {
    for base in [duplex_pair(), tcp_pair()] {
        let name = base.name;
        let token = [3u8; AUTH_TOKEN_LEN];
        let timeouts = SessionTimeouts::default();
        let spec = MeasureSpec {
            relay_fp: [1; FINGERPRINT_LEN],
            slot_secs: 30,
            sockets: 8,
            rate_cap: 0,
            ..MeasureSpec::default()
        };
        // The coordinator's side of the wire is armed to die after the
        // handshake traffic (~120 bytes) has crossed it.
        let faulty = FaultyTransport::new(base.a, FaultMode::Disconnect).trip_after_bytes(40);
        let mut coord = Endpoint::new(
            CoordinatorSession::new(token, PeerRole::Measurer, spec, 0xD15C, timeouts),
            faulty,
        );
        let mut meas =
            Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, 1, timeouts), base.b);
        coord.session_mut().start(now_for(0));

        let mut started = false;
        let mut go_sent = false;
        let mut reported = 0u32;
        for round in 0..2000u64 {
            let now = now_for(round);
            coord.pump(now);
            meas.pump(now);
            // The driver's barrier: one peer, so release as soon as armed.
            if !go_sent && coord.session().phase() == CoordPhase::Armed {
                coord.session_mut().go(now);
                go_sent = true;
            }
            while let Some(a) = meas.session_mut().poll_action() {
                if matches!(a, MeasurerAction::Start { .. }) {
                    started = true;
                }
            }
            if started && reported < 30 && !meas.is_terminal() {
                meas.session_mut().report_second(0, 1000);
                reported += 1;
            }
            if coord.is_terminal() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(coord.session().phase(), CoordPhase::Failed, "[{name}] bounded abort");
        assert!(coord.transport_error().is_some(), "[{name}] failure came from the transport");
        // The measurer side dies too (reset propagates), or at worst
        // stays runnable until its own timeout — but with a Disconnect
        // fault the inner close reaches it promptly here.
        let mut meas_dead = meas.is_terminal();
        for round in 0..2000u64 {
            if meas_dead {
                break;
            }
            meas.pump(now_for(round));
            meas_dead = meas.is_terminal();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(meas_dead, "[{name}] measurer side observed the disconnect");
        assert_eq!(meas.session().phase(), MeasurerPhase::Failed, "[{name}]");
    }
}

/// The echo conformance case: a measurer-side source blasts a
/// relay-side [`Echoer`](flashflow_proto::blast::Echoer) across every
/// transport, keyed frame tags on both directions, and the measurer
/// must get back exactly the bytes the relay verified — reassembled
/// through the same partial-delivery paths as everything else.
#[test]
fn echo_round_trips_verified_bytes_on_every_transport() {
    use flashflow_proto::blast::{
        binding_nonce, secret_channel_key, BlastEvent, BlastParser, Echoer, TrafficSource,
    };

    let secret = 0xEC_C0FF_EE00;
    let nonce = binding_nonce(secret);
    let key = secret_channel_key(secret);
    for pair in all_pairs() {
        let name = pair.name;
        let mut src = TrafficSource::new(pair.a, nonce, 0).with_key(key);
        src.set_rate_cap(50_000);
        let mut echo = Echoer::new(pair.b).with_key(key);
        let mut back = BlastParser::new().with_key(key);
        src.greet(now_for(0));
        src.start(now_for(0));
        echo.start(now_for(0));
        let mut verified_back = 0u64;
        for round in 0..800u64 {
            let now = now_for(round);
            if round < 300 {
                src.pump(now);
            } else if round == 300 {
                src.stop(now);
            }
            echo.pump(now).unwrap_or_else(|e| panic!("[{name}] inbound framing: {e}"));
            let bytes = src.transport_mut().recv(now).expect("return stream open");
            for ev in back.push(&bytes).unwrap_or_else(|e| panic!("[{name}] echo framing: {e}")) {
                if let BlastEvent::Data { bytes, corrupt } = ev {
                    assert_eq!(corrupt, 0, "[{name}] echo failed verification");
                    verified_back += bytes;
                }
            }
            if round > 300 && verified_back == src.sent_total() && echo.pending_echo() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(src.sent_total() > 0, "[{name}] nothing was blasted");
        assert_eq!(echo.received_total(), src.sent_total(), "[{name}] inbound bytes lost");
        assert_eq!(echo.corrupt_total(), 0, "[{name}] inbound verification failed");
        assert_eq!(echo.forged_total(), 0, "[{name}] honest frames counted forged");
        assert_eq!(
            verified_back,
            src.sent_total(),
            "[{name}] the echo must return every verified byte"
        );
    }
}

/// A measurer hanging up mid-echo must stop the echoer in bounded
/// rounds (transport error recorded, later pumps quiesce), not wedge
/// its serving thread.
#[test]
fn echoer_stops_in_bounded_rounds_when_the_measurer_hangs_up() {
    use flashflow_proto::blast::{Echoer, TrafficSource};

    let mut pair = duplex_pair();
    let mut src = TrafficSource::new(&mut pair.a, 0x1234, 0);
    src.set_rate_cap(20_000);
    let mut echo = Echoer::new(pair.b);
    src.greet(now_for(0));
    src.start(now_for(0));
    echo.start(now_for(0));
    for round in 0..50u64 {
        src.pump(now_for(round));
        echo.pump(now_for(round)).expect("clean stream");
    }
    drop(src);
    pair.a.close();
    let mut stopped = false;
    for round in 50..100u64 {
        let _ = echo.pump(now_for(round));
        if echo.transport_error().is_some() {
            stopped = true;
            break;
        }
    }
    assert!(stopped, "echoer never observed the hangup");
    assert!(!echo.pump(now_for(200)).expect("quiesced"), "terminal echoer keeps claiming progress");
}
