//! Fault injection at the transport layer.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and breaks it on demand:
//! from a *trip point* on, the connection either blackholes (a crashed
//! process — frames vanish silently, the peer sees only silence until
//! its timeouts fire) or disconnects (a reset — both sides observe
//! [`TransportError::Closed`] promptly). The trip can be pulled
//! explicitly by a driver (e.g. "this measurer crashes after 5 reported
//! seconds"), or armed to fire by itself at a simulated time or after a
//! byte budget — which is how tests prove that a mid-slot disconnect
//! aborts the measurement in bounded time instead of wedging it.

use flashflow_simnet::time::SimTime;

use crate::transport::{Readiness, Transport, TransportError};

/// How a tripped connection misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Silence: sends are discarded, nothing is ever delivered, and the
    /// connection still looks open. Models a crashed or partitioned
    /// peer; only session timeouts can detect it.
    Blackhole,
    /// Reset: the inner transport is closed, so both ends observe
    /// [`TransportError::Closed`] and abort promptly.
    Disconnect,
}

/// A [`Transport`] decorator that injects one fault.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    mode: FaultMode,
    trip_at: Option<SimTime>,
    trip_after_bytes: Option<u64>,
    delivered: u64,
    tripped: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// A decorator that misbehaves per `mode` once tripped. Without an
    /// `at`/`after_bytes` arming, only [`FaultyTransport::trip`] fires it
    /// (a healthy passthrough until then).
    pub fn new(inner: T, mode: FaultMode) -> Self {
        FaultyTransport {
            inner,
            mode,
            trip_at: None,
            trip_after_bytes: None,
            delivered: 0,
            tripped: false,
        }
    }

    /// Arms the fault to fire at simulated time `at`.
    #[must_use]
    pub fn trip_at(mut self, at: SimTime) -> Self {
        self.trip_at = Some(at);
        self
    }

    /// Arms the fault to fire after `n` bytes have been delivered to
    /// `recv` callers.
    #[must_use]
    pub fn trip_after_bytes(mut self, n: u64) -> Self {
        self.trip_after_bytes = Some(n);
        self
    }

    /// Fires the fault now. Idempotent.
    pub fn trip(&mut self) {
        if !self.tripped {
            self.tripped = true;
            if self.mode == FaultMode::Disconnect {
                self.inner.close();
            }
        }
    }

    /// True once the fault has fired.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn check_armed(&mut self, now: SimTime) {
        if self.tripped {
            return;
        }
        let time_due = self.trip_at.is_some_and(|at| now >= at);
        let bytes_due = self.trip_after_bytes.is_some_and(|n| self.delivered >= n);
        if time_due || bytes_due {
            self.trip();
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        self.check_armed(now);
        if self.tripped {
            return match self.mode {
                // A crashed process's writes go nowhere, silently.
                FaultMode::Blackhole => Ok(()),
                FaultMode::Disconnect => Err(TransportError::Closed),
            };
        }
        self.inner.send(now, bytes)
    }

    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        self.check_armed(now);
        if self.tripped {
            return match self.mode {
                // Drain and discard so in-flight bytes don't linger.
                FaultMode::Blackhole => {
                    let _ = self.inner.recv(now);
                    Ok(Vec::new())
                }
                FaultMode::Disconnect => Err(TransportError::Closed),
            };
        }
        let bytes = self.inner.recv(now)?;
        self.delivered += bytes.len() as u64;
        // A byte-armed fault fires mid-stream: deliver up to the budget,
        // swallow the rest, so a frame can be cut at an arbitrary point.
        if self.trip_after_bytes.is_some_and(|n| self.delivered >= n) {
            let over = (self.delivered - self.trip_after_bytes.expect("checked")) as usize;
            let keep = bytes.len() - over;
            self.trip();
            let mut bytes = bytes;
            bytes.truncate(keep);
            return Ok(bytes);
        }
        Ok(bytes)
    }

    fn readiness(&mut self, now: SimTime) -> Readiness {
        self.check_armed(now);
        if self.tripped {
            return match self.mode {
                FaultMode::Blackhole => Readiness::Quiet,
                FaultMode::Disconnect => Readiness::Closed,
            };
        }
        self.inner.readiness(now)
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Duplex;
    use flashflow_simnet::time::SimDuration;

    #[test]
    fn passthrough_until_tripped() {
        let (a, mut b) = Duplex::loopback().into_endpoints();
        let mut a = FaultyTransport::new(a, FaultMode::Blackhole);
        let t = SimTime::ZERO;
        a.send(t, b"ok").unwrap();
        assert_eq!(b.recv(t).unwrap(), b"ok");

        a.trip();
        a.send(t, b"lost").unwrap();
        assert_eq!(b.recv(t).unwrap(), b"", "blackholed send never arrives");
        b.send(t, b"unheard").unwrap();
        assert_eq!(a.recv(t).unwrap(), b"", "blackholed recv sees silence");
        assert_eq!(a.readiness(t), Readiness::Quiet, "blackhole still looks open");
    }

    #[test]
    fn disconnect_is_observed_by_both_sides() {
        let (a, mut b) = Duplex::loopback().into_endpoints();
        let mut a = FaultyTransport::new(a, FaultMode::Disconnect);
        let t = SimTime::ZERO;
        a.trip();
        assert_eq!(a.send(t, b"x"), Err(TransportError::Closed));
        assert_eq!(a.recv(t), Err(TransportError::Closed));
        assert_eq!(b.recv(t), Err(TransportError::Closed), "inner close reached the peer");
    }

    #[test]
    fn byte_armed_fault_cuts_mid_frame() {
        let (mut a, b) = Duplex::loopback().into_endpoints();
        let t = SimTime::ZERO;
        a.send(t, b"0123456789").unwrap();
        // A 4-byte budget on the receiving end: delivery is cut mid-way
        // through the write and everything after is swallowed.
        let mut rx = FaultyTransport::new(b, FaultMode::Blackhole).trip_after_bytes(4);
        assert_eq!(rx.recv(t).unwrap(), b"0123");
        assert!(rx.is_tripped());
        a.send(t, b"more").unwrap();
        assert_eq!(rx.recv(t).unwrap(), b"");
    }

    #[test]
    fn time_armed_fault_fires_at_deadline() {
        let (a, mut b) = Duplex::new(SimDuration::ZERO, usize::MAX).into_endpoints();
        let mut a = FaultyTransport::new(a, FaultMode::Disconnect).trip_at(SimTime::from_secs(5));
        a.send(SimTime::from_secs(4), b"before").unwrap();
        assert_eq!(b.recv(SimTime::from_secs(4)).unwrap(), b"before");
        assert_eq!(a.send(SimTime::from_secs(5), b"after"), Err(TransportError::Closed));
    }
}
