//! # flashflow-proto
//!
//! The coordinator ↔ measurer **control protocol** of FlashFlow (§4.1),
//! reified as a wire format plus sans-IO session state machines.
//!
//! The paper's control plane: a BWAuth (coordinator) authenticates to
//! each measurer and to the target relay, commands them to blast/serve a
//! `t`-second measurement slot over `s` sockets at a capped rate, releases
//! a synchronized start, and collects per-second byte reports from which
//! the capacity estimate is computed. This crate owns everything between
//! "decided to measure" and "per-second numbers collected":
//!
//! | module | role |
//! |---|---|
//! | [`msg`] | message vocabulary: `Auth`, `AuthOk`, `MeasureCmd`, `Ready`, `Go`, `SecondReport`, `SlotDone`, `Abort` |
//! | [`frame`] | length-prefixed, versioned binary codec with a total decoder and typed error taxonomy |
//! | [`session`] | `CoordinatorSession` / `MeasurerSession` state machines with timeout and abort handling |
//! | [`transport`] | in-memory chunked duplex byte stream driven by the simulation clock |
//!
//! The sessions are **sans-IO**: they consume bytes and emit bytes plus
//! actions, never touching sockets or clocks. Today they run over
//! [`transport::Duplex`] inside the fluid simulator (see
//! `flashflow_core::proto_driver`); the same state machines are the
//! contract for a future tokio TCP transport.
//!
//! Security posture: peers are authenticated with pre-shared tokens; all
//! input is length-bounded before buffering; decoding is total (arbitrary
//! bytes produce a typed [`frame::WireError`], never a panic — property
//! tested); a peer that stalls, floods, or speaks out of turn is aborted
//! and its contribution dropped, degrading the measurement instead of
//! wedging it.

pub mod frame;
pub mod msg;
pub mod session;
pub mod transport;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::frame::{decode_payload, encode, FrameDecoder, WireError, MAX_FRAME_LEN};
    pub use crate::msg::{
        AbortReason, MeasureSpec, Msg, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN, PROTOCOL_VERSION,
    };
    pub use crate::session::{
        CoordAction, CoordPhase, CoordinatorSession, MeasurerAction, MeasurerPhase,
        MeasurerSession, SessionTimeouts,
    };
    pub use crate::transport::{Duplex, End};
}
