//! # flashflow-proto
//!
//! The coordinator ↔ measurer **control protocol** of FlashFlow (§4.1),
//! reified as a wire format, sans-IO session state machines, and a
//! pluggable transport layer.
//!
//! The paper's control plane: a BWAuth (coordinator) authenticates to
//! each measurer and to the target relay, commands them to blast/serve a
//! `t`-second measurement slot over `s` sockets at a capped rate, releases
//! a synchronized start, and collects per-second byte reports from which
//! the capacity estimate is computed. This crate owns everything between
//! "decided to measure" and "per-second numbers collected":
//!
//! | module | role |
//! |---|---|
//! | [`msg`] | message vocabulary: `Auth`, `AuthOk`, `MeasureCmd`, `Ready`, `Go`, `SecondReport`, `SlotDone`, `Abort` |
//! | [`blast`] | the data plane: pattern-stamped bulk traffic, per-second byte counters, `DataChannelHello` session binding |
//! | [`frame`] | length-prefixed, versioned binary codec with a total decoder and typed error taxonomy |
//! | [`session`] | `CoordinatorSession` / `MeasurerSession` state machines with timeout, abort, and handshake-replay handling |
//! | [`transport`] | the [`Transport`](transport::Transport) trait and the simulated in-memory stream |
//! | [`tcp`] | a real `std::net` non-blocking TCP transport |
//! | [`fault`] | a fault-injecting transport decorator (blackholes, disconnects) |
//! | [`endpoint`] | `Endpoint`: the one pump loop binding a session to a transport |
//!
//! ## Layering
//!
//! ```text
//!   ShardedEngine (flashflow-core)          flashflow-measurer process
//!        │ one MeasurementEngine per item group   │ one session per connection
//!   Endpoint<CoordinatorSession, _>         Endpoint<MeasurerSession, _>
//!        │ bytes                                 │ bytes
//!        └────────────── dyn Transport ──────────┘
//!            DuplexEnd │ TcpTransport │ FaultyTransport<_>
//! ```
//!
//! The listener side lives here too: [`tcp::TcpAcceptor`] is what a
//! standalone measurer process binds and accepts coordinator
//! connections through.
//!
//! The sessions are **sans-IO**: they consume bytes and emit bytes plus
//! actions, never touching sockets or clocks. Every transport takes its
//! notion of "now" from the caller, so the simulated stream is
//! deterministic and the TCP stream can run timeouts on real or
//! accelerated time — the hardened session logic is byte-for-byte
//! identical across both, which is what lets the security tests cover
//! the deployed path.
//!
//! Security posture: peers are authenticated with pre-shared tokens and
//! a per-handshake random nonce (replayed handshakes are rejected); all
//! input is length-bounded before buffering; decoding is total (arbitrary
//! bytes produce a typed [`frame::WireError`], never a panic — property
//! tested); a peer that stalls, floods, speaks out of turn, or loses its
//! transport is aborted and its contribution dropped, degrading the
//! measurement instead of wedging it.

pub mod blast;
pub mod endpoint;
pub mod fault;
pub mod frame;
pub mod msg;
pub mod session;
pub mod tcp;
pub mod transport;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::blast::{
        binding_nonce, channel_key, frame_tag, secret_channel_key, BackgroundMeter, BlastError,
        BlastEvent, BlastParser, BlastPattern, ByteCounter, DataChannelHello, Echoer, ReportSource,
        TrafficSink, TrafficSource,
    };
    pub use crate::endpoint::Endpoint;
    pub use crate::fault::{FaultMode, FaultyTransport};
    pub use crate::frame::{decode_payload, encode, FrameDecoder, WireError, MAX_FRAME_LEN};
    pub use crate::msg::{
        AbortReason, MeasureSpec, Msg, PeerRole, TargetEndpoint, AUTH_TOKEN_LEN, FINGERPRINT_LEN,
        PROTOCOL_VERSION,
    };
    pub use crate::session::{
        CoordAction, CoordPhase, CoordinatorSession, MeasurerAction, MeasurerPhase,
        MeasurerSession, RelaySession, ReplayWindow, SessionState, SessionTimeouts,
        DEFAULT_REPORT_AHEAD_CAP,
    };
    pub use crate::tcp::{TcpAcceptor, TcpTransport};
    pub use crate::transport::{Duplex, DuplexEnd, End, Readiness, Transport, TransportError};
}
