//! The control-plane message vocabulary (§4.1).
//!
//! One measurement slot is driven by a small fixed conversation between
//! the coordinator (the BWAuth) and each peer (a measurer, or the target
//! relay in its reporting role):
//!
//! ```text
//! coordinator                         peer
//!     | ---------- Auth ---------------> |   authenticate
//!     | <--------- AuthOk -------------- |
//!     | ---------- MeasureCmd ---------> |   relay_fp, t, s, rate cap
//!     | <--------- Ready --------------- |
//!     | ---------- Go -----------------> |   all peers ready: blast
//!     | <--------- SecondReport x t ---- |   per-second byte counts
//!     | <--------- SlotDone ------------ |
//! ```
//!
//! Either side may send [`Msg::Abort`] at any point; the conversation is
//! then over. All multi-byte integers are big-endian on the wire (see
//! [`crate::frame`] for the framing).

/// Protocol version carried in every frame. Version 2 added the
/// `Auth`/`AuthOk` handshake nonce and the `ConnectionLost` abort code;
/// version 3 added the `Flooded` abort code (per-session `SecondReport`
/// backpressure); version 4 added the target endpoint and measurement
/// secret to `MeasureCmd` (the relay-echo topology: measurers dial the
/// target relay's data listener and stamp their blast with a
/// per-measurement key); version 5 added the `Resume` handshake (a
/// restarted coordinator re-adopts a prior conversation by proving it
/// knows that conversation's nonce, instead of being replay-rejected);
/// version 6 added the `trace_id` to `MeasureCmd` and `Resume` (the
/// coordinator-minted correlation key every peer stamps into its own
/// telemetry, making the per-process JSONL streams one joinable causal
/// record per item-attempt).
/// An older peer is rejected with a clean `BadVersion` error instead of
/// a confusing body-layout failure.
pub const PROTOCOL_VERSION: u8 = 6;

/// Length of the pre-shared authentication token.
pub const AUTH_TOKEN_LEN: usize = 32;

/// Length of a relay fingerprint (SHA-1 sized, as in Tor descriptors).
pub const FINGERPRINT_LEN: usize = 20;

/// What kind of peer is authenticating to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PeerRole {
    /// A measurer host that will blast the target.
    Measurer = 0,
    /// The target relay itself, reporting its background traffic.
    Target = 1,
}

impl PeerRole {
    /// Parses a wire byte.
    pub fn from_u8(v: u8) -> Option<PeerRole> {
        match v {
            0 => Some(PeerRole::Measurer),
            1 => Some(PeerRole::Target),
            _ => None,
        }
    }
}

/// Why a conversation was aborted. Fixed codes keep frames bounded; the
/// human-readable detail lives in session errors, not on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AbortReason {
    /// The authentication token did not match.
    AuthFailed = 0,
    /// A handshake step did not complete in time.
    HandshakeTimeout = 1,
    /// A running peer stopped sending per-second reports.
    ReportTimeout = 2,
    /// A frame arrived that the current state cannot accept.
    OutOfOrder = 3,
    /// A frame failed to decode.
    Malformed = 4,
    /// The sender is shutting down (operator action, reschedule, ...).
    Shutdown = 5,
    /// The underlying transport disconnected or failed mid-conversation.
    ConnectionLost = 6,
    /// The peer sent per-second reports far faster than seconds elapse
    /// (an unsolicited-report flood); the coordinator refuses to buffer
    /// them and drops the peer.
    Flooded = 7,
}

impl AbortReason {
    /// Parses a wire byte.
    pub fn from_u8(v: u8) -> Option<AbortReason> {
        match v {
            0 => Some(AbortReason::AuthFailed),
            1 => Some(AbortReason::HandshakeTimeout),
            2 => Some(AbortReason::ReportTimeout),
            3 => Some(AbortReason::OutOfOrder),
            4 => Some(AbortReason::Malformed),
            5 => Some(AbortReason::Shutdown),
            6 => Some(AbortReason::ConnectionLost),
            7 => Some(AbortReason::Flooded),
            _ => None,
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AbortReason::AuthFailed => "authentication failed",
            AbortReason::HandshakeTimeout => "handshake timeout",
            AbortReason::ReportTimeout => "per-second report timeout",
            AbortReason::OutOfOrder => "out-of-order message",
            AbortReason::Malformed => "malformed frame",
            AbortReason::Shutdown => "peer shutdown",
            AbortReason::ConnectionLost => "transport connection lost",
            AbortReason::Flooded => "per-second report flood",
        };
        f.write_str(s)
    }
}

/// Where a measurer should aim its blast: the target relay's data
/// listener. A zero port means "no endpoint" — the pre-echo topologies
/// (simulation, coordinator-blasts-measurer) where the data plane never
/// leaves the coordinator's engine.
///
/// IPv4 only, like the paper's prototype; six bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TargetEndpoint {
    /// IPv4 address octets.
    pub ip: [u8; 4],
    /// TCP port; `0` means no endpoint is set.
    pub port: u16,
}

impl TargetEndpoint {
    /// The "no endpoint" sentinel (port zero).
    pub const NONE: TargetEndpoint = TargetEndpoint { ip: [0; 4], port: 0 };

    /// Wraps a socket address; `None` for non-IPv4 addresses.
    pub fn from_addr(addr: std::net::SocketAddr) -> Option<TargetEndpoint> {
        match addr {
            std::net::SocketAddr::V4(v4) => {
                Some(TargetEndpoint { ip: v4.ip().octets(), port: v4.port() })
            }
            std::net::SocketAddr::V6(_) => None,
        }
    }

    /// The endpoint as a dialable address, `None` when unset.
    pub fn socket_addr(&self) -> Option<std::net::SocketAddr> {
        if self.port == 0 {
            return None;
        }
        Some(std::net::SocketAddr::from((self.ip, self.port)))
    }

    /// True when no endpoint is set.
    pub fn is_none(&self) -> bool {
        self.port == 0
    }
}

/// The command parameters of one measurement slot (§4.1's `t`, `s`, and
/// the per-measurer allocation `a_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeasureSpec {
    /// Fingerprint of the relay to measure.
    pub relay_fp: [u8; FINGERPRINT_LEN],
    /// Slot length in whole seconds (`t`).
    pub slot_secs: u32,
    /// Sockets this peer opens to the target (its `s/m` share).
    pub sockets: u32,
    /// Send-rate cap in bytes/second (`a_i`); `0` means uncapped. For
    /// the target role in the echo topology this is instead the
    /// background-traffic allowance (`r·z`) the relay may admit per
    /// second during the slot; `0` leaves background uncapped.
    pub rate_cap: u64,
    /// The target relay's data listener for the echo topology
    /// ([`TargetEndpoint::NONE`] everywhere else). Measurers dial their
    /// blast channels here instead of being blasted by the coordinator.
    pub target: TargetEndpoint,
    /// Coordinator-chosen **secret** shared by every peer of one
    /// measurement item, never sent on a data channel. Echo-topology
    /// data channels derive two values from it: the *public* hello
    /// binding nonce (a one-way hash of the secret, see
    /// [`binding_nonce`](crate::blast::binding_nonce)) and the keyed
    /// integrity tag on every blast frame — so a data-channel MITM who
    /// reads the hello nonce off the wire still cannot forge payload
    /// bytes. `0` outside the echo topology.
    pub measurement_secret: u64,
    /// Coordinator-minted correlation key for this item-attempt,
    /// **public** (unlike the secret): every peer stamps it into the
    /// telemetry it emits for the item, so the coordinator's, the
    /// measurers', and the relay's JSONL streams join into one causal
    /// record. `0` means untraced (pre-v6 topologies and tests).
    pub trace_id: u64,
}

impl Default for MeasureSpec {
    fn default() -> Self {
        MeasureSpec {
            relay_fp: [0; FINGERPRINT_LEN],
            slot_secs: 0,
            sockets: 0,
            rate_cap: 0,
            target: TargetEndpoint::NONE,
            measurement_secret: 0,
            trace_id: 0,
        }
    }
}

/// A control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Coordinator → peer: authenticate with a pre-shared token.
    Auth {
        /// The pre-shared token for this peer.
        token: [u8; AUTH_TOKEN_LEN],
        /// The role the coordinator expects the peer to play.
        role: PeerRole,
        /// Fresh random challenge. The peer must echo it in `AuthOk`,
        /// binding the response to *this* handshake, and rejects a nonce
        /// it has already seen (a replayed `Auth`).
        nonce: u64,
    },
    /// Peer → coordinator: token accepted; `session` names the slot.
    AuthOk {
        /// Peer-chosen identifier echoed in logs and errors.
        session: u64,
        /// Echo of the coordinator's `Auth` nonce; a mismatch (a replayed
        /// or pre-recorded `AuthOk`) fails the handshake.
        nonce: u64,
    },
    /// Coordinator → peer: prepare to measure.
    MeasureCmd(MeasureSpec),
    /// Peer → coordinator: prepared (sockets open, processes up).
    Ready,
    /// Coordinator → peer: every peer is ready — start the slot now.
    Go,
    /// Peer → coordinator: byte counts for one completed second.
    SecondReport {
        /// Zero-based second index within the slot.
        second: u32,
        /// Background (client) bytes the peer reports for this second
        /// (`y_j`; zero for measurers, meaningful for the target).
        bg_bytes: u64,
        /// Measurement bytes relayed this second (`x_j` share).
        measured_bytes: u64,
    },
    /// Peer → coordinator: all `slot_secs` seconds reported.
    SlotDone,
    /// Either direction: the conversation is over.
    Abort {
        /// Why.
        reason: AbortReason,
    },
    /// Coordinator → parked peer: a connection-liveness probe. A
    /// serving peer awaiting its next `Auth` answers with [`Msg::Pong`]
    /// echoing the probe value (and refreshes its accept deadline);
    /// this is what lets a connection pool health-check a warm
    /// connection that idled across a period gap without starting a
    /// conversation.
    Ping {
        /// Prober-chosen value the `Pong` must echo.
        probe: u64,
    },
    /// Peer → coordinator: answer to [`Msg::Ping`].
    Pong {
        /// Echo of the probe value.
        probe: u64,
    },
    /// Coordinator → peer: authenticate *and* re-adopt a conversation
    /// begun by an earlier coordinator incarnation. Nonces are derived
    /// deterministically from a journaled measurement secret, so a
    /// restarted coordinator replaying its own `Auth` would be rejected
    /// by the peer's replay window; `Resume` instead *proves lineage* —
    /// `prior_nonce` must already be in the peer's window (only the
    /// coordinator that ran the earlier attempt knows it), while `nonce`
    /// must be fresh exactly like an `Auth` nonce. The peer answers with
    /// a normal [`Msg::AuthOk`] echoing `nonce`.
    Resume {
        /// The pre-shared token for this peer.
        token: [u8; AUTH_TOKEN_LEN],
        /// The role the coordinator expects the peer to play.
        role: PeerRole,
        /// The nonce of the conversation being resumed; rejected with
        /// `AuthFailed` if the peer has *not* witnessed it (a resume
        /// claim with no lineage is just a guess).
        nonce_prior: u64,
        /// Fresh challenge for this attempt, with `Auth` semantics:
        /// rejected if already witnessed, echoed in `AuthOk`.
        nonce: u64,
        /// Correlation key of the *resumed* attempt (see
        /// [`MeasureSpec::trace_id`]): the re-adopted conversation's
        /// telemetry joins the new attempt's stream under this id even
        /// before the re-sent `MeasureCmd` arrives.
        trace_id: u64,
    },
}

/// Wire type tags; `Msg` and frame decoding agree through these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum MsgType {
    Auth = 1,
    AuthOk = 2,
    MeasureCmd = 3,
    Ready = 4,
    Go = 5,
    SecondReport = 6,
    SlotDone = 7,
    Abort = 8,
    Ping = 9,
    Pong = 10,
    Resume = 11,
}

impl MsgType {
    pub(crate) fn from_u8(v: u8) -> Option<MsgType> {
        match v {
            1 => Some(MsgType::Auth),
            2 => Some(MsgType::AuthOk),
            3 => Some(MsgType::MeasureCmd),
            4 => Some(MsgType::Ready),
            5 => Some(MsgType::Go),
            6 => Some(MsgType::SecondReport),
            7 => Some(MsgType::SlotDone),
            8 => Some(MsgType::Abort),
            9 => Some(MsgType::Ping),
            10 => Some(MsgType::Pong),
            11 => Some(MsgType::Resume),
            _ => None,
        }
    }
}

impl Msg {
    /// A short name for logs and errors.
    pub fn name(&self) -> &'static str {
        match self {
            Msg::Auth { .. } => "Auth",
            Msg::AuthOk { .. } => "AuthOk",
            Msg::MeasureCmd(_) => "MeasureCmd",
            Msg::Ready => "Ready",
            Msg::Go => "Go",
            Msg::SecondReport { .. } => "SecondReport",
            Msg::SlotDone => "SlotDone",
            Msg::Abort { .. } => "Abort",
            Msg::Ping { .. } => "Ping",
            Msg::Pong { .. } => "Pong",
            Msg::Resume { .. } => "Resume",
        }
    }
}
