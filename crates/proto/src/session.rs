//! Sans-IO session state machines for both ends of the protocol.
//!
//! A session consumes raw bytes ([`CoordinatorSession::receive`] /
//! [`MeasurerSession::receive`]), emits encoded frames to send
//! (`poll_outbound`) and *actions* for its driver (`poll_action`), and is
//! advanced through time with `on_tick`. No clocks, sockets, or threads
//! are touched — the caller owns IO and time, which is what lets the same
//! sessions run over the in-memory simulated transport today and a real
//! TCP transport later.
//!
//! Robustness rules (§4.1 "a stalled or lying measurer must degrade the
//! measurement, not wedge it"):
//!
//! * every waiting state has a deadline; passing it aborts the session
//!   with [`AbortReason::HandshakeTimeout`] or
//!   [`AbortReason::ReportTimeout`];
//! * any frame the current state cannot accept aborts with
//!   [`AbortReason::OutOfOrder`];
//! * any undecodable byte stream aborts with [`AbortReason::Malformed`];
//! * a running peer may report at most [`CoordinatorSession`]'s
//!   report-ahead cap seconds beyond the wall time elapsed since `Go`; a
//!   flood of unsolicited `SecondReport`s beyond it aborts with
//!   [`AbortReason::Flooded`] instead of growing buffers without bound;
//! * a terminal session ignores further input instead of erroring, so a
//!   late frame from a dead peer cannot resurrect anything.
//!
//! Handshake freshness: every `Auth` carries a coordinator-chosen random
//! nonce that the peer must echo in `AuthOk`. The coordinator rejects an
//! `AuthOk` with the wrong nonce (a replayed or pre-recorded response),
//! and a peer that threads a [`ReplayWindow`] across its sessions rejects
//! an `Auth` nonce it has already seen (a replayed handshake opener).

use std::collections::{HashSet, VecDeque};

use flashflow_simnet::time::{SimDuration, SimTime};

use crate::frame::{encode, FrameDecoder};
use crate::msg::{AbortReason, MeasureSpec, Msg, PeerRole, AUTH_TOKEN_LEN};

/// The driver-facing surface shared by both session halves: bytes in,
/// bytes out, actions out, time in. [`crate::endpoint::Endpoint`] and the
/// engine layers are generic over this, which is what lets one pump loop
/// drive either side of the protocol over any transport.
pub trait SessionState {
    /// What the session asks its driver to do.
    type Action;

    /// Feeds received bytes; decoded frames advance the state machine.
    fn receive(&mut self, now: SimTime, bytes: &[u8]);
    /// Next encoded frame to put on the wire, if any.
    fn poll_outbound(&mut self) -> Option<Vec<u8>>;
    /// Next action for the driver, if any.
    fn poll_action(&mut self) -> Option<Self::Action>;
    /// Advances time; fires the current deadline if passed.
    fn on_tick(&mut self, now: SimTime);
    /// Aborts locally; notifies the peer if the session is still live.
    fn abort(&mut self, reason: AbortReason);
    /// True once the session can make no further progress.
    fn is_terminal(&self) -> bool;
}

/// A bounded set of `Auth` nonces a peer has accepted, threaded across
/// that peer's sessions so a replayed handshake opener is rejected even
/// though each conversation gets a fresh [`MeasurerSession`].
///
/// Semantics (the contract tests and the measurer binary rely on):
///
/// * the window never holds more than `cap` nonces, no matter how many
///   unique nonces are witnessed — memory stays bounded under a flood;
/// * once full, witnessing a *fresh* nonce evicts the **least recently
///   seen** nonce. A replay *attempt* refreshes its nonce's recency even
///   though it is rejected, so an attacker replaying a nonce under
///   attack cannot also age it out of the window with filler nonces;
/// * a nonce that has been evicted is forgotten: replaying it afterwards
///   is **accepted** by the window. This is the unavoidable trade-off of
///   a bounded window; it is safe because the replayed `Auth` only opens
///   a session — the coordinator's own `AuthOk` nonce-echo check still
///   rejects any stale response produced from it, and a flood of `cap`
///   unique nonces requires knowing the pre-shared token in the first
///   place.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl Default for ReplayWindow {
    fn default() -> Self {
        ReplayWindow::new(1024)
    }
}

impl ReplayWindow {
    /// A window remembering at most `cap` nonces.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "replay window needs capacity");
        ReplayWindow { seen: HashSet::new(), order: VecDeque::new(), cap }
    }

    /// Records `nonce`; returns `true` if it was fresh, `false` if it was
    /// already in the window (a replay). A caught replay refreshes the
    /// nonce's recency, so repeated replay attempts keep it protected.
    pub fn witness(&mut self, nonce: u64) -> bool {
        if self.seen.contains(&nonce) {
            if let Some(pos) = self.order.iter().position(|&n| n == nonce) {
                self.order.remove(pos);
                self.order.push_back(nonce);
            }
            return false;
        }
        if self.order.len() == self.cap {
            let evicted = self.order.pop_front().expect("cap > 0");
            self.seen.remove(&evicted);
        }
        self.order.push_back(nonce);
        self.seen.insert(nonce);
        true
    }

    /// True if `nonce` is currently remembered.
    pub fn contains(&self, nonce: u64) -> bool {
        self.seen.contains(&nonce)
    }

    /// Number of nonces currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no nonce has been witnessed yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The remembered nonces, least recently seen first (inspection and
    /// window merging; a process serving concurrent sessions should
    /// claim nonces via [`MeasurerSession::accepted_nonce`] instead of
    /// bulk-merging windows after the fact).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.order.iter().copied()
    }
}

/// Timeouts governing a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTimeouts {
    /// Longest wait for any single handshake step (Auth → AuthOk,
    /// MeasureCmd → Ready, Ready → Go).
    pub handshake: SimDuration,
    /// Longest gap between per-second reports while a slot runs.
    pub report: SimDuration,
}

impl Default for SessionTimeouts {
    fn default() -> Self {
        SessionTimeouts { handshake: SimDuration::from_secs(10), report: SimDuration::from_secs(5) }
    }
}

/// Default for [`CoordinatorSession::with_report_ahead_cap`]: how many
/// seconds a peer may report beyond the time elapsed since its `Go`.
///
/// Legitimate peers run at most a couple of seconds ahead (latency
/// jitter, coalesced TCP delivery); a peer blasting a whole slot's
/// worth of reports at once is inflating or probing, and buffering its
/// backlog is how memory grows without bound.
///
/// A coordinator that *knows* its peer reports faster than the
/// coordinator's own clock — e.g. a `flashflow-measurer --speedup N`
/// peer in an accelerated harness — must raise the cap to at least the
/// slot length via [`CoordinatorSession::with_report_ahead_cap`], or
/// the legitimate fast reports will be mistaken for a flood.
pub const DEFAULT_REPORT_AHEAD_CAP: u32 = 8;

/// Where a coordinator-side session stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordPhase {
    /// Created; `start` not yet called.
    Idle,
    /// Auth sent, waiting for AuthOk.
    AwaitAuthOk,
    /// MeasureCmd sent, waiting for Ready.
    AwaitReady,
    /// Peer is ready; waiting for the coordinator's barrier (`go`).
    Armed,
    /// Go sent; collecting per-second reports.
    Running,
    /// SlotDone received.
    Done,
    /// Aborted (either side) or timed out.
    Failed,
}

/// What a coordinator session asks its driver to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordAction {
    /// The peer authenticated and reports ready; when every session is
    /// `Armed` the driver should call `go` on all of them.
    PeerReady,
    /// One per-second report arrived.
    Sample {
        /// Zero-based second index.
        second: u32,
        /// Reported background bytes.
        bg_bytes: u64,
        /// Reported measurement bytes.
        measured_bytes: u64,
    },
    /// The peer finished its slot.
    PeerDone,
    /// The session is dead; drop the peer's contribution.
    PeerFailed {
        /// Why.
        reason: AbortReason,
    },
}

/// The coordinator's half of one conversation.
#[derive(Debug)]
pub struct CoordinatorSession {
    phase: CoordPhase,
    token: [u8; AUTH_TOKEN_LEN],
    role: PeerRole,
    spec: MeasureSpec,
    nonce: u64,
    /// When set, `start()` opens with [`Msg::Resume`] proving lineage
    /// from the conversation that accepted this nonce.
    resume_prior: Option<u64>,
    timeouts: SessionTimeouts,
    deadline: Option<SimTime>,
    seconds_received: u32,
    /// When `Go` was sent; the reference point for the flood cap.
    go_at: Option<SimTime>,
    report_ahead_cap: u32,
    decoder: FrameDecoder,
    outbound: VecDeque<Vec<u8>>,
    actions: VecDeque<CoordAction>,
    /// Frames successfully decoded from the peer.
    pub frames_rx: u64,
    /// Frames queued for the peer.
    pub frames_tx: u64,
}

impl CoordinatorSession {
    /// A session that will drive `role`-peer through `spec`. `nonce`
    /// must be fresh and unpredictable (the caller owns randomness —
    /// sessions stay deterministic); the peer has to echo it in `AuthOk`.
    pub fn new(
        token: [u8; AUTH_TOKEN_LEN],
        role: PeerRole,
        spec: MeasureSpec,
        nonce: u64,
        timeouts: SessionTimeouts,
    ) -> Self {
        CoordinatorSession {
            phase: CoordPhase::Idle,
            token,
            role,
            spec,
            nonce,
            resume_prior: None,
            timeouts,
            deadline: None,
            seconds_received: 0,
            go_at: None,
            report_ahead_cap: DEFAULT_REPORT_AHEAD_CAP,
            decoder: FrameDecoder::new(),
            outbound: VecDeque::new(),
            actions: VecDeque::new(),
            frames_rx: 0,
            frames_tx: 0,
        }
    }

    /// Overrides the per-session `SecondReport` backpressure cap: the
    /// peer may report at most `cap` seconds beyond the time elapsed
    /// since its `Go` (as measured by the caller-supplied clock) before
    /// the session aborts with [`AbortReason::Flooded`]. Defaults to
    /// [`DEFAULT_REPORT_AHEAD_CAP`].
    #[must_use]
    pub fn with_report_ahead_cap(mut self, cap: u32) -> Self {
        self.report_ahead_cap = cap;
        self
    }

    /// Current phase.
    pub fn phase(&self) -> CoordPhase {
        self.phase
    }

    /// True once the session can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, CoordPhase::Done | CoordPhase::Failed)
    }

    /// The command this session was built around.
    pub fn spec(&self) -> MeasureSpec {
        self.spec
    }

    /// The role this session expects of its peer.
    pub fn role(&self) -> PeerRole {
        self.role
    }

    /// The handshake nonce this session challenges its peer with.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// Marks this session as **resuming** a conversation an earlier
    /// coordinator incarnation opened with `prior_nonce`: `start()` then
    /// sends [`Msg::Resume`] instead of [`Msg::Auth`]. The peer accepts
    /// iff it has witnessed `prior_nonce` (proof of lineage) and this
    /// session's own nonce is fresh; everything after the handshake is
    /// unchanged. A crashed coordinator whose nonces derive from a
    /// journaled secret *must* resume — replaying the derived `Auth`
    /// nonce would be correctly rejected by the peer's replay window.
    #[must_use]
    pub fn resuming(mut self, prior_nonce: u64) -> Self {
        self.resume_prior = Some(prior_nonce);
        self
    }

    /// The prior-conversation nonce this session resumes from, if any.
    pub fn resume_prior(&self) -> Option<u64> {
        self.resume_prior
    }

    /// The data-channel frame-tag key derived from this session's
    /// pre-shared token (see [`channel_key`](crate::blast::channel_key)):
    /// what the engine keys this peer's blast sources with.
    pub fn channel_key(&self) -> u64 {
        crate::blast::channel_key(&self.token)
    }

    /// Opens the conversation: queues `Auth` and starts the handshake
    /// timer.
    ///
    /// # Panics
    /// Panics unless the session is `Idle`.
    pub fn start(&mut self, now: SimTime) {
        assert_eq!(self.phase, CoordPhase::Idle, "start() on a started session");
        let opener = match self.resume_prior {
            Some(nonce_prior) => Msg::Resume {
                token: self.token,
                role: self.role,
                nonce_prior,
                nonce: self.nonce,
                trace_id: self.spec.trace_id,
            },
            None => Msg::Auth { token: self.token, role: self.role, nonce: self.nonce },
        };
        self.send(opener);
        self.phase = CoordPhase::AwaitAuthOk;
        self.deadline = Some(now + self.timeouts.handshake);
    }

    /// Releases the barrier: queues `Go` and starts the report timer.
    ///
    /// # Panics
    /// Panics unless the session is `Armed`.
    pub fn go(&mut self, now: SimTime) {
        assert_eq!(self.phase, CoordPhase::Armed, "go() on a session that is not Armed");
        self.send(Msg::Go);
        self.phase = CoordPhase::Running;
        self.go_at = Some(now);
        self.deadline = Some(now + self.timeouts.report);
    }

    /// Feeds received bytes; decoded frames advance the state machine.
    pub fn receive(&mut self, now: SimTime, bytes: &[u8]) {
        if self.is_terminal() {
            return;
        }
        self.decoder.push(bytes);
        loop {
            match self.decoder.next_msg() {
                Ok(Some(msg)) => {
                    self.frames_rx += 1;
                    self.on_msg(now, msg);
                    if self.is_terminal() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.fail(AbortReason::Malformed, true);
                    return;
                }
            }
        }
    }

    /// Advances time; fires the current deadline if passed.
    pub fn on_tick(&mut self, now: SimTime) {
        if self.is_terminal() {
            return;
        }
        let Some(deadline) = self.deadline else { return };
        if now < deadline {
            return;
        }
        let reason = match self.phase {
            CoordPhase::Running => AbortReason::ReportTimeout,
            _ => AbortReason::HandshakeTimeout,
        };
        self.fail(reason, true);
    }

    /// Aborts locally (e.g. operator shutdown); notifies the peer.
    pub fn abort(&mut self, reason: AbortReason) {
        if !self.is_terminal() {
            self.fail(reason, true);
        }
    }

    /// Next encoded frame to put on the wire, if any.
    pub fn poll_outbound(&mut self) -> Option<Vec<u8>> {
        self.outbound.pop_front()
    }

    /// Next action for the driver, if any.
    pub fn poll_action(&mut self) -> Option<CoordAction> {
        self.actions.pop_front()
    }

    fn on_msg(&mut self, now: SimTime, msg: Msg) {
        match (self.phase, msg) {
            (CoordPhase::AwaitAuthOk, Msg::AuthOk { nonce, .. }) => {
                // An AuthOk that does not echo this session's challenge
                // is a replayed or pre-recorded response, not proof the
                // peer holds the token *now*.
                if nonce != self.nonce {
                    self.fail(AbortReason::AuthFailed, true);
                    return;
                }
                self.send(Msg::MeasureCmd(self.spec));
                self.phase = CoordPhase::AwaitReady;
                self.deadline = Some(now + self.timeouts.handshake);
            }
            (CoordPhase::AwaitReady, Msg::Ready) => {
                self.phase = CoordPhase::Armed;
                // The barrier wait is bounded too: if the driver never
                // releases it (every other peer failed), this session
                // still times out instead of idling forever.
                self.deadline = Some(now + self.timeouts.handshake);
                self.actions.push_back(CoordAction::PeerReady);
            }
            (CoordPhase::Running, Msg::SecondReport { second, bg_bytes, measured_bytes }) => {
                // Reports must arrive exactly once, in order, and never
                // past the commanded slot: a compromised measurer that
                // replays or invents seconds would otherwise inflate
                // every x_j it contributes to — the precise attack this
                // trust boundary exists to stop.
                if second != self.seconds_received || second >= self.spec.slot_secs {
                    self.fail(AbortReason::OutOfOrder, true);
                    return;
                }
                // Backpressure: a report for second `j` should not arrive
                // before roughly `j` seconds have passed since Go. A peer
                // far ahead of the clock is flooding unsolicited reports;
                // buffering its backlog would grow memory without bound,
                // so drop the peer instead (its samples are quarantined
                // anyway).
                let since_go = now
                    .saturating_duration_since(self.go_at.expect("Running implies go_at"))
                    .as_secs();
                if u64::from(second) > since_go + u64::from(self.report_ahead_cap) {
                    self.fail(AbortReason::Flooded, true);
                    return;
                }
                self.seconds_received += 1;
                self.deadline = Some(now + self.timeouts.report);
                self.actions.push_back(CoordAction::Sample { second, bg_bytes, measured_bytes });
            }
            (CoordPhase::Running, Msg::SlotDone) => {
                // SlotDone promises every commanded second was reported
                // (see [`Msg::SlotDone`]); a short slot is a violation,
                // not a completion.
                if self.seconds_received != self.spec.slot_secs {
                    self.fail(AbortReason::OutOfOrder, true);
                    return;
                }
                self.phase = CoordPhase::Done;
                self.deadline = None;
                self.actions.push_back(CoordAction::PeerDone);
            }
            (_, Msg::Abort { reason }) => {
                self.fail(reason, false);
            }
            (_, other) => {
                debug_assert!(!self.is_terminal());
                let _ = other;
                self.fail(AbortReason::OutOfOrder, true);
            }
        }
    }

    fn send(&mut self, msg: Msg) {
        self.frames_tx += 1;
        self.outbound.push_back(encode(&msg));
    }

    fn fail(&mut self, reason: AbortReason, notify_peer: bool) {
        if notify_peer {
            self.send(Msg::Abort { reason });
        }
        self.phase = CoordPhase::Failed;
        self.deadline = None;
        self.actions.push_back(CoordAction::PeerFailed { reason });
    }
}

/// Where a peer-side session stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurerPhase {
    /// Waiting for the coordinator's Auth.
    AwaitAuth,
    /// Authenticated; waiting for MeasureCmd.
    AwaitCmd,
    /// Ready sent; waiting for Go.
    AwaitGo,
    /// Blasting (or, for the target role, reporting).
    Running,
    /// SlotDone sent.
    Done,
    /// Aborted (either side) or timed out.
    Failed,
}

/// What a peer session asks its driver to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurerAction {
    /// Open sockets / build circuits for this command.
    Prepare {
        /// The slot command.
        spec: MeasureSpec,
    },
    /// Go received: start blasting and reporting seconds.
    Start {
        /// The slot command.
        spec: MeasureSpec,
    },
    /// Stop blasting and tear down (slot over or session dead).
    Stop,
}

/// The measurer's (or reporting target's) half of one conversation.
#[derive(Debug)]
pub struct MeasurerSession {
    phase: MeasurerPhase,
    expected_token: [u8; AUTH_TOKEN_LEN],
    expected_role: PeerRole,
    session_id: u64,
    timeouts: SessionTimeouts,
    deadline: Option<SimTime>,
    spec: Option<MeasureSpec>,
    seconds_sent: u32,
    replay: ReplayWindow,
    /// The `Auth` nonce accepted by this session, once past that step.
    accepted_nonce: Option<u64>,
    /// True when the conversation was opened by an accepted `Resume`.
    resumed: bool,
    /// The trace id an accepted `Resume` carried (the resumed attempt's
    /// correlation key), available before the re-sent `MeasureCmd`.
    resume_trace_id: Option<u64>,
    decoder: FrameDecoder,
    outbound: VecDeque<Vec<u8>>,
    actions: VecDeque<MeasurerAction>,
    /// Frames successfully decoded from the coordinator.
    pub frames_rx: u64,
    /// Frames queued for the coordinator.
    pub frames_tx: u64,
}

impl MeasurerSession {
    /// A session expecting `expected_token` for `expected_role`, with an
    /// empty replay window (see [`MeasurerSession::with_replay_window`]).
    pub fn new(
        expected_token: [u8; AUTH_TOKEN_LEN],
        expected_role: PeerRole,
        session_id: u64,
        timeouts: SessionTimeouts,
    ) -> Self {
        MeasurerSession {
            phase: MeasurerPhase::AwaitAuth,
            expected_token,
            expected_role,
            session_id,
            timeouts,
            deadline: None,
            spec: None,
            seconds_sent: 0,
            replay: ReplayWindow::default(),
            accepted_nonce: None,
            resumed: false,
            resume_trace_id: None,
            decoder: FrameDecoder::new(),
            outbound: VecDeque::new(),
            actions: VecDeque::new(),
            frames_rx: 0,
            frames_tx: 0,
        }
    }

    /// Seeds this session with the nonces earlier sessions on the same
    /// peer accepted, so a replayed `Auth` is rejected across
    /// conversations. A long-lived peer extracts the window with
    /// [`MeasurerSession::take_replay_window`] when a conversation ends
    /// and threads it into the next session.
    pub fn with_replay_window(mut self, window: ReplayWindow) -> Self {
        self.replay = window;
        self
    }

    /// Hands the replay window (including this session's accepted nonce)
    /// back to the driver, leaving an empty one behind.
    pub fn take_replay_window(&mut self) -> ReplayWindow {
        std::mem::take(&mut self.replay)
    }

    /// The `Auth` nonce this session accepted, once the handshake has
    /// passed that step. A process serving **concurrent** sessions uses
    /// this to claim the nonce in a process-wide [`ReplayWindow`] the
    /// moment it is accepted (see the `flashflow-measurer` binary) — a
    /// session-local window alone cannot arbitrate two simultaneous
    /// connections replaying the same opener.
    pub fn accepted_nonce(&self) -> Option<u64> {
        self.accepted_nonce
    }

    /// True when this conversation was opened by an accepted
    /// [`Msg::Resume`] — a restarted coordinator re-adopting a prior
    /// attempt rather than a fresh `Auth` (surfaced so processes can
    /// count resumptions).
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// The trace id the accepted [`Msg::Resume`] carried, if this
    /// conversation was resumed: the correlation key of the attempt
    /// being re-adopted, so a peer can scope its telemetry before the
    /// re-sent `MeasureCmd` (whose spec repeats the id) arrives.
    pub fn resume_trace_id(&self) -> Option<u64> {
        self.resume_trace_id
    }

    /// Current phase.
    pub fn phase(&self) -> MeasurerPhase {
        self.phase
    }

    /// True once the session can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, MeasurerPhase::Done | MeasurerPhase::Failed)
    }

    /// Seconds reported so far.
    pub fn seconds_sent(&self) -> u32 {
        self.seconds_sent
    }

    /// The data-channel frame-tag key derived from this peer's
    /// pre-shared token (see [`channel_key`](crate::blast::channel_key)).
    pub fn channel_key(&self) -> u64 {
        crate::blast::channel_key(&self.expected_token)
    }

    /// Feeds received bytes; decoded frames advance the state machine.
    pub fn receive(&mut self, now: SimTime, bytes: &[u8]) {
        if self.is_terminal() {
            return;
        }
        self.decoder.push(bytes);
        loop {
            match self.decoder.next_msg() {
                Ok(Some(msg)) => {
                    self.frames_rx += 1;
                    self.on_msg(now, msg);
                    if self.is_terminal() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.fail(AbortReason::Malformed, true);
                    return;
                }
            }
        }
    }

    /// Advances time; a peer mid-handshake whose coordinator goes silent
    /// gives up rather than holding resources forever — including a
    /// coordinator that connects and never says anything at all: the
    /// first tick arms an accept-time deadline for the initial `Auth`,
    /// so a silent connection cannot hold a session (and its serving
    /// thread, in a measurer process) open indefinitely.
    pub fn on_tick(&mut self, now: SimTime) {
        if self.is_terminal() {
            return;
        }
        if self.deadline.is_none() && self.phase == MeasurerPhase::AwaitAuth {
            self.deadline = Some(now + self.timeouts.handshake);
            return;
        }
        let Some(deadline) = self.deadline else { return };
        if now >= deadline {
            self.fail(AbortReason::HandshakeTimeout, true);
        }
    }

    /// Reports one completed second of the running slot. Queues the
    /// `SecondReport`, and `SlotDone` after the final second (the driver
    /// then receives [`MeasurerAction::Stop`]).
    ///
    /// # Panics
    /// Panics unless the session is `Running`.
    pub fn report_second(&mut self, bg_bytes: u64, measured_bytes: u64) {
        assert_eq!(self.phase, MeasurerPhase::Running, "report_second outside Running");
        let spec = self.spec.expect("Running implies spec");
        let second = self.seconds_sent;
        self.send(Msg::SecondReport { second, bg_bytes, measured_bytes });
        self.seconds_sent += 1;
        if self.seconds_sent >= spec.slot_secs {
            self.send(Msg::SlotDone);
            self.phase = MeasurerPhase::Done;
            self.deadline = None;
            self.actions.push_back(MeasurerAction::Stop);
        }
    }

    /// Aborts locally; notifies the coordinator.
    pub fn abort(&mut self, reason: AbortReason) {
        if !self.is_terminal() {
            self.fail(reason, true);
        }
    }

    /// Next encoded frame to put on the wire, if any.
    pub fn poll_outbound(&mut self) -> Option<Vec<u8>> {
        self.outbound.pop_front()
    }

    /// Next action for the driver, if any.
    pub fn poll_action(&mut self) -> Option<MeasurerAction> {
        self.actions.pop_front()
    }

    fn on_msg(&mut self, now: SimTime, msg: Msg) {
        match (self.phase, msg) {
            // A liveness probe on a parked connection: answer and
            // refresh the accept deadline — the prober (a connection
            // pool at checkout) is about to start a conversation.
            (MeasurerPhase::AwaitAuth, Msg::Ping { probe }) => {
                self.send(Msg::Pong { probe });
                self.deadline = Some(now + self.timeouts.handshake);
            }
            (MeasurerPhase::AwaitAuth, Msg::Auth { token, role, nonce }) => {
                if token != self.expected_token || role != self.expected_role {
                    self.fail(AbortReason::AuthFailed, true);
                    return;
                }
                // A nonce this peer has already accepted is a replayed
                // handshake — reject it even though the token matches.
                if !self.replay.witness(nonce) {
                    self.fail(AbortReason::AuthFailed, true);
                    return;
                }
                self.accepted_nonce = Some(nonce);
                self.send(Msg::AuthOk { session: self.session_id, nonce });
                self.phase = MeasurerPhase::AwaitCmd;
                self.deadline = Some(now + self.timeouts.handshake);
            }
            (
                MeasurerPhase::AwaitAuth,
                Msg::Resume { token, role, nonce_prior, nonce, trace_id },
            ) => {
                if token != self.expected_token || role != self.expected_role {
                    self.fail(AbortReason::AuthFailed, true);
                    return;
                }
                // Lineage: the prior nonce must already be in the window
                // — only the coordinator that ran the earlier attempt
                // knows a nonce this peer accepted. A resume claim
                // naming an unwitnessed nonce is just a guess.
                if !self.replay.contains(nonce_prior) {
                    self.fail(AbortReason::AuthFailed, true);
                    return;
                }
                // Freshness: the new nonce has `Auth` semantics — a
                // witnessed one is a replayed resume.
                if !self.replay.witness(nonce) {
                    self.fail(AbortReason::AuthFailed, true);
                    return;
                }
                self.accepted_nonce = Some(nonce);
                self.resumed = true;
                self.resume_trace_id = Some(trace_id);
                self.send(Msg::AuthOk { session: self.session_id, nonce });
                self.phase = MeasurerPhase::AwaitCmd;
                self.deadline = Some(now + self.timeouts.handshake);
            }
            (MeasurerPhase::AwaitCmd, Msg::MeasureCmd(spec)) => {
                self.spec = Some(spec);
                self.actions.push_back(MeasurerAction::Prepare { spec });
                self.send(Msg::Ready);
                self.phase = MeasurerPhase::AwaitGo;
                self.deadline = Some(now + self.timeouts.handshake);
            }
            (MeasurerPhase::AwaitGo, Msg::Go) => {
                let spec = self.spec.expect("AwaitGo implies spec");
                self.phase = MeasurerPhase::Running;
                // While running, the peer's own liveness is driven by the
                // slot itself; the coordinator enforces report gaps.
                self.deadline = None;
                self.actions.push_back(MeasurerAction::Start { spec });
            }
            (_, Msg::Abort { reason }) => {
                self.fail(reason, false);
            }
            (_, other) => {
                let _ = other;
                self.fail(AbortReason::OutOfOrder, true);
            }
        }
    }

    fn send(&mut self, msg: Msg) {
        self.frames_tx += 1;
        self.outbound.push_back(encode(&msg));
    }

    fn fail(&mut self, reason: AbortReason, notify_peer: bool) {
        if notify_peer {
            self.send(Msg::Abort { reason });
        }
        let was_running = self.phase == MeasurerPhase::Running;
        self.phase = MeasurerPhase::Failed;
        self.deadline = None;
        if was_running {
            self.actions.push_back(MeasurerAction::Stop);
        }
    }
}

/// Everything a relay's data plane needs to serve one commanded
/// measurement, derived from the `MeasureCmd` a [`RelaySession`]
/// accepted: which hello nonce binds the measurers' echo channels, the
/// key their frame tags must verify under, and the background allowance
/// for the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EchoBinding {
    /// The **public** hello nonce every echo channel of this
    /// measurement must present (see
    /// [`binding_nonce`](crate::blast::binding_nonce)).
    pub binding_nonce: u64,
    /// The frame-tag key shared by the item's peers through the
    /// `MeasureCmd`'s measurement secret.
    pub channel_key: u64,
    /// Background-traffic allowance (bytes/second) during the window;
    /// `0` means uncapped.
    pub background_allowance: u64,
    /// Slot length in whole seconds.
    pub slot_secs: u32,
    /// The item-attempt's trace id from the commanding `MeasureCmd`
    /// (`0` = untraced); the relay stamps it onto the echo channels'
    /// telemetry so the data plane joins the same timeline.
    pub trace_id: u64,
}

/// The target relay's half of one conversation: the relay-side role of
/// the control protocol.
///
/// Protocol-wise this is a [`MeasurerSession`] pinned to
/// [`PeerRole::Target`] — same handshake, same replay window, same
/// hardening — so the state machine is shared rather than forked. What
/// the relay role adds on top is the **echo subsystem contract**:
///
/// * once a `MeasureCmd` is accepted, [`RelaySession::echo_binding`]
///   exposes the measurement's [`EchoBinding`] — the one public nonce
///   that *k* measurers' concurrent data channels must present, the
///   frame-tag key they share through the command's measurement secret,
///   and the background allowance the relay must hold client traffic
///   under while the window runs;
/// * [`RelaySession::bind_channel`] / [`RelaySession::release_channel`]
///   account the concurrent echo channels bound to that nonce (a hello
///   carrying any other nonce is refused), so the driver can refuse
///   strays and report how many measurers actually connected;
/// * [`RelaySession::report_second`] sends the per-second
///   `SecondReport` with **both** columns filled: background bytes
///   admitted and measurement bytes echoed — the relay is the one peer
///   whose report carries `y_j` *and* its own view of `x_j`.
#[derive(Debug)]
pub struct RelaySession {
    inner: MeasurerSession,
    /// Echo channels currently bound to the accepted measurement.
    channels: u32,
    /// Most channels ever concurrently bound (reporting/logs).
    peak_channels: u32,
    /// Hellos refused because their nonce was not the measurement's.
    refused_channels: u64,
}

impl RelaySession {
    /// A relay session expecting `expected_token` from its coordinator,
    /// with an empty replay window.
    pub fn new(
        expected_token: [u8; AUTH_TOKEN_LEN],
        session_id: u64,
        timeouts: SessionTimeouts,
    ) -> Self {
        RelaySession {
            inner: MeasurerSession::new(expected_token, PeerRole::Target, session_id, timeouts),
            channels: 0,
            peak_channels: 0,
            refused_channels: 0,
        }
    }

    /// Seeds the replay window (see
    /// [`MeasurerSession::with_replay_window`]).
    #[must_use]
    pub fn with_replay_window(mut self, window: ReplayWindow) -> Self {
        self.inner = self.inner.with_replay_window(window);
        self
    }

    /// Hands the replay window back (see
    /// [`MeasurerSession::take_replay_window`]).
    pub fn take_replay_window(&mut self) -> ReplayWindow {
        self.inner.take_replay_window()
    }

    /// The `Auth` nonce this session accepted, once past that step.
    pub fn accepted_nonce(&self) -> Option<u64> {
        self.inner.accepted_nonce()
    }

    /// True when the conversation was opened by an accepted `Resume`
    /// (see [`MeasurerSession::resumed`]).
    pub fn resumed(&self) -> bool {
        self.inner.resumed()
    }

    /// The trace id the accepted `Resume` opener carried, if any (see
    /// [`MeasurerSession::resume_trace_id`]).
    pub fn resume_trace_id(&self) -> Option<u64> {
        self.inner.resume_trace_id()
    }

    /// Current phase (shared with the measurer role).
    pub fn phase(&self) -> MeasurerPhase {
        self.inner.phase()
    }

    /// Seconds reported so far.
    pub fn seconds_sent(&self) -> u32 {
        self.inner.seconds_sent()
    }

    /// The commanded measurement's echo-binding material, once a
    /// `MeasureCmd` has been accepted. `None` before that (there is
    /// nothing for a data channel to bind to yet).
    pub fn echo_binding(&self) -> Option<EchoBinding> {
        let spec = self.inner.spec?;
        Some(EchoBinding {
            binding_nonce: crate::blast::binding_nonce(spec.measurement_secret),
            channel_key: crate::blast::secret_channel_key(spec.measurement_secret),
            background_allowance: spec.rate_cap,
            slot_secs: spec.slot_secs,
            trace_id: spec.trace_id,
        })
    }

    /// Offers a data-channel hello for binding: accepted (and counted)
    /// iff a measurement is commanded and the hello carries its binding
    /// nonce. Concurrent channels from multiple measurers all bind to
    /// the same nonce; a stray or stale hello is refused and counted.
    pub fn bind_channel(&mut self, hello: crate::blast::DataChannelHello) -> bool {
        match self.echo_binding() {
            Some(binding) if binding.binding_nonce == hello.nonce => {
                self.channels += 1;
                self.peak_channels = self.peak_channels.max(self.channels);
                true
            }
            _ => {
                self.refused_channels += 1;
                false
            }
        }
    }

    /// Notes a bound echo channel going away.
    pub fn release_channel(&mut self) {
        self.channels = self.channels.saturating_sub(1);
    }

    /// Echo channels currently bound.
    pub fn active_channels(&self) -> u32 {
        self.channels
    }

    /// Most channels ever concurrently bound.
    pub fn peak_channels(&self) -> u32 {
        self.peak_channels
    }

    /// Hellos refused for carrying the wrong nonce.
    pub fn refused_channels(&self) -> u64 {
        self.refused_channels
    }

    /// Reports one completed second: background bytes admitted and
    /// measurement bytes echoed (see [`MeasurerSession::report_second`]
    /// for the pacing/termination contract).
    ///
    /// # Panics
    /// Panics unless the session is `Running`.
    pub fn report_second(&mut self, bg_bytes: u64, echoed_bytes: u64) {
        self.inner.report_second(bg_bytes, echoed_bytes);
    }
}

impl SessionState for RelaySession {
    type Action = MeasurerAction;

    fn receive(&mut self, now: SimTime, bytes: &[u8]) {
        self.inner.receive(now, bytes);
    }
    fn poll_outbound(&mut self) -> Option<Vec<u8>> {
        self.inner.poll_outbound()
    }
    fn poll_action(&mut self) -> Option<MeasurerAction> {
        self.inner.poll_action()
    }
    fn on_tick(&mut self, now: SimTime) {
        self.inner.on_tick(now);
    }
    fn abort(&mut self, reason: AbortReason) {
        self.inner.abort(reason);
    }
    fn is_terminal(&self) -> bool {
        self.inner.is_terminal()
    }
}

impl SessionState for CoordinatorSession {
    type Action = CoordAction;

    fn receive(&mut self, now: SimTime, bytes: &[u8]) {
        CoordinatorSession::receive(self, now, bytes);
    }
    fn poll_outbound(&mut self) -> Option<Vec<u8>> {
        CoordinatorSession::poll_outbound(self)
    }
    fn poll_action(&mut self) -> Option<CoordAction> {
        CoordinatorSession::poll_action(self)
    }
    fn on_tick(&mut self, now: SimTime) {
        CoordinatorSession::on_tick(self, now);
    }
    fn abort(&mut self, reason: AbortReason) {
        CoordinatorSession::abort(self, reason);
    }
    fn is_terminal(&self) -> bool {
        CoordinatorSession::is_terminal(self)
    }
}

impl SessionState for MeasurerSession {
    type Action = MeasurerAction;

    fn receive(&mut self, now: SimTime, bytes: &[u8]) {
        MeasurerSession::receive(self, now, bytes);
    }
    fn poll_outbound(&mut self) -> Option<Vec<u8>> {
        MeasurerSession::poll_outbound(self)
    }
    fn poll_action(&mut self) -> Option<MeasurerAction> {
        MeasurerSession::poll_action(self)
    }
    fn on_tick(&mut self, now: SimTime) {
        MeasurerSession::on_tick(self, now);
    }
    fn abort(&mut self, reason: AbortReason) {
        MeasurerSession::abort(self, reason);
    }
    fn is_terminal(&self) -> bool {
        MeasurerSession::is_terminal(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::FINGERPRINT_LEN;

    fn spec() -> MeasureSpec {
        MeasureSpec {
            relay_fp: [3; FINGERPRINT_LEN],
            slot_secs: 3,
            sockets: 80,
            rate_cap: 1_000,
            ..MeasureSpec::default()
        }
    }

    fn pump(now: SimTime, coord: &mut CoordinatorSession, meas: &mut MeasurerSession) {
        // Deliver queued frames both ways until quiescent.
        loop {
            let mut moved = false;
            while let Some(f) = coord.poll_outbound() {
                meas.receive(now, &f);
                moved = true;
            }
            while let Some(f) = meas.poll_outbound() {
                coord.receive(now, &f);
                moved = true;
            }
            if !moved {
                return;
            }
        }
    }

    #[test]
    fn golden_path_runs_to_completion() {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, spec(), 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 42, t);
        let now = SimTime::ZERO;

        coord.start(now);
        pump(now, &mut coord, &mut meas);
        assert_eq!(coord.phase(), CoordPhase::Armed);
        assert_eq!(coord.poll_action(), Some(CoordAction::PeerReady));
        assert!(matches!(meas.poll_action(), Some(MeasurerAction::Prepare { .. })));

        coord.go(now);
        pump(now, &mut coord, &mut meas);
        assert!(matches!(meas.poll_action(), Some(MeasurerAction::Start { .. })));

        for s in 0..3u64 {
            meas.report_second(0, 1000 + s);
        }
        pump(now, &mut coord, &mut meas);
        assert_eq!(meas.phase(), MeasurerPhase::Done);
        assert_eq!(meas.poll_action(), Some(MeasurerAction::Stop));
        assert_eq!(coord.phase(), CoordPhase::Done);
        let mut samples = 0;
        while let Some(a) = coord.poll_action() {
            match a {
                CoordAction::Sample { second, measured_bytes, .. } => {
                    assert_eq!(measured_bytes, 1000 + u64::from(second));
                    samples += 1;
                }
                CoordAction::PeerDone => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(samples, 3);
    }

    #[test]
    fn wrong_token_fails_auth() {
        let t = SessionTimeouts::default();
        let mut coord =
            CoordinatorSession::new([1; AUTH_TOKEN_LEN], PeerRole::Measurer, spec(), 0xA5, t);
        let mut meas = MeasurerSession::new([2; AUTH_TOKEN_LEN], PeerRole::Measurer, 1, t);
        let now = SimTime::ZERO;
        coord.start(now);
        pump(now, &mut coord, &mut meas);
        assert_eq!(meas.phase(), MeasurerPhase::Failed);
        assert_eq!(coord.phase(), CoordPhase::Failed);
        assert_eq!(
            coord.poll_action(),
            Some(CoordAction::PeerFailed { reason: AbortReason::AuthFailed })
        );
    }

    #[test]
    fn silent_peer_times_out() {
        let t = SessionTimeouts {
            handshake: SimDuration::from_secs(5),
            report: SimDuration::from_secs(2),
        };
        let mut coord =
            CoordinatorSession::new([1; AUTH_TOKEN_LEN], PeerRole::Measurer, spec(), 0xA5, t);
        coord.start(SimTime::ZERO);
        coord.on_tick(SimTime::from_secs(4));
        assert_eq!(coord.phase(), CoordPhase::AwaitAuthOk);
        coord.on_tick(SimTime::from_secs(5));
        assert_eq!(coord.phase(), CoordPhase::Failed);
        assert_eq!(
            coord.poll_action(),
            Some(CoordAction::PeerFailed { reason: AbortReason::HandshakeTimeout })
        );
        // An Abort frame was queued for the (possibly half-dead) peer.
        let frame = coord.poll_outbound().expect("Auth frame");
        let _ = frame;
        let abort = coord.poll_outbound().expect("Abort frame");
        let mut dec = FrameDecoder::new();
        dec.push(&abort);
        assert_eq!(
            dec.next_msg().unwrap(),
            Some(Msg::Abort { reason: AbortReason::HandshakeTimeout })
        );
    }

    #[test]
    fn stalled_reports_time_out_and_stop_blast() {
        let token = [7u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts {
            handshake: SimDuration::from_secs(5),
            report: SimDuration::from_secs(2),
        };
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, spec(), 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        let now = SimTime::ZERO;
        coord.start(now);
        pump(now, &mut coord, &mut meas);
        coord.go(now);
        pump(now, &mut coord, &mut meas);
        meas.report_second(0, 500);
        pump(now, &mut coord, &mut meas);

        // ... then the measurer goes silent for longer than `report`.
        let later = SimTime::from_secs(3);
        coord.on_tick(later);
        assert_eq!(coord.phase(), CoordPhase::Failed);
        // Coordinator told the peer; delivering it stops the blast.
        pump(later, &mut coord, &mut meas);
        assert_eq!(meas.phase(), MeasurerPhase::Failed);
        let actions: Vec<_> = std::iter::from_fn(|| meas.poll_action()).collect();
        assert!(actions.contains(&MeasurerAction::Stop), "{actions:?}");
    }

    #[test]
    fn replayed_or_invented_seconds_abort_the_peer() {
        let token = [7u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;

        // A replayed second index (inflation attempt) is fatal.
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, spec(), 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        coord.start(now);
        pump(now, &mut coord, &mut meas);
        coord.go(now);
        pump(now, &mut coord, &mut meas);
        coord.receive(
            now,
            &encode(&Msg::SecondReport { second: 0, bg_bytes: 0, measured_bytes: 10 }),
        );
        coord.receive(
            now,
            &encode(&Msg::SecondReport { second: 0, bg_bytes: 0, measured_bytes: 10 }),
        );
        assert_eq!(coord.phase(), CoordPhase::Failed);
        let actions: Vec<_> = std::iter::from_fn(|| coord.poll_action()).collect();
        assert!(
            actions.contains(&CoordAction::PeerFailed { reason: AbortReason::OutOfOrder }),
            "{actions:?}"
        );
        // Exactly one sample survived.
        let samples = actions.iter().filter(|a| matches!(a, CoordAction::Sample { .. })).count();
        assert_eq!(samples, 1);

        // A second index beyond the commanded slot is equally fatal.
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, spec(), 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 2, t);
        coord.start(now);
        pump(now, &mut coord, &mut meas);
        coord.go(now);
        pump(now, &mut coord, &mut meas);
        let wide = spec().slot_secs;
        coord.receive(
            now,
            &encode(&Msg::SecondReport { second: wide, bg_bytes: 0, measured_bytes: 10 }),
        );
        assert_eq!(coord.phase(), CoordPhase::Failed);
    }

    #[test]
    fn premature_slot_done_aborts_the_peer() {
        let token = [7u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, spec(), 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        coord.start(now);
        pump(now, &mut coord, &mut meas);
        coord.go(now);
        pump(now, &mut coord, &mut meas);
        // Only 1 of the commanded 3 seconds, then a premature SlotDone.
        coord.receive(
            now,
            &encode(&Msg::SecondReport { second: 0, bg_bytes: 0, measured_bytes: 10 }),
        );
        coord.receive(now, &encode(&Msg::SlotDone));
        assert_eq!(coord.phase(), CoordPhase::Failed);
        let actions: Vec<_> = std::iter::from_fn(|| coord.poll_action()).collect();
        assert!(
            actions.contains(&CoordAction::PeerFailed { reason: AbortReason::OutOfOrder }),
            "{actions:?}"
        );
    }

    #[test]
    fn silent_connection_times_out_before_auth() {
        // A coordinator that connects and never sends Auth must not
        // hold the session open forever: the first tick arms an
        // accept-time deadline.
        let t = SessionTimeouts {
            handshake: SimDuration::from_secs(5),
            report: SimDuration::from_secs(2),
        };
        let mut meas = MeasurerSession::new([7; AUTH_TOKEN_LEN], PeerRole::Measurer, 1, t);
        meas.on_tick(SimTime::ZERO);
        assert_eq!(meas.phase(), MeasurerPhase::AwaitAuth, "deadline armed, not yet due");
        meas.on_tick(SimTime::from_secs(4));
        assert_eq!(meas.phase(), MeasurerPhase::AwaitAuth);
        meas.on_tick(SimTime::from_secs(5));
        assert_eq!(meas.phase(), MeasurerPhase::Failed);
    }

    #[test]
    fn parked_session_answers_pings_and_still_accepts_auth() {
        let token = [8u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts {
            handshake: SimDuration::from_secs(5),
            report: SimDuration::from_secs(2),
        };
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        meas.on_tick(SimTime::ZERO); // accept deadline armed at t+5
        meas.receive(SimTime::from_secs(4), &encode(&Msg::Ping { probe: 0xABCD }));
        assert_eq!(meas.phase(), MeasurerPhase::AwaitAuth, "ping does not open a conversation");
        let mut dec = FrameDecoder::new();
        dec.push(&meas.poll_outbound().expect("pong"));
        assert_eq!(dec.next_msg().unwrap(), Some(Msg::Pong { probe: 0xABCD }));
        // The keepalive refreshed the accept deadline: t=8 is past the
        // original t+5 but within 5 s of the ping.
        meas.on_tick(SimTime::from_secs(8));
        assert_eq!(meas.phase(), MeasurerPhase::AwaitAuth, "keepalive extended the lease");
        // And a real conversation still opens normally afterwards.
        meas.receive(
            SimTime::from_secs(8),
            &encode(&Msg::Auth { token, role: PeerRole::Measurer, nonce: 0x44 }),
        );
        assert_eq!(meas.phase(), MeasurerPhase::AwaitCmd);
        // Mid-conversation pings are protocol violations, as before.
        let mut running = MeasurerSession::new(token, PeerRole::Measurer, 2, t);
        running.receive(
            SimTime::ZERO,
            &encode(&Msg::Auth { token, role: PeerRole::Measurer, nonce: 0x45 }),
        );
        running.receive(SimTime::ZERO, &encode(&Msg::Ping { probe: 1 }));
        assert_eq!(running.phase(), MeasurerPhase::Failed);
    }

    #[test]
    fn out_of_order_frame_aborts() {
        let token = [7u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        // Go before Auth is a protocol violation.
        meas.receive(SimTime::ZERO, &encode(&Msg::Go));
        assert_eq!(meas.phase(), MeasurerPhase::Failed);
        let mut dec = FrameDecoder::new();
        dec.push(&meas.poll_outbound().expect("abort frame"));
        assert_eq!(dec.next_msg().unwrap(), Some(Msg::Abort { reason: AbortReason::OutOfOrder }));
    }

    #[test]
    fn garbage_bytes_abort_with_malformed() {
        let t = SessionTimeouts::default();
        let mut coord =
            CoordinatorSession::new([1; AUTH_TOKEN_LEN], PeerRole::Target, spec(), 0xA5, t);
        coord.start(SimTime::ZERO);
        coord.receive(SimTime::ZERO, &[0xFF; 64]);
        assert_eq!(coord.phase(), CoordPhase::Failed);
        let mut saw_failed = false;
        while let Some(a) = coord.poll_action() {
            if a == (CoordAction::PeerFailed { reason: AbortReason::Malformed }) {
                saw_failed = true;
            }
        }
        assert!(saw_failed);
    }

    #[test]
    fn wrong_authok_nonce_fails_auth() {
        let t = SessionTimeouts::default();
        let mut coord =
            CoordinatorSession::new([1; AUTH_TOKEN_LEN], PeerRole::Measurer, spec(), 0xA5, t);
        coord.start(SimTime::ZERO);
        // A replayed AuthOk echoing some other handshake's nonce.
        coord.receive(SimTime::ZERO, &encode(&Msg::AuthOk { session: 5, nonce: 0xBEEF }));
        assert_eq!(coord.phase(), CoordPhase::Failed);
        assert_eq!(
            coord.poll_action(),
            Some(CoordAction::PeerFailed { reason: AbortReason::AuthFailed })
        );
    }

    #[test]
    fn replayed_auth_nonce_is_rejected_across_sessions() {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;
        let auth = Msg::Auth { token, role: PeerRole::Measurer, nonce: 0x1111 };

        // First conversation accepts the nonce...
        let mut first = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        assert_eq!(first.accepted_nonce(), None);
        first.receive(now, &encode(&auth));
        assert_eq!(first.phase(), MeasurerPhase::AwaitCmd);
        assert_eq!(first.accepted_nonce(), Some(0x1111), "accepted nonce exposed");
        let window = first.take_replay_window();
        assert!(window.contains(0x1111));

        // ...and a later session on the same peer rejects the replay.
        let mut second =
            MeasurerSession::new(token, PeerRole::Measurer, 2, t).with_replay_window(window);
        second.receive(now, &encode(&auth));
        assert_eq!(second.phase(), MeasurerPhase::Failed);
        let mut dec = FrameDecoder::new();
        dec.push(&second.poll_outbound().expect("abort frame"));
        assert_eq!(dec.next_msg().unwrap(), Some(Msg::Abort { reason: AbortReason::AuthFailed }));

        // A fresh nonce on the same window is fine.
        let mut third = MeasurerSession::new(token, PeerRole::Measurer, 3, t)
            .with_replay_window(second.take_replay_window());
        third.receive(now, &encode(&Msg::Auth { token, role: PeerRole::Measurer, nonce: 0x2222 }));
        assert_eq!(third.phase(), MeasurerPhase::AwaitCmd);
    }

    #[test]
    fn resume_with_witnessed_prior_nonce_reopens_a_conversation() {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;

        // A first coordinator incarnation opens a conversation...
        let mut first = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        first.receive(now, &encode(&Msg::Auth { token, role: PeerRole::Measurer, nonce: 0x1111 }));
        assert_eq!(first.phase(), MeasurerPhase::AwaitCmd);
        assert!(!first.resumed(), "a plain Auth is not a resumption");
        let window = first.take_replay_window();

        // ...then crashes. Its successor re-derives the same nonce
        // lineage and resumes instead of replaying Auth: full handshake
        // driven end to end through a resuming CoordinatorSession.
        let mut coord =
            CoordinatorSession::new(token, PeerRole::Measurer, spec(), 0x2222, t).resuming(0x1111);
        assert_eq!(coord.resume_prior(), Some(0x1111));
        let mut second =
            MeasurerSession::new(token, PeerRole::Measurer, 2, t).with_replay_window(window);
        coord.start(now);
        pump(now, &mut coord, &mut second);
        assert_eq!(coord.phase(), CoordPhase::Armed, "resume handshake completed");
        assert_eq!(second.phase(), MeasurerPhase::AwaitGo);
        assert!(second.resumed(), "conversation marked as resumed");
        assert_eq!(second.accepted_nonce(), Some(0x2222), "fresh nonce claimed");
        assert!(second.take_replay_window().contains(0x2222));
    }

    #[test]
    fn resume_without_lineage_or_with_stale_nonce_is_rejected() {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;

        // No lineage: the named prior nonce was never witnessed here.
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        meas.receive(
            now,
            &encode(&Msg::Resume {
                token,
                role: PeerRole::Measurer,
                nonce_prior: 0xAAAA,
                nonce: 0xBBBB,
                trace_id: 0,
            }),
        );
        assert_eq!(meas.phase(), MeasurerPhase::Failed, "unwitnessed prior nonce is a guess");
        let mut dec = FrameDecoder::new();
        dec.push(&meas.poll_outbound().expect("abort frame"));
        assert_eq!(dec.next_msg().unwrap(), Some(Msg::Abort { reason: AbortReason::AuthFailed }));

        // Stale freshness: a resume whose *new* nonce was already
        // witnessed is a replayed resume, rejected like a replayed Auth.
        let mut first = MeasurerSession::new(token, PeerRole::Measurer, 2, t);
        first.receive(now, &encode(&Msg::Auth { token, role: PeerRole::Measurer, nonce: 0x1 }));
        let mut second = MeasurerSession::new(token, PeerRole::Measurer, 3, t)
            .with_replay_window(first.take_replay_window());
        second.receive(
            now,
            &encode(&Msg::Resume {
                token,
                role: PeerRole::Measurer,
                nonce_prior: 0x1,
                nonce: 0x1,
                trace_id: 0,
            }),
        );
        assert_eq!(second.phase(), MeasurerPhase::Failed, "replayed resume nonce rejected");

        // Wrong token fails exactly like Auth.
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 4, t);
        meas.receive(
            now,
            &encode(&Msg::Resume {
                token: [0; AUTH_TOKEN_LEN],
                role: PeerRole::Measurer,
                nonce_prior: 0x1,
                nonce: 0x2,
                trace_id: 0,
            }),
        );
        assert_eq!(meas.phase(), MeasurerPhase::Failed);
    }

    #[test]
    fn relay_session_resumes_like_the_measurer_role() {
        let token = [5u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;
        let mut first = RelaySession::new(token, 1, t);
        first.receive(now, &encode(&Msg::Auth { token, role: PeerRole::Target, nonce: 0x9 }));
        assert_eq!(first.phase(), MeasurerPhase::AwaitCmd);
        let mut second =
            RelaySession::new(token, 2, t).with_replay_window(first.take_replay_window());
        second.receive(
            now,
            &encode(&Msg::Resume {
                token,
                role: PeerRole::Target,
                nonce_prior: 0x9,
                nonce: 0xA,
                trace_id: 0x7ACE,
            }),
        );
        assert_eq!(second.phase(), MeasurerPhase::AwaitCmd);
        assert!(second.resumed());
        assert_eq!(second.accepted_nonce(), Some(0xA));
        assert_eq!(second.resume_trace_id(), Some(0x7ACE), "resume carries the trace id");
    }

    #[test]
    fn replay_window_is_bounded_with_recency_eviction() {
        let mut w = ReplayWindow::new(2);
        assert!(w.witness(1));
        assert!(w.witness(2));
        // The caught replay of 1 refreshes its recency...
        assert!(!w.witness(1), "replay caught while remembered");
        // ...so the fresh nonce evicts 2, the least recently seen.
        assert!(w.witness(3), "fresh nonce accepted at capacity");
        assert_eq!(w.len(), 2);
        assert!(!w.contains(2), "least recently seen evicted");
        assert!(w.contains(1) && w.contains(3));
    }

    #[test]
    fn replay_window_stays_at_capacity_under_unique_nonce_flood() {
        let cap = 64;
        let mut w = ReplayWindow::new(cap);
        for nonce in 0..(10 * cap as u64) {
            assert!(w.witness(nonce), "unique nonces are all fresh");
            assert!(w.len() <= cap, "window exceeded its bound at {nonce}");
        }
        assert_eq!(w.len(), cap);
        // Exactly the last `cap` survive, in order.
        let remembered: Vec<u64> = w.iter().collect();
        let expect: Vec<u64> = (9 * cap as u64..10 * cap as u64).collect();
        assert_eq!(remembered, expect);
    }

    #[test]
    fn just_evicted_nonce_is_forgotten_but_protected_nonce_is_not() {
        // The documented trade-off: after a flood of `cap` fresh nonces,
        // a previously accepted nonce has been evicted and its replay is
        // accepted by the window (the AuthOk nonce echo upstream is what
        // still defangs it).
        let cap = 8;
        let mut w = ReplayWindow::new(cap);
        assert!(w.witness(0xAAAA));
        for nonce in 0..cap as u64 {
            assert!(w.witness(nonce));
        }
        assert!(!w.contains(0xAAAA), "flooded out");
        assert!(w.witness(0xAAAA), "an evicted nonce is forgotten, per the docs");

        // But a nonce that keeps being *replayed* stays protected: each
        // caught attempt refreshes it, so filler nonces cannot age it out.
        let mut w = ReplayWindow::new(cap);
        assert!(w.witness(0xBBBB));
        for nonce in 0..(3 * cap as u64) {
            assert!(!w.witness(0xBBBB), "replay caught at attempt {nonce}");
            assert!(w.witness(nonce), "filler nonce is fresh");
        }
        assert!(w.contains(0xBBBB), "nonce under active replay never ages out");
    }

    #[test]
    fn second_report_flood_aborts_with_flooded() {
        let token = [7u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let now = SimTime::ZERO;
        let wide = MeasureSpec {
            relay_fp: [3; FINGERPRINT_LEN],
            slot_secs: 30,
            sockets: 8,
            rate_cap: 1_000,
            ..MeasureSpec::default()
        };
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, wide, 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        coord.start(now);
        pump(now, &mut coord, &mut meas);
        coord.go(now);
        // The peer blasts the whole slot's reports with no time passing:
        // everything past the ahead cap is an unsolicited flood.
        for second in 0..30u32 {
            coord.receive(
                now,
                &encode(&Msg::SecondReport { second, bg_bytes: 0, measured_bytes: 10 }),
            );
        }
        assert_eq!(coord.phase(), CoordPhase::Failed);
        let actions: Vec<_> = std::iter::from_fn(|| coord.poll_action()).collect();
        assert!(
            actions.contains(&CoordAction::PeerFailed { reason: AbortReason::Flooded }),
            "{actions:?}"
        );
        // Buffered samples stay bounded by the cap, not the slot length.
        let samples = actions.iter().filter(|a| matches!(a, CoordAction::Sample { .. })).count();
        assert_eq!(samples, DEFAULT_REPORT_AHEAD_CAP as usize + 1);
    }

    #[test]
    fn paced_reports_never_trip_the_flood_cap() {
        let token = [7u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let wide = MeasureSpec {
            relay_fp: [3; FINGERPRINT_LEN],
            slot_secs: 30,
            sockets: 8,
            rate_cap: 1_000,
            ..MeasureSpec::default()
        };
        let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, wide, 0xA5, t);
        let mut meas = MeasurerSession::new(token, PeerRole::Measurer, 1, t);
        coord.start(SimTime::ZERO);
        pump(SimTime::ZERO, &mut coord, &mut meas);
        coord.go(SimTime::ZERO);
        pump(SimTime::ZERO, &mut coord, &mut meas);
        for second in 0..30u32 {
            let now = SimTime::from_secs(u64::from(second) + 1);
            meas.report_second(0, 1_000);
            pump(now, &mut coord, &mut meas);
        }
        assert_eq!(coord.phase(), CoordPhase::Done);
    }

    #[test]
    fn relay_session_runs_the_target_role_and_binds_echo_channels() {
        use crate::blast::{binding_nonce, secret_channel_key, DataChannelHello};

        let token = [6u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let secret = 0x5EC2_0042;
        let spec = MeasureSpec {
            relay_fp: [9; FINGERPRINT_LEN],
            slot_secs: 2,
            sockets: 0,
            rate_cap: 5_000, // background allowance for the target role
            measurement_secret: secret,
            ..MeasureSpec::default()
        };
        let mut coord = CoordinatorSession::new(token, PeerRole::Target, spec, 0xC0, t);
        let mut relay = RelaySession::new(token, 77, t);
        let now = SimTime::ZERO;

        // Nothing to bind to before the command arrives.
        assert_eq!(relay.echo_binding(), None);
        assert!(!relay.bind_channel(DataChannelHello { nonce: binding_nonce(secret), channel: 0 }));

        coord.start(now);
        loop {
            let mut moved = false;
            while let Some(f) = coord.poll_outbound() {
                relay.receive(now, &f);
                moved = true;
            }
            while let Some(f) = relay.poll_outbound() {
                coord.receive(now, &f);
                moved = true;
            }
            if !moved {
                break;
            }
        }
        assert_eq!(coord.phase(), CoordPhase::Armed);
        let binding = relay.echo_binding().expect("command accepted");
        assert_eq!(binding.binding_nonce, binding_nonce(secret));
        assert_eq!(binding.channel_key, secret_channel_key(secret));
        assert_eq!(binding.background_allowance, 5_000);
        assert_eq!(binding.slot_secs, 2);

        // Two measurers' concurrent channels bind to the one nonce; a
        // stray nonce is refused and counted.
        assert!(relay.bind_channel(DataChannelHello { nonce: binding.binding_nonce, channel: 0 }));
        assert!(relay.bind_channel(DataChannelHello { nonce: binding.binding_nonce, channel: 1 }));
        assert!(!relay.bind_channel(DataChannelHello { nonce: 0xBAD, channel: 0 }));
        assert_eq!((relay.active_channels(), relay.peak_channels()), (2, 2));
        assert_eq!(relay.refused_channels(), 2, "pre-command and stray hellos both counted");
        relay.release_channel();
        assert_eq!(relay.active_channels(), 1);

        // Run the slot: the relay reports BOTH columns (admitted
        // background and echoed measurement bytes).
        coord.go(now);
        while let Some(f) = coord.poll_outbound() {
            relay.receive(now, &f);
        }
        assert!(matches!(relay.poll_action(), Some(MeasurerAction::Prepare { .. })));
        assert!(matches!(relay.poll_action(), Some(MeasurerAction::Start { .. })));
        relay.report_second(4_000, 90_000);
        relay.report_second(4_100, 91_000);
        while let Some(f) = relay.poll_outbound() {
            coord.receive(now, &f);
        }
        assert_eq!(relay.phase(), MeasurerPhase::Done);
        assert_eq!(coord.phase(), CoordPhase::Done);
        let samples: Vec<_> = std::iter::from_fn(|| coord.poll_action())
            .filter_map(|a| match a {
                CoordAction::Sample { second, bg_bytes, measured_bytes } => {
                    Some((second, bg_bytes, measured_bytes))
                }
                _ => None,
            })
            .collect();
        assert_eq!(samples, vec![(0, 4_000, 90_000), (1, 4_100, 91_000)]);
    }

    #[test]
    fn relay_session_shares_the_measurer_hardening() {
        // Same state machine underneath: wrong token fails auth, and a
        // replayed opener is rejected across conversations.
        let t = SessionTimeouts::default();
        let mut relay = RelaySession::new([1; AUTH_TOKEN_LEN], 1, t);
        relay.receive(
            SimTime::ZERO,
            &encode(&Msg::Auth { token: [2; AUTH_TOKEN_LEN], role: PeerRole::Target, nonce: 5 }),
        );
        assert_eq!(relay.phase(), MeasurerPhase::Failed);

        let token = [3u8; AUTH_TOKEN_LEN];
        let auth = Msg::Auth { token, role: PeerRole::Target, nonce: 0x77 };
        let mut first = RelaySession::new(token, 2, t);
        first.receive(SimTime::ZERO, &encode(&auth));
        assert_eq!(first.phase(), MeasurerPhase::AwaitCmd);
        assert_eq!(first.accepted_nonce(), Some(0x77));
        let mut second =
            RelaySession::new(token, 3, t).with_replay_window(first.take_replay_window());
        second.receive(SimTime::ZERO, &encode(&auth));
        assert_eq!(second.phase(), MeasurerPhase::Failed, "replayed opener rejected");
    }

    #[test]
    fn terminal_sessions_ignore_late_frames() {
        let t = SessionTimeouts::default();
        let mut coord =
            CoordinatorSession::new([1; AUTH_TOKEN_LEN], PeerRole::Measurer, spec(), 0xA5, t);
        coord.start(SimTime::ZERO);
        coord.abort(AbortReason::Shutdown);
        assert_eq!(coord.phase(), CoordPhase::Failed);
        coord.receive(SimTime::ZERO, &encode(&Msg::AuthOk { session: 5, nonce: 0xA5 }));
        assert_eq!(coord.phase(), CoordPhase::Failed);
    }
}
