//! A real TCP endpoint implementing [`Transport`].
//!
//! Built on `std::net` with non-blocking sockets — no async runtime, so
//! the crate stays dependency-free and the build works offline. The
//! socket carries the same length-prefixed frames as every other
//! transport; reads surface whatever the kernel has, in arbitrary
//! chunks, and the sessions' [`FrameDecoder`](crate::frame::FrameDecoder)
//! reassembles them.
//!
//! Time discipline: `now` is caller-injected and **ignored** here — TCP
//! delivery happens when the kernel says so — but no wall clock is ever
//! read either. Liveness (handshake/report timeouts) stays entirely in
//! the sessions, driven by whatever clock the caller supplies, so a
//! coordinator can run its timeout logic on accelerated time in tests
//! and on real elapsed time in deployment without touching this code.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use flashflow_simnet::time::SimTime;

use crate::transport::{Readiness, Transport, TransportError};

/// The listener side of a control endpoint: binds a TCP socket and
/// wraps every accepted connection as a ready-to-pump [`TcpTransport`].
///
/// This is what a standalone measurer process (see the
/// `flashflow-measurer` binary crate) serves sessions from; a sharded
/// coordinator connects one conversation per measurement item.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(TcpAcceptor { listener: TcpListener::bind(addr)? })
    }

    /// The bound socket address (the port to advertise).
    ///
    /// # Errors
    /// Propagates `getsockname` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Blocks for the next connection and wraps it non-blocking.
    ///
    /// # Errors
    /// Propagates accept and socket-option failures.
    pub fn accept(&self) -> std::io::Result<(TcpTransport, SocketAddr)> {
        let (stream, peer) = self.listener.accept()?;
        Ok((TcpTransport::from_stream(stream)?, peer))
    }

    /// Switches the listener between blocking and non-blocking accepts.
    /// A draining process (see the `flashflow-measurer` binary) polls
    /// with [`TcpAcceptor::try_accept`] so a shutdown signal is never
    /// stuck behind a blocking `accept`.
    ///
    /// # Errors
    /// Propagates the socket-option failure.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.listener.set_nonblocking(nonblocking)
    }

    /// Accepts one pending connection if there is one (requires
    /// [`TcpAcceptor::set_nonblocking`]); `Ok(None)` when none is
    /// waiting.
    ///
    /// # Errors
    /// Propagates accept and socket-option failures other than
    /// `WouldBlock`.
    pub fn try_accept(&self) -> std::io::Result<Option<(TcpTransport, SocketAddr)>> {
        match self.listener.accept() {
            Ok((stream, peer)) => Ok(Some((TcpTransport::from_stream(stream)?, peer))),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// How many bytes one `recv` pulls from the kernel per read call.
const READ_CHUNK: usize = 4096;

/// Upper bound on bytes one `recv` returns. A peer that floods faster
/// than we drain must not wedge the caller inside a single call (the
/// engine serves every peer from one pump loop) or grow the buffer
/// without limit; whatever is left stays in the kernel buffer for the
/// next pump, and the sessions' own bounds abort a flooding peer.
const RECV_BUDGET: usize = 256 * 1024;

/// Coalescing bound for the outbox: a queued send is appended to the
/// trailing segment while that segment stays under this size, so many
/// small backpressured frames share one buffer instead of one each.
const OUTBOX_SEGMENT: usize = 64 * 1024;

/// Flushed segments kept for reuse so steady-state backpressure
/// (queue, flush, queue, ...) recycles buffers instead of allocating.
const SPARE_SEGMENTS: usize = 8;

/// Most segments one `writev` submits; deeper outboxes flush over
/// several calls, which is already the backpressured slow path.
const MAX_IOVECS: usize = 32;

/// One endpoint of a TCP control connection.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    /// Bytes accepted by `send` but not yet written (kernel
    /// backpressure), as a queue of segments flushed with one
    /// vectored write instead of a coalesced copy — `send` never
    /// re-copies bytes that are merely waiting.
    outbox: VecDeque<Vec<u8>>,
    /// Bytes of the front segment already written (a partial
    /// `writev`); draining advances this instead of memmoving the
    /// segment.
    head: usize,
    /// Total queued bytes across `outbox`, minus `head`.
    queued: usize,
    /// Recycled segments (bounded by [`SPARE_SEGMENTS`]).
    spare: Vec<Vec<u8>>,
    /// Set once this side called `close`; `send`/`recv` refuse from then
    /// on, but the FIN may be deferred (see `fin_sent`).
    closed: bool,
    /// Set once `shutdown` was actually issued. Close defers the FIN
    /// while outbox bytes are still queued so a frame is never torn at
    /// the shutdown boundary; repeated `close` calls (the endpoint
    /// retries every pump while its session is terminal) finish the job.
    fin_sent: bool,
    /// Set once the peer closed or the socket failed; sticky.
    broken: Option<TransportError>,
    /// The peer sent EOF; drained reads then error.
    eof: bool,
    /// Read scratch, zeroed once at construction: `recv_into` reads
    /// here and copies only the bytes that actually arrived, so an
    /// idle poll (`WouldBlock`) costs no buffer zeroing.
    scratch: Box<[u8]>,
}

impl TcpTransport {
    /// Wraps an already-connected stream, switching it to non-blocking
    /// mode (and disabling Nagle — control frames are latency-sensitive).
    ///
    /// # Errors
    /// Propagates socket-option failures.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            outbox: VecDeque::new(),
            head: 0,
            queued: 0,
            spare: Vec::new(),
            closed: false,
            fin_sent: false,
            broken: None,
            eof: false,
            scratch: vec![0; READ_CHUNK].into_boxed_slice(),
        })
    }

    /// Connects to `addr` (blocking until established) and wraps the
    /// resulting stream.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        TcpTransport::from_stream(TcpStream::connect(addr)?)
    }

    /// The local socket address.
    ///
    /// # Errors
    /// Propagates `getsockname` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Bytes accepted by [`Transport::send`] that the kernel has not yet
    /// taken (send-buffer backpressure). They are flushed opportunistically
    /// by later `send`/`recv` calls; a non-zero value means a write
    /// returned `WouldBlock` mid-frame and the remainder is queued, not
    /// torn or dropped.
    pub fn pending_send_bytes(&self) -> usize {
        self.queued
    }

    /// The raw socket fd, for readiness registration in an event loop
    /// (see `flashflow-procutil`'s reactor). The fd stays owned by this
    /// transport; callers must deregister it before dropping.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// True while the connection can still carry another conversation:
    /// never failed, no EOF from the peer, and this side has not closed.
    /// This is what a connection pool checks (together with an empty
    /// outbox) before parking a transport for reuse.
    pub fn is_reusable(&self) -> bool {
        self.broken.is_none() && !self.eof && !self.closed
    }

    /// Queues `bytes` behind whatever is already backpressured,
    /// coalescing small writes into the trailing segment.
    fn queue_bytes(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.queued += bytes.len();
        if let Some(tail) = self.outbox.back_mut() {
            if tail.len() < OUTBOX_SEGMENT {
                tail.extend_from_slice(bytes);
                return;
            }
        }
        let mut seg = self.spare.pop().unwrap_or_default();
        seg.clear();
        seg.extend_from_slice(bytes);
        self.outbox.push_back(seg);
    }

    /// Writes as much of the outbox as the kernel will take: one
    /// `writev` over the queued segments per loop, advancing a head
    /// offset instead of memmoving partially written buffers.
    fn flush_outbox(&mut self) -> Result<(), TransportError> {
        while !self.outbox.is_empty() {
            let mut iov = [IoSlice::new(&[]); MAX_IOVECS];
            let mut iov_len = 0;
            for (ix, seg) in self.outbox.iter().take(MAX_IOVECS).enumerate() {
                let part = if ix == 0 { &seg[self.head..] } else { &seg[..] };
                iov[iov_len] = IoSlice::new(part);
                iov_len += 1;
            }
            match self.stream.write_vectored(&iov[..iov_len]) {
                Ok(0) => return Err(self.fail(TransportError::Closed)),
                Ok(mut wrote) => {
                    self.queued -= wrote;
                    while wrote > 0 {
                        let front_left = self.outbox[0].len() - self.head;
                        if wrote >= front_left {
                            wrote -= front_left;
                            self.head = 0;
                            let seg = self.outbox.pop_front().unwrap_or_default();
                            if self.spare.len() < SPARE_SEGMENTS {
                                self.spare.push(seg);
                            }
                        } else {
                            self.head += wrote;
                            wrote = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.fail(TransportError::Io(e.kind()))),
            }
        }
        Ok(())
    }

    fn fail(&mut self, err: TransportError) -> TransportError {
        self.broken = Some(err);
        err
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, _now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        if let Some(err) = self.broken {
            return Err(err);
        }
        if self.queued == 0 {
            // Fast path: nothing backpressured, so write straight from
            // the caller's buffer — the blast plane's reused frame
            // buffers then reach the kernel with zero copies on this
            // side. Only what the kernel refuses is queued.
            let mut offset = 0;
            while offset < bytes.len() {
                match self.stream.write(&bytes[offset..]) {
                    Ok(0) => return Err(self.fail(TransportError::Closed)),
                    Ok(n) => offset += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(self.fail(TransportError::Io(e.kind()))),
                }
            }
            self.queue_bytes(&bytes[offset..]);
            return Ok(());
        }
        self.queue_bytes(bytes);
        self.flush_outbox()
    }

    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        let mut out = Vec::new();
        self.recv_into(now, &mut out)?;
        Ok(out)
    }

    fn recv_into(&mut self, _now: SimTime, out: &mut Vec<u8>) -> Result<usize, TransportError> {
        out.clear();
        if self.closed {
            return Err(TransportError::Closed);
        }
        // Opportunistically drain pending writes; send-side backpressure
        // must not deadlock a driver that only polls recv.
        if self.broken.is_none() {
            let _ = self.flush_outbox();
        }
        while out.len() < RECV_BUDGET {
            // Read into the pre-zeroed scratch and copy only what
            // arrived: the caller's buffer grows by `extend_from_slice`
            // (a memcpy), never by zero-filling capacity it may not use.
            match self.stream.read(&mut self.scratch) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => out.extend_from_slice(&self.scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Surface already-read bytes first; fail next call.
                    self.broken = Some(TransportError::Io(e.kind()));
                    break;
                }
            }
        }
        if out.is_empty() {
            if let Some(err) = self.broken {
                return Err(err);
            }
            if self.eof {
                return Err(TransportError::Closed);
            }
        }
        Ok(out.len())
    }

    fn readiness(&mut self, _now: SimTime) -> Readiness {
        if self.closed || self.broken.is_some() || self.eof {
            return Readiness::Closed;
        }
        let mut buf = [0u8; 1];
        match self.stream.peek(&mut buf) {
            Ok(0) => Readiness::Closed,
            Ok(_) => Readiness::Readable,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Readiness::Quiet,
            Err(_) => Readiness::Closed,
        }
    }

    fn close(&mut self) {
        self.closed = true;
        if self.fin_sent {
            return;
        }
        // The outbox may still hold frame bytes the kernel refused
        // (`WouldBlock`). Never tear the conversation's tail
        // (SlotDone/Abort) mid-frame: flush what the kernel will take
        // now and defer the FIN until the outbox is empty — callers
        // retry `close` (the endpoint does so on every pump while its
        // session is terminal), and this never blocks the pump thread.
        let _ = self.flush_outbox();
        if self.queued == 0 || self.broken.is_some() {
            let _ = self.stream.shutdown(Shutdown::Both);
            self.fin_sent = true;
        }
    }

    fn backlog(&self) -> usize {
        self.pending_send_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Loopback pair: (accepted, connected).
    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        let client = TcpTransport::connect(addr).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        (TcpTransport::from_stream(accepted).expect("wrap"), client)
    }

    /// Drains `t` until `want` bytes arrived (bounded retries — loopback
    /// delivery is asynchronous but fast).
    fn recv_exactly(t: &mut TcpTransport, want: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for _ in 0..1000 {
            out.extend_from_slice(&t.recv(SimTime::ZERO).expect("recv"));
            if out.len() >= want {
                return out;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("only {} of {want} bytes arrived", out.len());
    }

    #[test]
    fn round_trips_bytes_both_directions() {
        let (mut a, mut b) = pair();
        a.send(SimTime::ZERO, b"ping").unwrap();
        assert_eq!(recv_exactly(&mut b, 4), b"ping");
        b.send(SimTime::ZERO, b"pong!").unwrap();
        assert_eq!(recv_exactly(&mut a, 5), b"pong!");
    }

    #[test]
    fn peer_close_surfaces_after_drain() {
        let (mut a, mut b) = pair();
        a.send(SimTime::ZERO, b"bye").unwrap();
        a.close();
        assert_eq!(recv_exactly(&mut b, 3), b"bye");
        // Poll until the FIN is visible; then recv must error.
        for _ in 0..1000 {
            if b.readiness(SimTime::ZERO) == Readiness::Closed {
                assert!(b.recv(SimTime::ZERO).is_err());
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("peer close never observed");
    }

    #[test]
    fn send_after_local_close_fails() {
        let (mut a, _b) = pair();
        a.close();
        assert_eq!(a.send(SimTime::ZERO, b"x"), Err(TransportError::Closed));
        assert_eq!(a.recv(SimTime::ZERO), Err(TransportError::Closed));
    }
}
