//! In-memory byte-stream transports driven by the simulation clock.
//!
//! [`Duplex`] models one control connection: two independent directions,
//! each a latency-delayed byte stream that deliberately re-chunks writes
//! (TCP gives no message boundaries), so everything a session receives
//! has crossed the real framing codec and its reassembly path.

use std::collections::VecDeque;

use flashflow_simnet::time::{SimDuration, SimTime};

/// One direction of a connection.
#[derive(Debug)]
struct Pipe {
    latency: SimDuration,
    chunk: usize,
    queue: VecDeque<(SimTime, Vec<u8>)>,
}

impl Pipe {
    fn new(latency: SimDuration, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Pipe { latency, chunk, queue: VecDeque::new() }
    }

    fn send(&mut self, now: SimTime, bytes: &[u8]) {
        let deliver = now + self.latency;
        for piece in bytes.chunks(self.chunk) {
            self.queue.push_back((deliver, piece.to_vec()));
        }
    }

    fn recv(&mut self, now: SimTime) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some((deliver, _)) = self.queue.front() {
            if *deliver > now {
                break;
            }
            let (_, piece) = self.queue.pop_front().expect("front exists");
            out.extend_from_slice(&piece);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Which endpoint of a [`Duplex`] is speaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The coordinator side.
    A,
    /// The peer side.
    B,
}

/// A bidirectional in-memory byte stream with symmetric latency.
#[derive(Debug)]
pub struct Duplex {
    a_to_b: Pipe,
    b_to_a: Pipe,
}

impl Duplex {
    /// A connection with the given one-way latency, delivering in
    /// `chunk`-byte pieces. A chunk size that is not frame-aligned (the
    /// default elsewhere is a prime) exercises reassembly on every
    /// message.
    pub fn new(latency: SimDuration, chunk: usize) -> Self {
        Duplex { a_to_b: Pipe::new(latency, chunk), b_to_a: Pipe::new(latency, chunk) }
    }

    /// A zero-latency connection delivering whole writes (unit tests).
    pub fn loopback() -> Self {
        Duplex::new(SimDuration::ZERO, usize::MAX)
    }

    /// Queues bytes from `from` toward the other end.
    pub fn send(&mut self, from: End, now: SimTime, bytes: &[u8]) {
        match from {
            End::A => self.a_to_b.send(now, bytes),
            End::B => self.b_to_a.send(now, bytes),
        }
    }

    /// Drains every byte that has arrived at `at` by `now`.
    pub fn recv(&mut self, at: End, now: SimTime) -> Vec<u8> {
        match at {
            End::A => self.b_to_a.recv(now),
            End::B => self.a_to_b.recv(now),
        }
    }

    /// True when nothing is in flight in either direction.
    pub fn is_idle(&self) -> bool {
        self.a_to_b.is_empty() && self.b_to_a.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency_in_chunks() {
        let mut d = Duplex::new(SimDuration::from_millis(40), 3);
        d.send(End::A, SimTime::ZERO, b"hello world");
        assert!(d.recv(End::B, SimTime::from_secs_f64(0.039)).is_empty());
        let got = d.recv(End::B, SimTime::from_secs_f64(0.040));
        assert_eq!(got, b"hello world");
        assert!(d.is_idle());
    }

    #[test]
    fn directions_are_independent() {
        let mut d = Duplex::loopback();
        d.send(End::A, SimTime::ZERO, b"down");
        d.send(End::B, SimTime::ZERO, b"up");
        assert_eq!(d.recv(End::A, SimTime::ZERO), b"up");
        assert_eq!(d.recv(End::B, SimTime::ZERO), b"down");
    }

    #[test]
    fn preserves_order_across_writes() {
        let mut d = Duplex::new(SimDuration::from_millis(1), 2);
        d.send(End::A, SimTime::ZERO, b"abc");
        d.send(End::A, SimTime::ZERO, b"defg");
        assert_eq!(d.recv(End::B, SimTime::from_secs_f64(0.001)), b"abcdefg");
    }
}
