//! The [`Transport`] abstraction plus the in-memory implementation.
//!
//! A transport is **one endpoint** of an unreliable, unframed byte
//! stream. Sessions never see it directly — a driver (an
//! [`Endpoint`](crate::endpoint::Endpoint) or the measurement engine)
//! shuttles bytes between sessions and transports. Time is always passed
//! in explicitly, never read from a clock, so the same trait covers the
//! deterministic simulated stream and a real socket:
//!
//! * [`Duplex`] / [`DuplexEnd`] — the simulated connection: two
//!   independent latency-delayed directions that deliberately re-chunk
//!   writes (TCP gives no message boundaries), so everything a session
//!   receives has crossed the real framing codec and its reassembly path;
//! * [`TcpTransport`](crate::tcp::TcpTransport) — a non-blocking
//!   `std::net` socket;
//! * [`FaultyTransport`](crate::fault::FaultyTransport) — a decorator
//!   that injects blackholes and disconnects into either of the above.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use flashflow_simnet::time::{SimDuration, SimTime};

/// Everything that can go wrong at the transport layer. Sessions above
/// the transport treat any of these as a dead connection
/// ([`AbortReason::ConnectionLost`](crate::msg::AbortReason::ConnectionLost)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The connection was closed (locally or by the peer) and every
    /// delivered byte has been drained.
    Closed,
    /// An OS-level I/O failure (TCP only).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => f.write_str("connection closed"),
            TransportError::Io(kind) => write!(f, "transport I/O error: {kind:?}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Readiness of a transport endpoint, as reported by
/// [`Transport::readiness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Bytes are available to [`Transport::recv`] right now.
    Readable,
    /// Nothing readable at this instant, but the connection is open and
    /// bytes may yet arrive.
    Quiet,
    /// The connection is closed or failed; once drained, `recv` errors.
    Closed,
}

/// One endpoint of a byte-stream control connection.
///
/// Contract:
/// * the stream has **no message boundaries** — [`Transport::recv`] may
///   return any prefix of what was sent, including partial frames;
/// * delivered bytes preserve send order and are never duplicated;
/// * `now` is caller-injected; implementations never consult a clock, so
///   simulated transports stay deterministic and replayable;
/// * after [`Transport::close`] (or a peer close / failure), `recv`
///   first drains every byte already delivered, then returns
///   [`TransportError::Closed`].
pub trait Transport {
    /// Queues `bytes` toward the peer.
    ///
    /// # Errors
    /// Fails once the connection is closed or broken.
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError>;

    /// Drains every byte that has arrived by `now`; an empty vector
    /// means nothing is available *yet*.
    ///
    /// # Errors
    /// Fails once the connection is closed or broken and drained.
    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError>;

    /// Like [`Transport::recv`], but **replaces** `out`'s contents
    /// instead of allocating, returning the byte count. Hot receive
    /// loops (the blast plane, the reactor's per-connection drains)
    /// call this with a reused per-channel buffer so steady-state
    /// receiving allocates nothing; the default simply delegates to
    /// `recv`, so in-memory transports need no changes.
    ///
    /// # Errors
    /// Same contract as [`Transport::recv`].
    fn recv_into(&mut self, now: SimTime, out: &mut Vec<u8>) -> Result<usize, TransportError> {
        out.clear();
        let bytes = self.recv(now)?;
        out.extend_from_slice(&bytes);
        Ok(out.len())
    }

    /// Polls readiness without consuming bytes.
    fn readiness(&mut self, now: SimTime) -> Readiness;

    /// Closes this endpoint; the peer observes [`Readiness::Closed`]
    /// after draining. Idempotent.
    fn close(&mut self);

    /// Bytes accepted by [`Transport::send`] but not yet taken by the
    /// underlying medium — the send-side backlog a bulk producer
    /// should pace against. In-memory transports deliver immediately
    /// and report `0` (the default); `TcpTransport` reports its
    /// outbox.
    fn backlog(&self) -> usize {
        0
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        (**self).send(now, bytes)
    }
    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        (**self).recv(now)
    }
    fn recv_into(&mut self, now: SimTime, out: &mut Vec<u8>) -> Result<usize, TransportError> {
        (**self).recv_into(now, out)
    }
    fn readiness(&mut self, now: SimTime) -> Readiness {
        (**self).readiness(now)
    }
    fn close(&mut self) {
        (**self).close();
    }
    fn backlog(&self) -> usize {
        (**self).backlog()
    }
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        (**self).send(now, bytes)
    }
    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        (**self).recv(now)
    }
    fn recv_into(&mut self, now: SimTime, out: &mut Vec<u8>) -> Result<usize, TransportError> {
        (**self).recv_into(now, out)
    }
    fn readiness(&mut self, now: SimTime) -> Readiness {
        (**self).readiness(now)
    }
    fn close(&mut self) {
        (**self).close();
    }
    fn backlog(&self) -> usize {
        (**self).backlog()
    }
}

/// A [`Transport`] decorator that **defers** `close`: the underlying
/// connection stays open so it can serve another session.
///
/// Pooled connections need this. An
/// [`Endpoint`](crate::endpoint::Endpoint) hangs up the moment its
/// session is terminal — correct for one-shot conversations, fatal for a
/// warm connection a pool wants back. A lease records the close request
/// instead of executing it; the owner inspects
/// [`LeasedTransport::close_requested`], resets it with
/// [`LeasedTransport::reset_close`] before the next session, or tears
/// the real connection down with [`LeasedTransport::into_inner`].
///
/// The anti-flood property the endpoint's hang-up protects is preserved:
/// a terminal endpoint stops reading regardless, so a flooding peer
/// still cannot wedge the pump loop — the bytes simply wait in the
/// transport for the next session (or the real close).
#[derive(Debug)]
pub struct LeasedTransport<T: Transport> {
    inner: T,
    close_requested: bool,
}

impl<T: Transport> LeasedTransport<T> {
    /// Leases `inner` out for (re)use across sessions.
    pub fn new(inner: T) -> Self {
        LeasedTransport { inner, close_requested: false }
    }

    /// True once some driver called [`Transport::close`] on the lease.
    pub fn close_requested(&self) -> bool {
        self.close_requested
    }

    /// Clears the deferred close before starting another session.
    pub fn reset_close(&mut self) {
        self.close_requested = false;
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the lease *without* closing the connection.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for LeasedTransport<T> {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        self.inner.send(now, bytes)
    }
    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        self.inner.recv(now)
    }
    fn recv_into(&mut self, now: SimTime, out: &mut Vec<u8>) -> Result<usize, TransportError> {
        self.inner.recv_into(now, out)
    }
    fn readiness(&mut self, now: SimTime) -> Readiness {
        self.inner.readiness(now)
    }
    fn close(&mut self) {
        self.close_requested = true;
    }
    fn backlog(&self) -> usize {
        self.inner.backlog()
    }
}

/// One direction of a connection.
#[derive(Debug)]
struct Pipe {
    latency: SimDuration,
    chunk: usize,
    queue: VecDeque<(SimTime, Vec<u8>)>,
}

impl Pipe {
    fn new(latency: SimDuration, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Pipe { latency, chunk, queue: VecDeque::new() }
    }

    fn send(&mut self, now: SimTime, bytes: &[u8]) {
        let deliver = now + self.latency;
        for piece in bytes.chunks(self.chunk) {
            self.queue.push_back((deliver, piece.to_vec()));
        }
    }

    fn recv(&mut self, now: SimTime) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some((deliver, _)) = self.queue.front() {
            if *deliver > now {
                break;
            }
            let (_, piece) = self.queue.pop_front().expect("front exists");
            out.extend_from_slice(&piece);
        }
        out
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Which endpoint of a [`Duplex`] is speaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The coordinator side.
    A,
    /// The peer side.
    B,
}

/// A bidirectional in-memory byte stream with symmetric latency.
#[derive(Debug)]
pub struct Duplex {
    a_to_b: Pipe,
    b_to_a: Pipe,
}

impl Duplex {
    /// A connection with the given one-way latency, delivering in
    /// `chunk`-byte pieces. A chunk size that is not frame-aligned (the
    /// default elsewhere is a prime) exercises reassembly on every
    /// message.
    pub fn new(latency: SimDuration, chunk: usize) -> Self {
        Duplex { a_to_b: Pipe::new(latency, chunk), b_to_a: Pipe::new(latency, chunk) }
    }

    /// A zero-latency connection delivering whole writes (unit tests).
    pub fn loopback() -> Self {
        Duplex::new(SimDuration::ZERO, usize::MAX)
    }

    /// Queues bytes from `from` toward the other end.
    pub fn send(&mut self, from: End, now: SimTime, bytes: &[u8]) {
        match from {
            End::A => self.a_to_b.send(now, bytes),
            End::B => self.b_to_a.send(now, bytes),
        }
    }

    /// Drains every byte that has arrived at `at` by `now`.
    pub fn recv(&mut self, at: End, now: SimTime) -> Vec<u8> {
        match at {
            End::A => self.b_to_a.recv(now),
            End::B => self.a_to_b.recv(now),
        }
    }

    /// True when nothing is in flight in either direction.
    pub fn is_idle(&self) -> bool {
        self.a_to_b.is_empty() && self.b_to_a.is_empty()
    }

    /// True while bytes are queued toward `at` (delivered or not).
    fn has_in_flight(&self, at: End) -> bool {
        match at {
            End::A => !self.b_to_a.is_empty(),
            End::B => !self.a_to_b.is_empty(),
        }
    }

    /// True if at least one byte toward `at` is deliverable by `now`.
    fn peek_deliverable(&self, at: End, now: SimTime) -> bool {
        let pipe = match at {
            End::A => &self.b_to_a,
            End::B => &self.a_to_b,
        };
        pipe.queue.front().is_some_and(|(deliver, _)| *deliver <= now)
    }

    /// Splits the connection into its two [`Transport`] endpoints. The
    /// halves share this duplex through interior mutability (they stay
    /// on one thread — cross-thread control connections are what
    /// [`TcpTransport`](crate::tcp::TcpTransport) is for).
    pub fn into_endpoints(self) -> (DuplexEnd, DuplexEnd) {
        let shared = Rc::new(RefCell::new(DuplexShared { duplex: self, closed: [false, false] }));
        (DuplexEnd { shared: Rc::clone(&shared), end: End::A }, DuplexEnd { shared, end: End::B })
    }
}

#[derive(Debug)]
struct DuplexShared {
    duplex: Duplex,
    /// Close flags indexed by `End as usize` ([A, B]).
    closed: [bool; 2],
}

impl DuplexShared {
    fn any_closed(&self) -> bool {
        self.closed[0] || self.closed[1]
    }
}

/// One endpoint of a [`Duplex`], implementing [`Transport`].
///
/// Close semantics mirror a real socket: a close on either side stops
/// new sends, but bytes already in flight toward an endpoint still
/// deliver (at their latency) before `recv` starts failing.
#[derive(Debug)]
pub struct DuplexEnd {
    shared: Rc<RefCell<DuplexShared>>,
    end: End,
}

impl DuplexEnd {
    /// Which end of the duplex this is.
    pub fn end(&self) -> End {
        self.end
    }
}

impl Transport for DuplexEnd {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        let mut shared = self.shared.borrow_mut();
        if shared.any_closed() {
            return Err(TransportError::Closed);
        }
        shared.duplex.send(self.end, now, bytes);
        Ok(())
    }

    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        let mut shared = self.shared.borrow_mut();
        let bytes = shared.duplex.recv(self.end, now);
        if bytes.is_empty() && shared.any_closed() && !shared.duplex.has_in_flight(self.end) {
            return Err(TransportError::Closed);
        }
        Ok(bytes)
    }

    fn readiness(&mut self, now: SimTime) -> Readiness {
        let shared = self.shared.borrow();
        let end = self.end;
        if shared.duplex.peek_deliverable(end, now) {
            return Readiness::Readable;
        }
        if shared.any_closed() && !shared.duplex.has_in_flight(end) {
            return Readiness::Closed;
        }
        Readiness::Quiet
    }

    fn close(&mut self) {
        self.shared.borrow_mut().closed[self.end as usize] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency_in_chunks() {
        let mut d = Duplex::new(SimDuration::from_millis(40), 3);
        d.send(End::A, SimTime::ZERO, b"hello world");
        assert!(d.recv(End::B, SimTime::from_secs_f64(0.039)).is_empty());
        let got = d.recv(End::B, SimTime::from_secs_f64(0.040));
        assert_eq!(got, b"hello world");
        assert!(d.is_idle());
    }

    #[test]
    fn directions_are_independent() {
        let mut d = Duplex::loopback();
        d.send(End::A, SimTime::ZERO, b"down");
        d.send(End::B, SimTime::ZERO, b"up");
        assert_eq!(d.recv(End::A, SimTime::ZERO), b"up");
        assert_eq!(d.recv(End::B, SimTime::ZERO), b"down");
    }

    #[test]
    fn preserves_order_across_writes() {
        let mut d = Duplex::new(SimDuration::from_millis(1), 2);
        d.send(End::A, SimTime::ZERO, b"abc");
        d.send(End::A, SimTime::ZERO, b"defg");
        assert_eq!(d.recv(End::B, SimTime::from_secs_f64(0.001)), b"abcdefg");
    }

    #[test]
    fn endpoints_exchange_bytes_with_latency() {
        let (mut a, mut b) = Duplex::new(SimDuration::from_millis(10), 3).into_endpoints();
        let t0 = SimTime::ZERO;
        a.send(t0, b"hello").unwrap();
        assert_eq!(b.readiness(t0), Readiness::Quiet);
        assert_eq!(b.recv(t0).unwrap(), b"");
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(b.readiness(t1), Readiness::Readable);
        assert_eq!(b.recv(t1).unwrap(), b"hello");
        b.send(t1, b"hi").unwrap();
        assert_eq!(a.recv(t1 + SimDuration::from_millis(10)).unwrap(), b"hi");
    }

    #[test]
    fn leased_transport_defers_close_across_sessions() {
        let (a, mut b) = Duplex::loopback().into_endpoints();
        let mut lease = LeasedTransport::new(a);
        let t = SimTime::ZERO;
        lease.send(t, b"session 1").unwrap();
        assert_eq!(b.recv(t).unwrap(), b"session 1");
        // A driver "hangs up" — the wire survives.
        lease.close();
        assert!(lease.close_requested());
        lease.reset_close();
        lease.send(t, b"session 2").unwrap();
        assert_eq!(b.recv(t).unwrap(), b"session 2", "connection survived the deferred close");
        // Unwrapping keeps it open; a real close still works.
        let mut inner = lease.into_inner();
        inner.send(t, b"still open").unwrap();
        assert_eq!(b.recv(t).unwrap(), b"still open");
    }

    #[test]
    fn endpoint_close_drains_in_flight_then_fails() {
        let (mut a, mut b) = Duplex::new(SimDuration::from_millis(10), 64).into_endpoints();
        let t0 = SimTime::ZERO;
        a.send(t0, b"last words").unwrap();
        a.close();
        // New sends fail on both sides immediately.
        assert_eq!(a.send(t0, b"x"), Err(TransportError::Closed));
        assert_eq!(b.send(t0, b"x"), Err(TransportError::Closed));
        // In-flight bytes still deliver...
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(b.readiness(t0), Readiness::Quiet, "in flight, not yet due");
        assert_eq!(b.recv(t1).unwrap(), b"last words");
        // ...then the endpoint reports closed.
        assert_eq!(b.readiness(t1), Readiness::Closed);
        assert_eq!(b.recv(t1), Err(TransportError::Closed));
    }
}
