//! The measurement **data plane**: pattern-stamped bulk traffic with
//! per-second byte counters.
//!
//! The control protocol ([`crate::session`]) decides *when* a slot runs;
//! this module is what actually moves the measurement bytes (§4.1's
//! blast). A coordinator-side [`TrafficSource`] pumps [`blast
//! frames`](BLAST_FRAME_TAG) — bulk payloads stamped with a keystream
//! derived from the control session's handshake nonce — over any
//! [`Transport`], paced against a caller-injected clock; a peer-side
//! [`BlastParser`] (usually wrapped in a [`TrafficSink`]) reassembles
//! the stream from arbitrary chunks, verifies every payload byte
//! against the same keystream, and counts received and corrupt bytes.
//! Both sides sample their counters per second with a [`ByteCounter`],
//! which is what makes a `SecondReport` *derivable from observation*
//! instead of asserted — and what lets the coordinator cross-check a
//! peer's reported rates against its own locally counted ones
//! (inflation attacks in the TorMult family assert bytes that never
//! moved; honest counters on both ends make that visible).
//!
//! A data connection is not anonymous: its first bytes are a
//! [`DataChannelHello`] carrying the nonce of an authenticated control
//! session, so the serving side can bind the channel to a conversation
//! that actually passed the token handshake and refuse the rest.
//!
//! Everything here is sans-IO in the same sense as the sessions: time
//! enters through method arguments, transports are the caller's, and
//! the simulated `Duplex`, loopback TCP, and `FaultyTransport` all work
//! unchanged — the conformance suite runs blast streams across all
//! three, including partial delivery and mid-blast disconnects.

use flashflow_simnet::time::SimTime;

use crate::transport::{Transport, TransportError};

/// First byte of a [`DataChannelHello`]. Deliberately distinct from the
/// first byte of any control frame (a length prefix below
/// [`crate::frame::MAX_FRAME_LEN`] starts with `0x00`), so a serving
/// process can classify a fresh connection from its first byte.
pub const DATA_HELLO_TAG: u8 = 0xD1;

/// First byte of a blast frame header.
pub const BLAST_FRAME_TAG: u8 = 0xD2;

/// Data-plane wire version, carried in every hello.
pub const DATA_PLANE_VERSION: u8 = 1;

/// Encoded size of a [`DataChannelHello`]:
/// tag + version + nonce (u64) + channel (u32).
pub const HELLO_LEN: usize = 1 + 1 + 8 + 4;

/// Blast frame header size: tag + seq (u64) + payload length (u32).
pub const BLAST_HEADER_LEN: usize = 1 + 8 + 4;

/// Largest payload a single blast frame may carry; bounds sink memory.
pub const MAX_BLAST_PAYLOAD: usize = 64 * 1024;

/// Payload bytes per frame a [`TrafficSource`] emits.
pub const BLAST_CHUNK: usize = 16 * 1024;

/// Upper bound on bytes one [`TrafficSource::pump`] call writes, so a
/// zero-latency transport (or an uncapped blast) cannot trap the caller
/// or balloon an in-memory queue inside a single tick.
pub const MAX_TICK_BYTES: u64 = 256 * 1024;

/// Where a peer's `SecondReport` numbers come from.
///
/// The real measurement path derives reports from byte counters fed by
/// the data plane ([`ReportSource::Counters`]); scripted rates remain
/// available for the deterministic simulation, benches, and tests that
/// need exact known numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportSource {
    /// Report fixed, configured per-second rates (sim/test harnesses).
    Scripted,
    /// Report what the data-plane byte counters actually observed.
    Counters,
}

impl std::str::FromStr for ReportSource {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scripted" => Ok(ReportSource::Scripted),
            "counters" => Ok(ReportSource::Counters),
            other => Err(format!("unknown report source {other:?} (scripted|counters)")),
        }
    }
}

/// The opener of every data connection: binds the channel to an
/// authenticated control session's handshake nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataChannelHello {
    /// The `Auth` nonce of the control session this channel serves.
    pub nonce: u64,
    /// Zero-based channel index within that session's data channels.
    pub channel: u32,
}

impl DataChannelHello {
    /// Encodes the hello as its fixed wire form.
    pub fn encode(&self) -> [u8; HELLO_LEN] {
        let mut out = [0u8; HELLO_LEN];
        out[0] = DATA_HELLO_TAG;
        out[1] = DATA_PLANE_VERSION;
        out[2..10].copy_from_slice(&self.nonce.to_be_bytes());
        out[10..14].copy_from_slice(&self.channel.to_be_bytes());
        out
    }

    /// Decodes a hello from exactly [`HELLO_LEN`] bytes.
    ///
    /// # Errors
    /// Rejects a wrong tag or version.
    pub fn decode(bytes: &[u8; HELLO_LEN]) -> Result<Self, BlastError> {
        if bytes[0] != DATA_HELLO_TAG {
            return Err(BlastError::BadTag(bytes[0]));
        }
        if bytes[1] != DATA_PLANE_VERSION {
            return Err(BlastError::BadVersion(bytes[1]));
        }
        Ok(DataChannelHello {
            nonce: u64::from_be_bytes(bytes[2..10].try_into().expect("8 bytes")),
            channel: u32::from_be_bytes(bytes[10..14].try_into().expect("4 bytes")),
        })
    }
}

/// Everything that can be wrong with a data-plane byte stream. Like
/// control-frame errors, these poison the stream: framing is lost and
/// the connection should be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastError {
    /// A frame started with a byte that is neither hello nor blast tag.
    BadTag(u8),
    /// The hello carries an unknown data-plane version.
    BadVersion(u8),
    /// A blast frame declared a payload beyond [`MAX_BLAST_PAYLOAD`].
    OversizedFrame(u32),
    /// Blast bytes arrived before any [`DataChannelHello`].
    MissingHello,
}

impl std::fmt::Display for BlastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlastError::BadTag(t) => write!(f, "unknown data-plane tag 0x{t:02x}"),
            BlastError::BadVersion(v) => {
                write!(f, "data-plane version {v} (expected {DATA_PLANE_VERSION})")
            }
            BlastError::OversizedFrame(len) => {
                write!(f, "blast payload {len} exceeds maximum {MAX_BLAST_PAYLOAD}")
            }
            BlastError::MissingHello => f.write_str("blast frame before any DataChannelHello"),
        }
    }
}

impl std::error::Error for BlastError {}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The keystream every blast payload is stamped with: a cheap PRF of
/// (nonce, frame sequence number, word index). The sink regenerates it
/// from the hello it accepted, so any byte a middlebox (or a lying
/// serializer) flips is counted as corrupt instead of inflating the
/// measurement.
#[derive(Debug, Clone, Copy)]
pub struct BlastPattern {
    nonce: u64,
}

impl BlastPattern {
    /// The pattern bound to one control session's nonce.
    pub fn new(nonce: u64) -> Self {
        BlastPattern { nonce }
    }

    /// Fills `buf` with the payload bytes of frame `seq`.
    pub fn fill(&self, seq: u64, buf: &mut [u8]) {
        let seed = self.nonce ^ seq.wrapping_mul(0xA076_1D64_78BD_642F);
        for (k, word) in buf.chunks_mut(8).enumerate() {
            let w = splitmix64(seed ^ k as u64).to_be_bytes();
            word.copy_from_slice(&w[..word.len()]);
        }
    }
}

/// Per-second byte accounting on a caller-injected clock.
///
/// Seconds are aligned to [`ByteCounter::start`]; bytes recorded with
/// [`ByteCounter::add`] accrue to the second in progress, and
/// [`ByteCounter::roll`] finalizes every second wholly elapsed by `now`
/// (a jump across several seconds finalizes the in-progress one and
/// zero-fills the skipped ones). The trailing partial second is never
/// reported — exactly the `SecondReport` contract of "one report per
/// *completed* second".
#[derive(Debug, Clone, Default)]
pub struct ByteCounter {
    epoch: Option<SimTime>,
    completed: Vec<u64>,
    current: u64,
    total: u64,
}

impl ByteCounter {
    /// An idle counter; call [`ByteCounter::start`] to begin a slot.
    pub fn new() -> Self {
        ByteCounter::default()
    }

    /// Starts (or restarts) counting with second 0 beginning at `now`.
    pub fn start(&mut self, now: SimTime) {
        self.epoch = Some(now);
        self.completed.clear();
        self.current = 0;
        self.total = 0;
    }

    /// True once [`ByteCounter::start`] has been called.
    pub fn is_running(&self) -> bool {
        self.epoch.is_some()
    }

    /// Records `bytes` as of `now` (rolls completed seconds first).
    pub fn add(&mut self, now: SimTime, bytes: u64) {
        self.roll(now);
        self.current += bytes;
        self.total += bytes;
    }

    /// Finalizes every second wholly elapsed by `now`.
    pub fn roll(&mut self, now: SimTime) {
        let Some(epoch) = self.epoch else { return };
        let elapsed_secs = now.saturating_duration_since(epoch).as_secs() as usize;
        while self.completed.len() < elapsed_secs {
            let bytes = std::mem::take(&mut self.current);
            self.completed.push(bytes);
        }
    }

    /// Byte counts of every completed second, in order.
    pub fn completed(&self) -> &[u64] {
        &self.completed
    }

    /// Total bytes recorded, completed seconds and the partial one.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Where a [`TrafficSource`] stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// Created; the hello has not gone out.
    Idle,
    /// Hello sent; waiting for the slot's Go.
    Greeted,
    /// Blasting pattern-stamped frames.
    Blasting,
    /// Stopped (slot over, driver stop, or transport failure).
    Stopped,
}

/// The sending half of one data channel: greets with a
/// [`DataChannelHello`], then blasts pattern-stamped frames paced
/// against the caller's clock and a bytes-per-second cap, counting what
/// it sent per second.
#[derive(Debug)]
pub struct TrafficSource<T: Transport> {
    transport: T,
    pattern: BlastPattern,
    hello: DataChannelHello,
    /// Send cap in bytes per second; `0` means uncapped (every pump
    /// writes up to [`MAX_TICK_BYTES`]).
    rate_cap: u64,
    state: SourceState,
    started_at: Option<SimTime>,
    sent: u64,
    seq: u64,
    counter: ByteCounter,
    error: Option<TransportError>,
    /// Reused frame buffer (header + payload): the blast path runs at
    /// hundreds of MB/s, so per-frame allocation is pure overhead.
    frame: Vec<u8>,
}

impl<T: Transport> TrafficSource<T> {
    /// A source for channel `channel` of the control session that
    /// authenticated with `nonce`.
    pub fn new(transport: T, nonce: u64, channel: u32) -> Self {
        TrafficSource {
            transport,
            pattern: BlastPattern::new(nonce),
            hello: DataChannelHello { nonce, channel },
            rate_cap: 0,
            state: SourceState::Idle,
            started_at: None,
            sent: 0,
            seq: 0,
            counter: ByteCounter::new(),
            error: None,
            frame: Vec::with_capacity(BLAST_HEADER_LEN + BLAST_CHUNK),
        }
    }

    /// Caps the blast at `bytes_per_sec` (0 = uncapped). May be called
    /// any time before [`TrafficSource::start`].
    pub fn set_rate_cap(&mut self, bytes_per_sec: u64) {
        self.rate_cap = bytes_per_sec;
    }

    /// Current state.
    pub fn state(&self) -> SourceState {
        self.state
    }

    /// The first transport error observed, if any.
    pub fn error(&self) -> Option<TransportError> {
        self.error
    }

    /// The hello this channel opens with.
    pub fn hello(&self) -> DataChannelHello {
        self.hello
    }

    /// Total payload bytes handed to the transport.
    pub fn sent_total(&self) -> u64 {
        self.sent
    }

    /// Payload bytes sent in each completed second since the blast
    /// started.
    pub fn completed_seconds(&self) -> &[u64] {
        self.counter.completed()
    }

    /// The transport (flush nudges, fault tripping in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Unbinds, returning the transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Sends the hello, binding this channel to its control session.
    /// Idempotent; a transport failure records the error and stops the
    /// channel.
    pub fn greet(&mut self, now: SimTime) {
        if self.state != SourceState::Idle {
            return;
        }
        match self.transport.send(now, &self.hello.encode()) {
            Ok(()) => self.state = SourceState::Greeted,
            Err(err) => self.fail(err),
        }
    }

    /// Starts the blast clock (the slot's Go instant). Second 0 of the
    /// counted series begins here.
    pub fn start(&mut self, now: SimTime) {
        if self.state != SourceState::Greeted {
            return;
        }
        self.state = SourceState::Blasting;
        self.started_at = Some(now);
        self.counter.start(now);
    }

    /// Stops blasting and finalizes the per-second counters up to `now`.
    pub fn stop(&mut self, now: SimTime) {
        if self.state == SourceState::Blasting {
            self.counter.roll(now);
        }
        if self.state != SourceState::Stopped {
            self.state = SourceState::Stopped;
        }
    }

    /// Writes as many pattern-stamped frames as the pacing budget at
    /// `now` allows (bounded by [`MAX_TICK_BYTES`] per call); returns
    /// `true` if any bytes went out.
    pub fn pump(&mut self, now: SimTime) -> bool {
        if self.state != SourceState::Blasting {
            return false;
        }
        self.counter.roll(now);
        let started = self.started_at.expect("Blasting implies start");
        let allowed = if self.rate_cap == 0 {
            self.sent + MAX_TICK_BYTES
        } else {
            let elapsed = now.saturating_duration_since(started).as_secs_f64();
            (self.rate_cap as f64 * elapsed) as u64
        };
        let mut budget = allowed.saturating_sub(self.sent).min(MAX_TICK_BYTES);
        let mut moved = false;
        while budget > 0 {
            let len = (budget as usize).min(BLAST_CHUNK);
            let seq = self.seq;
            self.frame.clear();
            self.frame.push(BLAST_FRAME_TAG);
            self.frame.extend_from_slice(&seq.to_be_bytes());
            self.frame.extend_from_slice(&(len as u32).to_be_bytes());
            self.frame.resize(BLAST_HEADER_LEN + len, 0);
            self.pattern.fill(seq, &mut self.frame[BLAST_HEADER_LEN..]);
            if let Err(err) = self.transport.send(now, &self.frame) {
                self.fail(err);
                return moved;
            }
            self.seq += 1;
            self.sent += len as u64;
            self.counter.add(now, len as u64);
            budget -= len as u64;
            moved = true;
        }
        moved
    }

    fn fail(&mut self, err: TransportError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
        self.state = SourceState::Stopped;
    }
}

/// What a [`BlastParser`] surfaced from a chunk of stream bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastEvent {
    /// A (re)binding hello: the channel now serves this control session.
    Hello(DataChannelHello),
    /// Payload bytes arrived: `bytes` total, of which `corrupt` did not
    /// match the pattern keystream.
    Data {
        /// Payload bytes delivered in this batch.
        bytes: u64,
        /// Of those, bytes that failed pattern verification.
        corrupt: u64,
    },
}

enum ParseState {
    /// Waiting for a tag byte (hello or blast header).
    Header,
    /// Mid-payload: `got` of the current frame's bytes consumed (the
    /// expected bytes live in the parser's reused buffer).
    Payload { got: usize },
}

/// Incremental decoder for one data connection's byte stream: hellos
/// and pattern-verified blast frames, reassembled from arbitrary
/// chunks. The first [`BlastError`] poisons the parser (framing is
/// lost); callers drop the connection.
pub struct BlastParser {
    state: ParseState,
    buf: Vec<u8>,
    pattern: Option<BlastPattern>,
    /// Reused expected-payload buffer for the frame being parsed
    /// (regenerating per frame would allocate on the hot path).
    expected: Vec<u8>,
    received: u64,
    corrupt: u64,
    poisoned: Option<BlastError>,
}

impl Default for BlastParser {
    fn default() -> Self {
        BlastParser::new()
    }
}

impl BlastParser {
    /// A parser expecting a hello first.
    pub fn new() -> Self {
        BlastParser {
            state: ParseState::Header,
            buf: Vec::new(),
            pattern: None,
            expected: Vec::new(),
            received: 0,
            corrupt: 0,
            poisoned: None,
        }
    }

    /// Total payload bytes consumed so far.
    pub fn received_total(&self) -> u64 {
        self.received
    }

    /// Total payload bytes that failed pattern verification.
    pub fn corrupt_total(&self) -> u64 {
        self.corrupt
    }

    /// Consumes `bytes`, returning the events they completed.
    ///
    /// # Errors
    /// The first framing error is sticky; every later call returns it.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<BlastEvent>, BlastError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        self.buf.extend_from_slice(bytes);
        let mut events = Vec::new();
        let mut batch_bytes = 0u64;
        let mut batch_corrupt = 0u64;
        loop {
            match &mut self.state {
                ParseState::Header => {
                    let Some(&tag) = self.buf.first() else { break };
                    match tag {
                        DATA_HELLO_TAG => {
                            if self.buf.len() < HELLO_LEN {
                                break;
                            }
                            let mut raw = [0u8; HELLO_LEN];
                            raw.copy_from_slice(&self.buf[..HELLO_LEN]);
                            self.buf.drain(..HELLO_LEN);
                            let hello = match DataChannelHello::decode(&raw) {
                                Ok(h) => h,
                                Err(e) => return Err(self.poison(e)),
                            };
                            self.pattern = Some(BlastPattern::new(hello.nonce));
                            flush_data(&mut events, &mut batch_bytes, &mut batch_corrupt);
                            events.push(BlastEvent::Hello(hello));
                        }
                        BLAST_FRAME_TAG => {
                            if self.buf.len() < BLAST_HEADER_LEN {
                                break;
                            }
                            let Some(pattern) = self.pattern else {
                                return Err(self.poison(BlastError::MissingHello));
                            };
                            let seq =
                                u64::from_be_bytes(self.buf[1..9].try_into().expect("8 bytes"));
                            let len =
                                u32::from_be_bytes(self.buf[9..13].try_into().expect("4 bytes"));
                            if len as usize > MAX_BLAST_PAYLOAD {
                                return Err(self.poison(BlastError::OversizedFrame(len)));
                            }
                            self.buf.drain(..BLAST_HEADER_LEN);
                            self.expected.resize(len as usize, 0);
                            pattern.fill(seq, &mut self.expected);
                            self.state = ParseState::Payload { got: 0 };
                        }
                        other => return Err(self.poison(BlastError::BadTag(other))),
                    }
                }
                ParseState::Payload { got } => {
                    if self.buf.is_empty() {
                        break;
                    }
                    let want = self.expected.len() - *got;
                    let take = want.min(self.buf.len());
                    let mismatches = self.buf[..take]
                        .iter()
                        .zip(&self.expected[*got..*got + take])
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                    self.buf.drain(..take);
                    *got += take;
                    batch_bytes += take as u64;
                    batch_corrupt += mismatches;
                    self.received += take as u64;
                    self.corrupt += mismatches;
                    if *got == self.expected.len() {
                        self.state = ParseState::Header;
                    }
                }
            }
        }
        flush_data(&mut events, &mut batch_bytes, &mut batch_corrupt);
        Ok(events)
    }

    fn poison(&mut self, err: BlastError) -> BlastError {
        self.poisoned = Some(err);
        self.buf.clear();
        err
    }
}

fn flush_data(events: &mut Vec<BlastEvent>, bytes: &mut u64, corrupt: &mut u64) {
    if *bytes > 0 {
        events.push(BlastEvent::Data { bytes: *bytes, corrupt: *corrupt });
        *bytes = 0;
        *corrupt = 0;
    }
}

/// The receiving half of one data channel: a [`BlastParser`] bound to a
/// transport, with per-second received/corrupt counters on the caller's
/// clock. This is the in-process sink used by tests and benches; the
/// standalone measurer process drives a bare [`BlastParser`] so it can
/// aggregate counters across channels.
pub struct TrafficSink<T: Transport> {
    transport: T,
    parser: BlastParser,
    counter: ByteCounter,
    corrupt_counter: ByteCounter,
    hello: Option<DataChannelHello>,
    error: Option<TransportError>,
}

impl<T: Transport> TrafficSink<T> {
    /// A sink draining `transport`.
    pub fn new(transport: T) -> Self {
        TrafficSink {
            transport,
            parser: BlastParser::new(),
            counter: ByteCounter::new(),
            corrupt_counter: ByteCounter::new(),
            hello: None,
            error: None,
        }
    }

    /// Starts the per-second counting clock (the slot's Go instant).
    pub fn start(&mut self, now: SimTime) {
        self.counter.start(now);
        self.corrupt_counter.start(now);
    }

    /// Drains the transport once; returns `true` if bytes arrived.
    ///
    /// # Errors
    /// Returns the first **framing** error (sticky; the stream has lost
    /// sync). A *transport* failure is not an `Err` — the sink records
    /// it (see [`TrafficSink::transport_error`]) and later pumps return
    /// `Ok(false)`, because "the peer hung up" is the normal end of a
    /// blast channel, not a protocol violation.
    pub fn pump(&mut self, now: SimTime) -> Result<bool, BlastError> {
        if self.error.is_some() {
            return Ok(false);
        }
        self.counter.roll(now);
        self.corrupt_counter.roll(now);
        let bytes = match self.transport.recv(now) {
            Ok(bytes) => bytes,
            Err(err) => {
                self.error = Some(err);
                return Ok(false);
            }
        };
        if bytes.is_empty() {
            return Ok(false);
        }
        for event in self.parser.push(&bytes)? {
            match event {
                BlastEvent::Hello(h) => self.hello = Some(h),
                BlastEvent::Data { bytes, corrupt } => {
                    if self.counter.is_running() {
                        self.counter.add(now, bytes);
                        self.corrupt_counter.add(now, corrupt);
                    }
                }
            }
        }
        Ok(true)
    }

    /// The most recent hello, once one arrived.
    pub fn hello(&self) -> Option<DataChannelHello> {
        self.hello
    }

    /// Total payload bytes received.
    pub fn received_total(&self) -> u64 {
        self.parser.received_total()
    }

    /// Total payload bytes failing pattern verification.
    pub fn corrupt_total(&self) -> u64 {
        self.parser.corrupt_total()
    }

    /// Received bytes per completed second since [`TrafficSink::start`].
    pub fn completed_seconds(&self) -> &[u64] {
        self.counter.completed()
    }

    /// The first transport error observed, if any.
    pub fn transport_error(&self) -> Option<TransportError> {
        self.error
    }

    /// The transport (fault tripping in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Duplex;
    use flashflow_simnet::time::SimDuration;

    #[test]
    fn hello_round_trips_and_rejects_garbage() {
        let hello = DataChannelHello { nonce: 0xFEED_F00D, channel: 3 };
        let raw = hello.encode();
        assert_eq!(DataChannelHello::decode(&raw).unwrap(), hello);

        let mut bad_tag = raw;
        bad_tag[0] = 0x00;
        assert_eq!(DataChannelHello::decode(&bad_tag), Err(BlastError::BadTag(0x00)));
        let mut bad_version = raw;
        bad_version[1] = 9;
        assert_eq!(DataChannelHello::decode(&bad_version), Err(BlastError::BadVersion(9)));
    }

    #[test]
    fn byte_counter_finalizes_whole_seconds_only() {
        let mut c = ByteCounter::new();
        c.start(SimTime::from_secs(10));
        c.add(SimTime::from_secs_f64(10.5), 100);
        assert!(c.completed().is_empty(), "partial second not reported");
        c.add(SimTime::from_secs_f64(11.2), 50);
        assert_eq!(c.completed(), &[100]);
        // A jump across seconds zero-fills the gap.
        c.roll(SimTime::from_secs_f64(14.0));
        assert_eq!(c.completed(), &[100, 50, 0, 0]);
        assert_eq!(c.total(), 150);
    }

    #[test]
    fn source_to_sink_stream_verifies_clean_over_chunked_link() {
        // 3-byte re-chunking: every hello and frame crosses reassembly.
        let (a, b) = Duplex::new(SimDuration::ZERO, 3).into_endpoints();
        let mut src = TrafficSource::new(a, 0xABCD, 0);
        src.set_rate_cap(40_000);
        let mut sink = TrafficSink::new(b);

        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        for tick in 0..=30u64 {
            let now = SimTime::from_secs_f64(tick as f64 * 0.1);
            src.pump(now);
            sink.pump(now).expect("clean stream");
        }
        let now = SimTime::from_secs(3);
        src.stop(now);
        sink.pump(now).expect("clean stream");

        assert_eq!(sink.hello(), Some(DataChannelHello { nonce: 0xABCD, channel: 0 }));
        assert!(src.sent_total() > 0);
        assert_eq!(sink.received_total(), src.sent_total(), "every payload byte arrived");
        assert_eq!(sink.corrupt_total(), 0, "pattern verified");
        // Pacing: roughly rate_cap per completed second on both ends.
        for (ix, &sec) in src.completed_seconds().iter().enumerate() {
            assert!((30_000..=50_000).contains(&sec), "source second {ix} sent {sec} B (cap 40k)");
        }
        assert_eq!(src.completed_seconds().len(), 3);
    }

    #[test]
    fn corrupt_bytes_are_counted_not_trusted() {
        let (a, b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 7, 0);
        src.set_rate_cap(1_000);
        let mut sink = TrafficSink::new(b);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));

        // Flip bytes in flight by re-sending a doctored copy: build a
        // frame whose payload does not match the keystream.
        let mut frame = Vec::new();
        frame.push(BLAST_FRAME_TAG);
        frame.extend_from_slice(&99u64.to_be_bytes());
        frame.extend_from_slice(&8u32.to_be_bytes());
        frame.extend_from_slice(&[0xFF; 8]);
        src.transport_mut().send(SimTime::from_secs(1), &frame).unwrap();

        sink.pump(SimTime::from_secs(1)).expect("framing intact");
        assert!(sink.corrupt_total() >= 7, "doctored payload flagged: {}", sink.corrupt_total());
        assert!(sink.corrupt_total() < sink.received_total(), "honest bytes still counted");
    }

    #[test]
    fn blast_before_hello_poisons_the_parser() {
        let mut parser = BlastParser::new();
        let mut frame = vec![BLAST_FRAME_TAG];
        frame.extend_from_slice(&0u64.to_be_bytes());
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(&[0; 4]);
        assert_eq!(parser.push(&frame), Err(BlastError::MissingHello));
        // Sticky.
        assert_eq!(parser.push(&[]), Err(BlastError::MissingHello));
    }

    #[test]
    fn rebinding_hello_switches_the_pattern_mid_stream() {
        // Session 1 blasts, then a new hello rebinds the channel to
        // session 2 — the pooled-connection reuse path.
        let (a1, b) = Duplex::loopback().into_endpoints();
        let mut sink = TrafficSink::new(b);
        let mut src1 = TrafficSource::new(a1, 111, 0);
        src1.set_rate_cap(1_000);
        src1.greet(SimTime::ZERO);
        src1.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src1.pump(SimTime::from_secs(1));
        sink.pump(SimTime::from_secs(1)).unwrap();
        let after_first = sink.received_total();
        assert!(after_first > 0);
        assert_eq!(sink.corrupt_total(), 0);

        // Second session reuses the same wire with a different nonce.
        let mut src2 = TrafficSource::new(src1.into_transport(), 222, 0);
        src2.set_rate_cap(1_000);
        src2.greet(SimTime::from_secs(1));
        src2.start(SimTime::from_secs(1));
        src2.pump(SimTime::from_secs(2));
        sink.pump(SimTime::from_secs(2)).unwrap();
        assert_eq!(sink.hello(), Some(DataChannelHello { nonce: 222, channel: 0 }));
        assert!(sink.received_total() > after_first);
        assert_eq!(sink.corrupt_total(), 0, "new pattern verified after rebind");
    }

    #[test]
    fn uncapped_pump_is_bounded_per_tick() {
        let (a, _b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 1, 0);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        src.pump(SimTime::ZERO);
        assert_eq!(src.sent_total(), MAX_TICK_BYTES, "one tick, one budget");
    }

    #[test]
    fn transport_failure_stops_the_source() {
        let (a, mut b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 1, 0);
        src.set_rate_cap(1_000);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        b.close();
        src.pump(SimTime::from_secs(1));
        assert_eq!(src.state(), SourceState::Stopped);
        assert!(src.error().is_some());
    }
}
