//! The measurement **data plane**: pattern-stamped bulk traffic with
//! per-second byte counters.
//!
//! The control protocol ([`crate::session`]) decides *when* a slot runs;
//! this module is what actually moves the measurement bytes (§4.1's
//! blast). A coordinator-side [`TrafficSource`] pumps [`blast
//! frames`](BLAST_FRAME_TAG) — bulk payloads stamped with a keystream
//! derived from the control session's handshake nonce — over any
//! [`Transport`], paced against a caller-injected clock; a peer-side
//! [`BlastParser`] (usually wrapped in a [`TrafficSink`]) reassembles
//! the stream from arbitrary chunks, verifies every payload byte
//! against the same keystream, and counts received and corrupt bytes.
//! Both sides sample their counters per second with a [`ByteCounter`],
//! which is what makes a `SecondReport` *derivable from observation*
//! instead of asserted — and what lets the coordinator cross-check a
//! peer's reported rates against its own locally counted ones
//! (inflation attacks in the TorMult family assert bytes that never
//! moved; honest counters on both ends make that visible).
//!
//! A data connection is not anonymous: its first bytes are a
//! [`DataChannelHello`] carrying the nonce of an authenticated control
//! session, so the serving side can bind the channel to a conversation
//! that actually passed the token handshake and refuse the rest.
//!
//! Everything here is sans-IO in the same sense as the sessions: time
//! enters through method arguments, transports are the caller's, and
//! the simulated `Duplex`, loopback TCP, and `FaultyTransport` all work
//! unchanged — the conformance suite runs blast streams across all
//! three, including partial delivery and mid-blast disconnects.

use flashflow_obs::Counter;
use flashflow_simnet::time::SimTime;

use crate::transport::{Transport, TransportError};

/// Shared telemetry counters a blast receiver feeds: cloned
/// `flashflow-obs` [`Counter`] handles, so one per-connection parser
/// can stream its byte accounting into a process-global
/// [`MetricsRegistry`](flashflow_obs::MetricsRegistry) without locks.
/// Attaching is optional; a bare parser pays nothing.
#[derive(Debug, Clone, Default)]
pub struct BlastCounters {
    /// Payload bytes that passed pattern verification.
    pub verified: Counter,
    /// Payload bytes that failed pattern verification.
    pub corrupt: Counter,
    /// Declared bytes of frames whose keyed integrity tag failed.
    pub forged: Counter,
    /// Declared bytes of tag-valid frames with replayed sequence
    /// numbers.
    pub replayed: Counter,
}

/// First byte of a [`DataChannelHello`]. Deliberately distinct from the
/// first byte of any control frame (a length prefix below
/// [`crate::frame::MAX_FRAME_LEN`] starts with `0x00`), so a serving
/// process can classify a fresh connection from its first byte.
pub const DATA_HELLO_TAG: u8 = 0xD1;

/// First byte of a blast frame header.
pub const BLAST_FRAME_TAG: u8 = 0xD2;

/// Data-plane wire version, carried in every hello. Version 2 added the
/// keyed integrity tag to every blast frame header.
pub const DATA_PLANE_VERSION: u8 = 2;

/// Encoded size of a [`DataChannelHello`]:
/// tag + version + nonce (u64) + channel (u32).
pub const HELLO_LEN: usize = 1 + 1 + 8 + 4;

/// Blast frame header size: tag + seq (u64) + payload length (u32) +
/// keyed integrity tag (u64).
pub const BLAST_HEADER_LEN: usize = 1 + 8 + 4 + 8;

/// Largest payload a single blast frame may carry; bounds sink memory.
pub const MAX_BLAST_PAYLOAD: usize = 64 * 1024;

/// Payload bytes per frame a [`TrafficSource`] emits.
pub const BLAST_CHUNK: usize = 16 * 1024;

/// Upper bound on bytes one [`TrafficSource::pump`] call writes, so a
/// zero-latency transport (or an uncapped blast) cannot trap the caller
/// or balloon an in-memory queue inside a single tick.
pub const MAX_TICK_BYTES: u64 = 256 * 1024;

/// Target size of one batched `Transport::send`: the blast senders
/// assemble several frames into their reused buffer and hand them to
/// the transport together, so a full-rate blast costs one syscall per
/// ~4 frames instead of one per frame.
pub const SEND_BATCH_BYTES: usize = 64 * 1024;

/// Send-side backlog ([`Transport::backlog`]) above which an
/// [`Echoer`] stops emitting: the verified backlog then waits in
/// `pending_echo` (a `u64` count, not buffered bytes) until the peer
/// drains the return stream. Without this, a measurer that blasts but
/// never reads its echo would grow the relay's transport outbox
/// without bound.
pub const ECHO_BACKLOG_HIGH_WATER: usize = 1 << 20;

/// Where a peer's `SecondReport` numbers come from.
///
/// The real measurement path derives reports from byte counters fed by
/// the data plane ([`ReportSource::Counters`]); scripted rates remain
/// available for the deterministic simulation, benches, and tests that
/// need exact known numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportSource {
    /// Report fixed, configured per-second rates (sim/test harnesses).
    Scripted,
    /// Report what the data-plane byte counters actually observed.
    Counters,
}

impl std::str::FromStr for ReportSource {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scripted" => Ok(ReportSource::Scripted),
            "counters" => Ok(ReportSource::Counters),
            other => Err(format!("unknown report source {other:?} (scripted|counters)")),
        }
    }
}

/// The opener of every data connection: binds the channel to an
/// authenticated control session's handshake nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataChannelHello {
    /// The `Auth` nonce of the control session this channel serves.
    pub nonce: u64,
    /// Zero-based channel index within that session's data channels.
    pub channel: u32,
}

impl DataChannelHello {
    /// Encodes the hello as its fixed wire form.
    pub fn encode(&self) -> [u8; HELLO_LEN] {
        let mut out = [0u8; HELLO_LEN];
        out[0] = DATA_HELLO_TAG;
        out[1] = DATA_PLANE_VERSION;
        out[2..10].copy_from_slice(&self.nonce.to_be_bytes());
        out[10..14].copy_from_slice(&self.channel.to_be_bytes());
        out
    }

    /// Decodes a hello from exactly [`HELLO_LEN`] bytes.
    ///
    /// # Errors
    /// Rejects a wrong tag or version.
    pub fn decode(bytes: &[u8; HELLO_LEN]) -> Result<Self, BlastError> {
        if bytes[0] != DATA_HELLO_TAG {
            return Err(BlastError::BadTag(bytes[0]));
        }
        if bytes[1] != DATA_PLANE_VERSION {
            return Err(BlastError::BadVersion(bytes[1]));
        }
        Ok(DataChannelHello {
            nonce: u64::from_be_bytes(bytes[2..10].try_into().expect("8 bytes")),
            channel: u32::from_be_bytes(bytes[10..14].try_into().expect("4 bytes")),
        })
    }
}

/// Everything that can be wrong with a data-plane byte stream. Like
/// control-frame errors, these poison the stream: framing is lost and
/// the connection should be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastError {
    /// A frame started with a byte that is neither hello nor blast tag.
    BadTag(u8),
    /// The hello carries an unknown data-plane version.
    BadVersion(u8),
    /// A blast frame declared a payload beyond [`MAX_BLAST_PAYLOAD`].
    OversizedFrame(u32),
    /// Blast bytes arrived before any [`DataChannelHello`].
    MissingHello,
}

impl std::fmt::Display for BlastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlastError::BadTag(t) => write!(f, "unknown data-plane tag 0x{t:02x}"),
            BlastError::BadVersion(v) => {
                write!(f, "data-plane version {v} (expected {DATA_PLANE_VERSION})")
            }
            BlastError::OversizedFrame(len) => {
                write!(f, "blast payload {len} exceeds maximum {MAX_BLAST_PAYLOAD}")
            }
            BlastError::MissingHello => f.write_str("blast frame before any DataChannelHello"),
        }
    }
}

impl std::error::Error for BlastError {}

/// Appends one pattern-stamped frame (header + payload, keystream via
/// [`BlastPattern::fill`]) for `seq` to `buf` — the shared hot-path
/// builder both blast senders batch with.
fn append_frame(buf: &mut Vec<u8>, pattern: BlastPattern, key: u64, seq: u64, len: usize) {
    buf.push(BLAST_FRAME_TAG);
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    let tag = frame_tag(key, pattern.nonce(), seq, len as u32);
    buf.extend_from_slice(&tag.to_be_bytes());
    let start = buf.len();
    buf.resize(start + len, 0);
    pattern.fill(seq, &mut buf[start..]);
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const BINDING_SALT: u64 = 0xB1D1_0000_ECC0_0001;
const TOKEN_KEY_SALT: u64 = 0x7C8E_0000_4E40_0002;
const SECRET_KEY_SALT: u64 = 0x5EC2_0000_7A60_0003;
const FRAME_TAG_SALT: u64 = 0xF2A6_0000_1A90_0004;

/// The **public** hello binding nonce derived from a per-measurement
/// secret (the `measurement_secret` a `MeasureCmd` carries): every
/// measurer of one item stamps its echo channels with this nonce, and
/// the target relay accepts exactly it. The derivation is one-way-ish
/// (a Davies–Meyer-style feed-forward over the mix), so reading the
/// nonce off a data channel does not hand over the secret — and
/// therefore not the frame-tag key either.
///
/// Like [`BlastPattern`], this is a cheap mix, not a cryptographic
/// PRF; a deployment would swap in SipHash or BLAKE3 keyed hashing
/// without changing any of the structure around it.
pub fn binding_nonce(secret: u64) -> u64 {
    splitmix64(secret ^ BINDING_SALT) ^ secret
}

/// The frame-tag key derived from a per-measurement secret (echo
/// channels: measurer ↔ target relay, who share only the secret their
/// `MeasureCmd`s carried).
pub fn secret_channel_key(secret: u64) -> u64 {
    splitmix64(secret ^ SECRET_KEY_SALT) ^ secret.rotate_left(17)
}

/// The frame-tag key derived from a pre-shared control token
/// (coordinator-blasted channels: both ends hold the token, which never
/// crosses a data connection).
pub fn channel_key(token: &[u8; crate::msg::AUTH_TOKEN_LEN]) -> u64 {
    let mut key = TOKEN_KEY_SALT;
    for chunk in token.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        key = splitmix64(key ^ u64::from_be_bytes(word));
    }
    key
}

/// The keyed integrity tag stamped into every blast frame header: a
/// PRF of the secret channel key and the frame's identity. The
/// keystream alone ([`BlastPattern`]) detects *corruption* but is
/// derived from the hello nonce, which crosses the wire in the clear —
/// a MITM who reads it could forge whole frames that verify. The tag is
/// keyed by a secret that never crosses the data channel (the control
/// token, or the `MeasureCmd`'s measurement secret), so forged frames
/// fail the tag check and are counted instead of credited. Because the
/// tag binds the sequence number, a MITM's remaining move is re-sending
/// captured frames — which the receiver's monotone sequence window
/// rejects and counts as replays ([`BlastParser::replayed_total`]).
pub fn frame_tag(key: u64, nonce: u64, seq: u64, len: u32) -> u64 {
    let mut h = splitmix64(key ^ FRAME_TAG_SALT);
    h = splitmix64(h ^ nonce);
    h = splitmix64(h ^ seq);
    splitmix64(h ^ u64::from(len)) ^ key
}

/// The keystream every blast payload is stamped with: a cheap PRF of
/// (nonce, frame sequence number, word index). The sink regenerates it
/// from the hello it accepted, so any byte a middlebox (or a lying
/// serializer) flips is counted as corrupt instead of inflating the
/// measurement.
#[derive(Debug, Clone, Copy)]
pub struct BlastPattern {
    nonce: u64,
}

impl BlastPattern {
    /// The pattern bound to one control session's nonce.
    pub fn new(nonce: u64) -> Self {
        BlastPattern { nonce }
    }

    /// The nonce this pattern (and the frame tags of its stream) is
    /// bound to.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// Fills `buf` with the payload bytes of frame `seq`.
    pub fn fill(&self, seq: u64, buf: &mut [u8]) {
        let seed = self.nonce ^ seq.wrapping_mul(0xA076_1D64_78BD_642F);
        for (k, word) in buf.chunks_mut(8).enumerate() {
            let w = splitmix64(seed ^ k as u64).to_be_bytes();
            word.copy_from_slice(&w[..word.len()]);
        }
    }
}

/// Per-second byte accounting on a caller-injected clock.
///
/// Seconds are aligned to [`ByteCounter::start`]; bytes recorded with
/// [`ByteCounter::add`] accrue to the second in progress, and
/// [`ByteCounter::roll`] finalizes every second wholly elapsed by `now`
/// (a jump across several seconds finalizes the in-progress one and
/// zero-fills the skipped ones). The trailing partial second is never
/// reported — exactly the `SecondReport` contract of "one report per
/// *completed* second".
#[derive(Debug, Clone, Default)]
pub struct ByteCounter {
    epoch: Option<SimTime>,
    completed: Vec<u64>,
    current: u64,
    total: u64,
}

impl ByteCounter {
    /// An idle counter; call [`ByteCounter::start`] to begin a slot.
    pub fn new() -> Self {
        ByteCounter::default()
    }

    /// Starts (or restarts) counting with second 0 beginning at `now`.
    pub fn start(&mut self, now: SimTime) {
        self.epoch = Some(now);
        self.completed.clear();
        self.current = 0;
        self.total = 0;
    }

    /// True once [`ByteCounter::start`] has been called.
    pub fn is_running(&self) -> bool {
        self.epoch.is_some()
    }

    /// Records `bytes` as of `now` (rolls completed seconds first).
    pub fn add(&mut self, now: SimTime, bytes: u64) {
        self.roll(now);
        self.current += bytes;
        self.total += bytes;
    }

    /// Finalizes every second wholly elapsed by `now`.
    pub fn roll(&mut self, now: SimTime) {
        let Some(epoch) = self.epoch else { return };
        let elapsed_secs = now.saturating_duration_since(epoch).as_secs() as usize;
        while self.completed.len() < elapsed_secs {
            let bytes = std::mem::take(&mut self.current);
            self.completed.push(bytes);
        }
    }

    /// Byte counts of every completed second, in order.
    pub fn completed(&self) -> &[u64] {
        &self.completed
    }

    /// Total bytes recorded, completed seconds and the partial one.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Where a [`TrafficSource`] stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// Created; the hello has not gone out.
    Idle,
    /// Hello sent; waiting for the slot's Go.
    Greeted,
    /// Blasting pattern-stamped frames.
    Blasting,
    /// Stopped (slot over, driver stop, or transport failure).
    Stopped,
}

/// The sending half of one data channel: greets with a
/// [`DataChannelHello`], then blasts pattern-stamped frames paced
/// against the caller's clock and a bytes-per-second cap, counting what
/// it sent per second.
#[derive(Debug)]
pub struct TrafficSource<T: Transport> {
    transport: T,
    pattern: BlastPattern,
    hello: DataChannelHello,
    /// Frame-tag key (see [`frame_tag`]); both ends must agree.
    key: u64,
    /// Send cap in bytes per second; `0` means uncapped (every pump
    /// writes up to [`MAX_TICK_BYTES`]).
    rate_cap: u64,
    state: SourceState,
    started_at: Option<SimTime>,
    sent: u64,
    seq: u64,
    counter: ByteCounter,
    error: Option<TransportError>,
    /// Reused frame buffer (header + payload): the blast path runs at
    /// hundreds of MB/s, so per-frame allocation is pure overhead.
    frame: Vec<u8>,
}

impl<T: Transport> TrafficSource<T> {
    /// A source for channel `channel` of the control session that
    /// authenticated with `nonce`.
    pub fn new(transport: T, nonce: u64, channel: u32) -> Self {
        TrafficSource {
            transport,
            pattern: BlastPattern::new(nonce),
            hello: DataChannelHello { nonce, channel },
            key: 0,
            rate_cap: 0,
            state: SourceState::Idle,
            started_at: None,
            sent: 0,
            seq: 0,
            counter: ByteCounter::new(),
            error: None,
            frame: Vec::with_capacity(BLAST_HEADER_LEN + BLAST_CHUNK),
        }
    }

    /// Caps the blast at `bytes_per_sec` (0 = uncapped). May be called
    /// any time before [`TrafficSource::start`].
    pub fn set_rate_cap(&mut self, bytes_per_sec: u64) {
        self.rate_cap = bytes_per_sec;
    }

    /// Keys the integrity tag on every frame (see [`frame_tag`]). The
    /// receiving [`BlastParser`] must be keyed identically; the default
    /// key is `0` on both sides.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = key;
        self
    }

    /// Current state.
    pub fn state(&self) -> SourceState {
        self.state
    }

    /// The first transport error observed, if any.
    pub fn error(&self) -> Option<TransportError> {
        self.error
    }

    /// The hello this channel opens with.
    pub fn hello(&self) -> DataChannelHello {
        self.hello
    }

    /// Total payload bytes handed to the transport.
    pub fn sent_total(&self) -> u64 {
        self.sent
    }

    /// Payload bytes sent in each completed second since the blast
    /// started.
    pub fn completed_seconds(&self) -> &[u64] {
        self.counter.completed()
    }

    /// The transport (flush nudges, fault tripping in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Unbinds, returning the transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Sends the hello, binding this channel to its control session.
    /// Idempotent; a transport failure records the error and stops the
    /// channel.
    pub fn greet(&mut self, now: SimTime) {
        if self.state != SourceState::Idle {
            return;
        }
        match self.transport.send(now, &self.hello.encode()) {
            Ok(()) => self.state = SourceState::Greeted,
            Err(err) => self.fail(err),
        }
    }

    /// Starts the blast clock (the slot's Go instant). Second 0 of the
    /// counted series begins here.
    pub fn start(&mut self, now: SimTime) {
        if self.state != SourceState::Greeted {
            return;
        }
        self.state = SourceState::Blasting;
        self.started_at = Some(now);
        self.counter.start(now);
    }

    /// Stops blasting and finalizes the per-second counters up to `now`.
    pub fn stop(&mut self, now: SimTime) {
        if self.state == SourceState::Blasting {
            self.counter.roll(now);
        }
        if self.state != SourceState::Stopped {
            self.state = SourceState::Stopped;
        }
    }

    /// Writes as many pattern-stamped frames as the pacing budget at
    /// `now` allows (bounded by [`MAX_TICK_BYTES`] per call); returns
    /// `true` if any bytes went out.
    pub fn pump(&mut self, now: SimTime) -> bool {
        if self.state != SourceState::Blasting {
            return false;
        }
        self.counter.roll(now);
        let started = self.started_at.expect("Blasting implies start");
        let allowed = if self.rate_cap == 0 {
            self.sent + MAX_TICK_BYTES
        } else {
            let elapsed = now.saturating_duration_since(started).as_secs_f64();
            (self.rate_cap as f64 * elapsed) as u64
        };
        let mut budget = allowed.saturating_sub(self.sent).min(MAX_TICK_BYTES);
        let mut moved = false;
        while budget > 0 {
            // Assemble a batch of frames in the reused buffer and hand
            // them to the transport together (one vectored write /
            // syscall per batch instead of per frame).
            self.frame.clear();
            let mut batch_payload = 0u64;
            while budget > 0 && self.frame.len() < SEND_BATCH_BYTES {
                let len = (budget as usize).min(BLAST_CHUNK);
                append_frame(&mut self.frame, self.pattern, self.key, self.seq, len);
                self.seq += 1;
                batch_payload += len as u64;
                budget -= len as u64;
            }
            if let Err(err) = self.transport.send(now, &self.frame) {
                self.fail(err);
                return moved;
            }
            self.sent += batch_payload;
            self.counter.add(now, batch_payload);
            moved = true;
        }
        moved
    }

    fn fail(&mut self, err: TransportError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
        self.state = SourceState::Stopped;
    }
}

/// What a [`BlastParser`] surfaced from a chunk of stream bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlastEvent {
    /// A (re)binding hello: the channel now serves this control session.
    Hello(DataChannelHello),
    /// Payload bytes arrived: `bytes` total, of which `corrupt` did not
    /// match the pattern keystream.
    Data {
        /// Payload bytes delivered in this batch.
        bytes: u64,
        /// Of those, bytes that failed pattern verification.
        corrupt: u64,
    },
    /// A frame whose keyed integrity tag did not verify: a forgery by
    /// someone who knows the (public) hello nonce but not the channel
    /// key. Its payload is discarded, never credited.
    Forged {
        /// Payload bytes the forged frame declared (and the parser
        /// skipped).
        bytes: u64,
    },
    /// A frame whose tag verified but whose sequence number had
    /// already been passed: a replay of a captured frame (the tag
    /// binds key/nonce/seq/len, so a wire MITM can re-send old frames
    /// but not mint fresh sequence numbers). Discarded, never
    /// credited.
    Replayed {
        /// Payload bytes the replayed frame declared (and the parser
        /// skipped).
        bytes: u64,
    },
}

enum ParseState {
    /// Waiting for a tag byte (hello or blast header).
    Header,
    /// Mid-payload: `got` of the current frame's bytes consumed (the
    /// expected bytes live in the parser's reused buffer).
    Payload { got: usize },
    /// Draining the payload of a rejected frame (failed tag, or a
    /// replayed sequence number): `remaining` declared bytes are
    /// discarded without crediting.
    SkipForged { remaining: usize },
}

/// Incremental decoder for one data connection's byte stream: hellos
/// and pattern-verified blast frames, reassembled from arbitrary
/// chunks. The first [`BlastError`] poisons the parser (framing is
/// lost); callers drop the connection.
pub struct BlastParser {
    state: ParseState,
    buf: Vec<u8>,
    pattern: Option<BlastPattern>,
    /// Frame-tag key (see [`frame_tag`]); must match the sender's.
    key: u64,
    /// The next sequence number a tag-valid frame must be at or above;
    /// sources emit strictly increasing sequences, so anything below
    /// is a replayed capture. Reset when a hello re-binds the channel
    /// to a *different* nonce (pooled reuse); a same-nonce hello never
    /// rewinds the window, so replaying the original hello cannot
    /// reopen it.
    next_seq: u64,
    /// Reused expected-payload buffer for the frame being parsed
    /// (regenerating per frame would allocate on the hot path).
    expected: Vec<u8>,
    received: u64,
    corrupt: u64,
    forged: u64,
    replayed: u64,
    poisoned: Option<BlastError>,
    /// Optional process-global telemetry counters (see
    /// [`BlastCounters`]); `None` keeps the bare hot path.
    counters: Option<BlastCounters>,
}

impl Default for BlastParser {
    fn default() -> Self {
        BlastParser::new()
    }
}

impl BlastParser {
    /// A parser expecting a hello first.
    pub fn new() -> Self {
        BlastParser {
            state: ParseState::Header,
            buf: Vec::new(),
            pattern: None,
            key: 0,
            next_seq: 0,
            expected: Vec::new(),
            received: 0,
            corrupt: 0,
            forged: 0,
            replayed: 0,
            poisoned: None,
            counters: None,
        }
    }

    /// Keys the integrity-tag check (see [`frame_tag`]); frames whose
    /// tag does not verify under this key are rejected and counted.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = key;
        self
    }

    /// Streams this parser's byte accounting into shared telemetry
    /// counters (one relaxed fetch-add per parsed chunk or rejected
    /// frame — cheap enough for the blast hot path).
    #[must_use]
    pub fn with_counters(mut self, counters: BlastCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Total payload bytes consumed so far.
    pub fn received_total(&self) -> u64 {
        self.received
    }

    /// Total payload bytes that failed pattern verification.
    pub fn corrupt_total(&self) -> u64 {
        self.corrupt
    }

    /// Total declared payload bytes of frames whose keyed integrity tag
    /// failed verification (discarded, never credited).
    pub fn forged_total(&self) -> u64 {
        self.forged
    }

    /// Total declared payload bytes of tag-valid frames whose sequence
    /// number had already been passed (replayed captures; discarded,
    /// never credited).
    pub fn replayed_total(&self) -> u64 {
        self.replayed
    }

    /// Consumes `bytes`, returning the events they completed.
    ///
    /// # Errors
    /// The first framing error is sticky; every later call returns it.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<BlastEvent>, BlastError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        self.buf.extend_from_slice(bytes);
        let mut events = Vec::new();
        let mut batch_bytes = 0u64;
        let mut batch_corrupt = 0u64;
        loop {
            match &mut self.state {
                ParseState::Header => {
                    let Some(&tag) = self.buf.first() else { break };
                    match tag {
                        DATA_HELLO_TAG => {
                            if self.buf.len() < HELLO_LEN {
                                break;
                            }
                            let mut raw = [0u8; HELLO_LEN];
                            raw.copy_from_slice(&self.buf[..HELLO_LEN]);
                            self.buf.drain(..HELLO_LEN);
                            let hello = match DataChannelHello::decode(&raw) {
                                Ok(h) => h,
                                Err(e) => return Err(self.poison(e)),
                            };
                            // Only a *different* nonce rewinds the
                            // replay window: a pooled-reuse rebind is a
                            // fresh session, while a re-sent copy of
                            // the current hello (a replayed capture)
                            // must not reopen old sequence numbers.
                            if self.pattern.map(|p| p.nonce()) != Some(hello.nonce) {
                                self.next_seq = 0;
                            }
                            self.pattern = Some(BlastPattern::new(hello.nonce));
                            flush_data(&mut events, &mut batch_bytes, &mut batch_corrupt);
                            events.push(BlastEvent::Hello(hello));
                        }
                        BLAST_FRAME_TAG => {
                            if self.buf.len() < BLAST_HEADER_LEN {
                                break;
                            }
                            let Some(pattern) = self.pattern else {
                                return Err(self.poison(BlastError::MissingHello));
                            };
                            let seq =
                                u64::from_be_bytes(self.buf[1..9].try_into().expect("8 bytes"));
                            let len =
                                u32::from_be_bytes(self.buf[9..13].try_into().expect("4 bytes"));
                            let tag =
                                u64::from_be_bytes(self.buf[13..21].try_into().expect("8 bytes"));
                            if len as usize > MAX_BLAST_PAYLOAD {
                                return Err(self.poison(BlastError::OversizedFrame(len)));
                            }
                            self.buf.drain(..BLAST_HEADER_LEN);
                            if tag != frame_tag(self.key, pattern.nonce(), seq, len) {
                                // Forged: the sender knew the (public)
                                // nonce but not the channel key. Skip the
                                // declared payload so framing survives,
                                // count it, credit nothing. The window
                                // does not advance: a forged sequence
                                // number must not displace honest ones.
                                self.forged += u64::from(len);
                                if let Some(c) = &self.counters {
                                    c.forged.add(u64::from(len));
                                }
                                flush_data(&mut events, &mut batch_bytes, &mut batch_corrupt);
                                events.push(BlastEvent::Forged { bytes: u64::from(len) });
                                self.state = ParseState::SkipForged { remaining: len as usize };
                                continue;
                            }
                            if seq < self.next_seq {
                                // Tag-valid but already past: a wire
                                // MITM re-sending a captured frame (it
                                // cannot mint tags for fresh sequence
                                // numbers). Skip, count, credit nothing.
                                self.replayed += u64::from(len);
                                if let Some(c) = &self.counters {
                                    c.replayed.add(u64::from(len));
                                }
                                flush_data(&mut events, &mut batch_bytes, &mut batch_corrupt);
                                events.push(BlastEvent::Replayed { bytes: u64::from(len) });
                                self.state = ParseState::SkipForged { remaining: len as usize };
                                continue;
                            }
                            self.next_seq = seq + 1;
                            self.expected.resize(len as usize, 0);
                            pattern.fill(seq, &mut self.expected);
                            self.state = ParseState::Payload { got: 0 };
                        }
                        other => return Err(self.poison(BlastError::BadTag(other))),
                    }
                }
                ParseState::SkipForged { remaining } => {
                    if self.buf.is_empty() {
                        break;
                    }
                    let take = (*remaining).min(self.buf.len());
                    self.buf.drain(..take);
                    *remaining -= take;
                    if *remaining == 0 {
                        self.state = ParseState::Header;
                    }
                }
                ParseState::Payload { got } => {
                    if self.buf.is_empty() {
                        break;
                    }
                    let want = self.expected.len() - *got;
                    let take = want.min(self.buf.len());
                    let mismatches = self.buf[..take]
                        .iter()
                        .zip(&self.expected[*got..*got + take])
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                    self.buf.drain(..take);
                    *got += take;
                    batch_bytes += take as u64;
                    batch_corrupt += mismatches;
                    self.received += take as u64;
                    self.corrupt += mismatches;
                    if let Some(c) = &self.counters {
                        c.verified.add(take as u64 - mismatches);
                        c.corrupt.add(mismatches);
                    }
                    if *got == self.expected.len() {
                        self.state = ParseState::Header;
                    }
                }
            }
        }
        flush_data(&mut events, &mut batch_bytes, &mut batch_corrupt);
        Ok(events)
    }

    fn poison(&mut self, err: BlastError) -> BlastError {
        self.poisoned = Some(err);
        self.buf.clear();
        err
    }
}

fn flush_data(events: &mut Vec<BlastEvent>, bytes: &mut u64, corrupt: &mut u64) {
    if *bytes > 0 {
        events.push(BlastEvent::Data { bytes: *bytes, corrupt: *corrupt });
        *bytes = 0;
        *corrupt = 0;
    }
}

/// The receiving half of one data channel: a [`BlastParser`] bound to a
/// transport, with per-second received/corrupt counters on the caller's
/// clock. This is the in-process sink used by tests and benches; the
/// standalone measurer process drives a bare [`BlastParser`] so it can
/// aggregate counters across channels.
pub struct TrafficSink<T: Transport> {
    transport: T,
    parser: BlastParser,
    counter: ByteCounter,
    corrupt_counter: ByteCounter,
    hello: Option<DataChannelHello>,
    error: Option<TransportError>,
    /// Reused receive buffer ([`Transport::recv_into`]).
    rxbuf: Vec<u8>,
}

impl<T: Transport> TrafficSink<T> {
    /// A sink draining `transport`.
    pub fn new(transport: T) -> Self {
        TrafficSink {
            transport,
            parser: BlastParser::new(),
            counter: ByteCounter::new(),
            corrupt_counter: ByteCounter::new(),
            hello: None,
            error: None,
            rxbuf: Vec::new(),
        }
    }

    /// Keys the integrity-tag check of the underlying parser.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> Self {
        self.parser = std::mem::take(&mut self.parser).with_key(key);
        self
    }

    /// Streams the underlying parser's byte accounting into shared
    /// telemetry counters (see [`BlastParser::with_counters`]).
    #[must_use]
    pub fn with_counters(mut self, counters: BlastCounters) -> Self {
        self.parser = std::mem::take(&mut self.parser).with_counters(counters);
        self
    }

    /// Starts the per-second counting clock (the slot's Go instant).
    pub fn start(&mut self, now: SimTime) {
        self.counter.start(now);
        self.corrupt_counter.start(now);
    }

    /// Drains the transport once; returns `true` if bytes arrived.
    ///
    /// # Errors
    /// Returns the first **framing** error (sticky; the stream has lost
    /// sync). A *transport* failure is not an `Err` — the sink records
    /// it (see [`TrafficSink::transport_error`]) and later pumps return
    /// `Ok(false)`, because "the peer hung up" is the normal end of a
    /// blast channel, not a protocol violation.
    pub fn pump(&mut self, now: SimTime) -> Result<bool, BlastError> {
        if self.error.is_some() {
            return Ok(false);
        }
        self.counter.roll(now);
        self.corrupt_counter.roll(now);
        // Swap the reused buffer out so the parser can borrow `self`.
        let mut rx = std::mem::take(&mut self.rxbuf);
        let got = match self.transport.recv_into(now, &mut rx) {
            Ok(got) => got,
            Err(err) => {
                self.error = Some(err);
                self.rxbuf = rx;
                return Ok(false);
            }
        };
        if got == 0 {
            self.rxbuf = rx;
            return Ok(false);
        }
        let events = self.parser.push(&rx);
        self.rxbuf = rx;
        for event in events? {
            match event {
                BlastEvent::Hello(h) => self.hello = Some(h),
                BlastEvent::Data { bytes, corrupt } => {
                    if self.counter.is_running() {
                        self.counter.add(now, bytes);
                        self.corrupt_counter.add(now, corrupt);
                    }
                }
                // Forgeries and replays accrue on the parser's
                // counters only; neither is credited to the received
                // series.
                BlastEvent::Forged { .. } | BlastEvent::Replayed { .. } => {}
            }
        }
        Ok(true)
    }

    /// The most recent hello, once one arrived.
    pub fn hello(&self) -> Option<DataChannelHello> {
        self.hello
    }

    /// Total payload bytes received.
    pub fn received_total(&self) -> u64 {
        self.parser.received_total()
    }

    /// Total payload bytes failing pattern verification.
    pub fn corrupt_total(&self) -> u64 {
        self.parser.corrupt_total()
    }

    /// Total declared bytes of frames whose integrity tag failed.
    pub fn forged_total(&self) -> u64 {
        self.parser.forged_total()
    }

    /// Total declared bytes of tag-valid frames with replayed
    /// sequence numbers.
    pub fn replayed_total(&self) -> u64 {
        self.parser.replayed_total()
    }

    /// Received bytes per completed second since [`TrafficSink::start`].
    pub fn completed_seconds(&self) -> &[u64] {
        self.counter.completed()
    }

    /// The first transport error observed, if any.
    pub fn transport_error(&self) -> Option<TransportError> {
        self.error
    }

    /// The transport (fault tripping in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

/// The target relay's half of one echo data channel: verifies every
/// inbound payload byte against the pattern keystream (and the keyed
/// frame tag), then loops the **verified** bytes back to the measurer as
/// pattern-stamped frames of its own — the paper's echo, where the
/// capacity demonstration is the relay actually moving the bytes both
/// ways. Corrupt or forged inbound bytes are counted but never echoed,
/// so a garbage blast cannot inflate what the measurer gets back.
///
/// Sans-IO like everything else here: time is caller-injected, the
/// transport is the caller's, and the same echoer runs over the
/// simulated duplex (in-process examples, conformance tests) and a real
/// TCP connection inside the `flashflow-relay` process.
pub struct Echoer<T: Transport> {
    transport: T,
    parser: BlastParser,
    key: u64,
    /// Outbound pattern + greeting, bound by the first inbound hello.
    pattern: Option<BlastPattern>,
    hello: Option<DataChannelHello>,
    greeted: bool,
    /// Verified bytes received but not yet echoed back.
    pending: u64,
    seq: u64,
    echoed: u64,
    counter: ByteCounter,
    error: Option<TransportError>,
    /// Optional telemetry counter fed with every echoed payload byte.
    echoed_counter: Option<Counter>,
    /// Adversarial hook: echo keystream-violating garbage instead of
    /// the real pattern (a forging relay, for tests of the measurer's
    /// corrupt accounting).
    corrupt_echo: bool,
    /// Reused frame buffer, same rationale as [`TrafficSource`].
    frame: Vec<u8>,
    /// Reused receive buffer ([`Transport::recv_into`]): a pump must
    /// not allocate per drain at echo rates.
    rxbuf: Vec<u8>,
}

impl<T: Transport> Echoer<T> {
    /// An echoer serving one accepted data connection.
    pub fn new(transport: T) -> Self {
        Echoer {
            transport,
            parser: BlastParser::new(),
            key: 0,
            pattern: None,
            hello: None,
            greeted: false,
            pending: 0,
            seq: 0,
            echoed: 0,
            counter: ByteCounter::new(),
            error: None,
            echoed_counter: None,
            corrupt_echo: false,
            frame: Vec::with_capacity(BLAST_HEADER_LEN + BLAST_CHUNK),
            rxbuf: Vec::new(),
        }
    }

    /// Makes the echo payloads violate the keystream (an adversarial
    /// relay forging its echo): the measurer's verifying parser counts
    /// every such byte corrupt instead of crediting it.
    pub fn set_corrupt_echo(&mut self, corrupt: bool) {
        self.corrupt_echo = corrupt;
    }

    /// Keys both directions' integrity tags (see [`frame_tag`]): the
    /// inbound check and the tags on the echoed frames.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = key;
        self.parser = std::mem::take(&mut self.parser).with_key(key);
        self
    }

    /// Streams the inbound parser's byte accounting into shared
    /// telemetry counters and the echoed bytes into `echoed`.
    #[must_use]
    pub fn with_counters(mut self, counters: BlastCounters, echoed: Counter) -> Self {
        self.parser = std::mem::take(&mut self.parser).with_counters(counters);
        self.echoed_counter = Some(echoed);
        self
    }

    /// Starts the per-second echoed-byte clock.
    pub fn start(&mut self, now: SimTime) {
        self.counter.start(now);
    }

    /// The hello this channel is bound to, once one arrived.
    pub fn hello(&self) -> Option<DataChannelHello> {
        self.hello
    }

    /// Total payload bytes received (verified or not).
    pub fn received_total(&self) -> u64 {
        self.parser.received_total()
    }

    /// Total payload bytes failing pattern verification.
    pub fn corrupt_total(&self) -> u64 {
        self.parser.corrupt_total()
    }

    /// Total declared bytes of frames whose integrity tag failed.
    pub fn forged_total(&self) -> u64 {
        self.parser.forged_total()
    }

    /// Total declared bytes of tag-valid frames with replayed
    /// sequence numbers.
    pub fn replayed_total(&self) -> u64 {
        self.parser.replayed_total()
    }

    /// Total payload bytes echoed back so far.
    pub fn echoed_total(&self) -> u64 {
        self.echoed
    }

    /// Verified bytes received but not yet echoed (backlog).
    pub fn pending_echo(&self) -> u64 {
        self.pending
    }

    /// Echoed bytes per completed second since [`Echoer::start`].
    pub fn completed_seconds(&self) -> &[u64] {
        self.counter.completed()
    }

    /// The first transport error observed, if any.
    pub fn transport_error(&self) -> Option<TransportError> {
        self.error
    }

    /// The transport (flush nudges, fault tripping in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Drains the transport once and echoes what the new bytes
    /// verified; returns `true` if bytes moved in either direction.
    ///
    /// # Errors
    /// Returns the first **framing** error (sticky). A transport
    /// failure is recorded (see [`Echoer::transport_error`]) and later
    /// pumps return `Ok(false)` — the measurer hanging up is the normal
    /// end of an echo channel.
    pub fn pump(&mut self, now: SimTime) -> Result<bool, BlastError> {
        if self.error.is_some() {
            return Ok(false);
        }
        // Swap the reused buffer out so `inject` can borrow `self`.
        let mut rx = std::mem::take(&mut self.rxbuf);
        let got = match self.transport.recv_into(now, &mut rx) {
            Ok(got) => got,
            Err(err) => {
                self.error = Some(err);
                self.rxbuf = rx;
                return Ok(false);
            }
        };
        let injected = self.inject(now, &rx);
        self.rxbuf = rx;
        let mut moved = injected?;
        moved |= got > 0;
        Ok(moved)
    }

    /// Feeds bytes that arrived outside the echoer's own `recv` (a
    /// serving process reads a connection's first bytes itself to
    /// classify and bind it) and echoes what they verified.
    ///
    /// # Errors
    /// Same contract as [`Echoer::pump`].
    pub fn inject(&mut self, now: SimTime, bytes: &[u8]) -> Result<bool, BlastError> {
        self.counter.roll(now);
        if !bytes.is_empty() {
            for event in self.parser.push(bytes)? {
                match event {
                    BlastEvent::Hello(h) => {
                        // Mirror the parser's replay rule: only a hello
                        // for a *different* nonce restarts the stream
                        // (pooled reuse, fresh sequence space). A
                        // re-sent copy of the current hello — a MITM
                        // replaying a captured packet — must not reset
                        // the outbound sequence window (which would
                        // make every later echoed frame look replayed
                        // to the measurer) or drop the pending backlog.
                        if self.hello.map(|cur| cur.nonce) != Some(h.nonce) {
                            self.greeted = false;
                            self.seq = 0;
                            self.pending = 0;
                        }
                        self.hello = Some(h);
                        self.pattern = Some(BlastPattern::new(h.nonce));
                    }
                    BlastEvent::Data { bytes, corrupt } => {
                        // Echo exactly the bytes that verified.
                        self.pending += bytes - corrupt;
                    }
                    BlastEvent::Forged { .. } | BlastEvent::Replayed { .. } => {}
                }
            }
        }
        Ok(self.echo(now))
    }

    /// Writes the echo backlog out (hello first, then pattern-stamped
    /// frames), bounded by [`MAX_TICK_BYTES`] per call and paused
    /// entirely while the transport's send backlog sits above
    /// [`ECHO_BACKLOG_HIGH_WATER`] — a measurer that never reads its
    /// return stream stalls its own echo instead of growing relay
    /// memory.
    fn echo(&mut self, now: SimTime) -> bool {
        let Some(pattern) = self.pattern else { return false };
        let hello = self.hello.expect("pattern implies hello");
        let mut moved = false;
        if !self.greeted {
            match self.transport.send(now, &hello.encode()) {
                Ok(()) => {
                    self.greeted = true;
                    moved = true;
                }
                Err(err) => {
                    self.error = Some(err);
                    return moved;
                }
            }
        }
        if self.transport.backlog() >= ECHO_BACKLOG_HIGH_WATER {
            // Nudge the queued outbox toward the kernel, emit nothing.
            let _ = self.transport.send(now, &[]);
            return moved;
        }
        let mut budget = self.pending.min(MAX_TICK_BYTES);
        while budget > 0 {
            // Batch frames into the reused buffer, one transport send
            // (one vectored write) per batch — see [`SEND_BATCH_BYTES`].
            self.frame.clear();
            let mut batch_payload = 0u64;
            while budget > 0 && self.frame.len() < SEND_BATCH_BYTES {
                let len = (budget as usize).min(BLAST_CHUNK);
                let frame_start = self.frame.len();
                append_frame(&mut self.frame, pattern, self.key, self.seq, len);
                if self.corrupt_echo {
                    for b in &mut self.frame[frame_start + BLAST_HEADER_LEN..] {
                        *b ^= 0xFF;
                    }
                }
                self.seq += 1;
                batch_payload += len as u64;
                budget -= len as u64;
            }
            if let Err(err) = self.transport.send(now, &self.frame) {
                self.error = Some(err);
                return moved;
            }
            self.echoed += batch_payload;
            if let Some(c) = &self.echoed_counter {
                c.add(batch_payload);
            }
            self.pending -= batch_payload;
            if self.counter.is_running() {
                self.counter.add(now, batch_payload);
            }
            moved = true;
        }
        moved
    }
}

/// The target relay's client traffic alongside a measurement: an
/// offered background rate, admitted up to a cap while the measurement
/// window runs (the paper caps client traffic at the `r` fraction of
/// capacity during a slot, so the echo gets the rest), accounted per
/// second on the caller's clock.
///
/// The *admitted* series is what an honest relay reports as its
/// `bg_bytes` column; a lying relay reports something else, which is
/// exactly what the coordinator's plausibility check is for.
#[derive(Debug, Clone)]
pub struct BackgroundMeter {
    /// Offered client traffic in bytes per second.
    offered: u64,
    /// Admission cap in bytes per second while set (the measurement
    /// window); `None` admits the full offered rate.
    cap: Option<u64>,
    counter: ByteCounter,
    /// Fractional-byte carry between ticks.
    carry: f64,
    last: Option<SimTime>,
}

impl BackgroundMeter {
    /// A meter for `offered` bytes/second of client traffic.
    pub fn new(offered: u64) -> Self {
        BackgroundMeter { offered, cap: None, counter: ByteCounter::new(), carry: 0.0, last: None }
    }

    /// The offered client rate.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Caps admission at `bytes_per_sec` (the measurement window's
    /// allowance); `0` means uncapped.
    pub fn set_cap(&mut self, bytes_per_sec: u64) {
        self.cap = if bytes_per_sec == 0 { None } else { Some(bytes_per_sec) };
    }

    /// The rate actually admitted right now.
    pub fn admitted_rate(&self) -> u64 {
        self.cap.map_or(self.offered, |cap| self.offered.min(cap))
    }

    /// Starts the per-second accounting clock.
    pub fn start(&mut self, now: SimTime) {
        self.counter.start(now);
        self.carry = 0.0;
        self.last = Some(now);
    }

    /// Accrues admitted bytes for the time elapsed since the last tick.
    pub fn tick(&mut self, now: SimTime) {
        let Some(last) = self.last else { return };
        let dt = now.saturating_duration_since(last).as_secs_f64();
        self.carry += self.admitted_rate() as f64 * dt;
        let whole = self.carry.floor();
        if whole > 0.0 {
            // Credited at the interval's *start*, so bytes accrued over
            // a span ending exactly on a second boundary land in the
            // second they were admitted in, not the next one.
            self.counter.add(last, whole as u64);
            self.carry -= whole;
        }
        self.counter.roll(now);
        self.last = Some(now);
    }

    /// Total admitted bytes since [`BackgroundMeter::start`].
    pub fn admitted_total(&self) -> u64 {
        self.counter.total()
    }

    /// Admitted bytes per completed second.
    pub fn completed_seconds(&self) -> &[u64] {
        self.counter.completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Duplex;
    use flashflow_simnet::time::SimDuration;

    #[test]
    fn hello_round_trips_and_rejects_garbage() {
        let hello = DataChannelHello { nonce: 0xFEED_F00D, channel: 3 };
        let raw = hello.encode();
        assert_eq!(DataChannelHello::decode(&raw).unwrap(), hello);

        let mut bad_tag = raw;
        bad_tag[0] = 0x00;
        assert_eq!(DataChannelHello::decode(&bad_tag), Err(BlastError::BadTag(0x00)));
        let mut bad_version = raw;
        bad_version[1] = 9;
        assert_eq!(DataChannelHello::decode(&bad_version), Err(BlastError::BadVersion(9)));
    }

    #[test]
    fn byte_counter_finalizes_whole_seconds_only() {
        let mut c = ByteCounter::new();
        c.start(SimTime::from_secs(10));
        c.add(SimTime::from_secs_f64(10.5), 100);
        assert!(c.completed().is_empty(), "partial second not reported");
        c.add(SimTime::from_secs_f64(11.2), 50);
        assert_eq!(c.completed(), &[100]);
        // A jump across seconds zero-fills the gap.
        c.roll(SimTime::from_secs_f64(14.0));
        assert_eq!(c.completed(), &[100, 50, 0, 0]);
        assert_eq!(c.total(), 150);
    }

    #[test]
    fn source_to_sink_stream_verifies_clean_over_chunked_link() {
        // 3-byte re-chunking: every hello and frame crosses reassembly.
        let (a, b) = Duplex::new(SimDuration::ZERO, 3).into_endpoints();
        let mut src = TrafficSource::new(a, 0xABCD, 0);
        src.set_rate_cap(40_000);
        let mut sink = TrafficSink::new(b);

        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        for tick in 0..=30u64 {
            let now = SimTime::from_secs_f64(tick as f64 * 0.1);
            src.pump(now);
            sink.pump(now).expect("clean stream");
        }
        let now = SimTime::from_secs(3);
        src.stop(now);
        sink.pump(now).expect("clean stream");

        assert_eq!(sink.hello(), Some(DataChannelHello { nonce: 0xABCD, channel: 0 }));
        assert!(src.sent_total() > 0);
        assert_eq!(sink.received_total(), src.sent_total(), "every payload byte arrived");
        assert_eq!(sink.corrupt_total(), 0, "pattern verified");
        // Pacing: roughly rate_cap per completed second on both ends.
        for (ix, &sec) in src.completed_seconds().iter().enumerate() {
            assert!((30_000..=50_000).contains(&sec), "source second {ix} sent {sec} B (cap 40k)");
        }
        assert_eq!(src.completed_seconds().len(), 3);
    }

    #[test]
    fn corrupt_bytes_are_counted_not_trusted() {
        let (a, b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 7, 0);
        src.set_rate_cap(1_000);
        let mut sink = TrafficSink::new(b);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));

        // Flip bytes in flight by re-sending a doctored copy: build a
        // frame with a *valid* tag (the attacker here is the unkeyed
        // default, key 0) whose payload does not match the keystream.
        let mut frame = Vec::new();
        frame.push(BLAST_FRAME_TAG);
        frame.extend_from_slice(&99u64.to_be_bytes());
        frame.extend_from_slice(&8u32.to_be_bytes());
        frame.extend_from_slice(&frame_tag(0, 7, 99, 8).to_be_bytes());
        frame.extend_from_slice(&[0xFF; 8]);
        src.transport_mut().send(SimTime::from_secs(1), &frame).unwrap();

        sink.pump(SimTime::from_secs(1)).expect("framing intact");
        assert!(sink.corrupt_total() >= 7, "doctored payload flagged: {}", sink.corrupt_total());
        assert!(sink.corrupt_total() < sink.received_total(), "honest bytes still counted");
    }

    #[test]
    fn forged_frames_are_rejected_and_counted_under_a_key() {
        // Honest ends share a secret channel key; the forger knows the
        // (public) nonce — enough to fake the keystream — but not the
        // key, so its frames fail the tag and credit nothing.
        let key = secret_channel_key(0xDEAD_5EC2);
        let nonce = binding_nonce(0xDEAD_5EC2);
        let (a, b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, nonce, 0).with_key(key);
        src.set_rate_cap(2_000);
        let mut sink = TrafficSink::new(b).with_key(key);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));
        sink.pump(SimTime::from_secs(1)).unwrap();
        let honest = sink.received_total();
        assert!(honest > 0);
        assert_eq!(sink.forged_total(), 0);

        // The MITM forges a perfectly pattern-correct frame, tagged with
        // the only key it has: the public nonce.
        let seq = 1_000u64;
        let len = 64u32;
        let mut forged = Vec::new();
        forged.push(BLAST_FRAME_TAG);
        forged.extend_from_slice(&seq.to_be_bytes());
        forged.extend_from_slice(&len.to_be_bytes());
        forged.extend_from_slice(&frame_tag(nonce, nonce, seq, len).to_be_bytes());
        let mut payload = vec![0u8; len as usize];
        BlastPattern::new(nonce).fill(seq, &mut payload);
        forged.extend_from_slice(&payload);
        src.transport_mut().send(SimTime::from_secs(1), &forged).unwrap();
        sink.pump(SimTime::from_secs(1)).expect("framing survives a forgery");
        assert_eq!(sink.forged_total(), u64::from(len), "forgery counted");
        assert_eq!(sink.received_total(), honest, "forged payload never credited");
        assert_eq!(sink.corrupt_total(), 0);

        // And the stream keeps working after the skipped frame.
        src.pump(SimTime::from_secs(2));
        sink.pump(SimTime::from_secs(2)).unwrap();
        assert!(sink.received_total() > honest, "honest frames resume after the forgery");
    }

    #[test]
    fn replayed_frames_are_rejected_and_counted() {
        // A wire MITM cannot mint tags, but it can re-send captured
        // frames. The sequence window rejects them: each (seq, tag)
        // pair is credited at most once.
        let key = secret_channel_key(0x4E91);
        let nonce = binding_nonce(0x4E91);
        let (a, b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, nonce, 0).with_key(key);
        src.set_rate_cap(2_000);
        let mut sink = TrafficSink::new(b).with_key(key);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));
        sink.pump(SimTime::from_secs(1)).unwrap();
        let honest = sink.received_total();
        assert!(honest > 0);

        // The MITM captures and re-sends frame 0 — header and
        // pattern-correct payload, tag perfectly valid.
        let len = honest.min(2_000) as u32;
        let mut replay = Vec::new();
        replay.push(BLAST_FRAME_TAG);
        replay.extend_from_slice(&0u64.to_be_bytes());
        replay.extend_from_slice(&len.to_be_bytes());
        replay.extend_from_slice(&frame_tag(key, nonce, 0, len).to_be_bytes());
        let mut payload = vec![0u8; len as usize];
        BlastPattern::new(nonce).fill(0, &mut payload);
        replay.extend_from_slice(&payload);
        for _ in 0..5 {
            src.transport_mut().send(SimTime::from_secs(1), &replay).unwrap();
        }
        sink.pump(SimTime::from_secs(1)).expect("framing survives replays");
        assert_eq!(sink.received_total(), honest, "replayed bytes never credited");
        assert_eq!(sink.replayed_total(), 5 * u64::from(len), "every replay counted");
        assert_eq!(sink.forged_total(), 0);

        // Honest traffic continues past the replays.
        src.pump(SimTime::from_secs(2));
        sink.pump(SimTime::from_secs(2)).unwrap();
        assert!(sink.received_total() > honest);
        assert_eq!(sink.corrupt_total(), 0);

        // Re-sending the captured *hello* must not rewind the window.
        let hello = DataChannelHello { nonce, channel: 0 }.encode();
        src.transport_mut().send(SimTime::from_secs(2), &hello).unwrap();
        src.transport_mut().send(SimTime::from_secs(2), &replay).unwrap();
        let before = sink.received_total();
        sink.pump(SimTime::from_secs(2)).unwrap();
        assert_eq!(sink.received_total(), before, "hello replay cannot reopen old sequences");
        assert_eq!(sink.replayed_total(), 6 * u64::from(len));
    }

    #[test]
    fn mismatched_keys_reject_everything() {
        let (a, b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 42, 0).with_key(111);
        src.set_rate_cap(1_000);
        let mut sink = TrafficSink::new(b).with_key(222);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));
        sink.pump(SimTime::from_secs(1)).unwrap();
        assert_eq!(sink.received_total(), 0);
        assert_eq!(sink.forged_total(), src.sent_total());
    }

    #[test]
    fn echoer_loops_verified_bytes_back_over_chunked_link() {
        // Measurer side: source + return-stream parser on one wire;
        // relay side: the echoer. 3-byte chunks cross reassembly on
        // both directions.
        let secret = 0x5EC2_E700;
        let key = secret_channel_key(secret);
        let nonce = binding_nonce(secret);
        let (m_end, r_end) = Duplex::new(SimDuration::ZERO, 3).into_endpoints();
        let mut src = TrafficSource::new(m_end, nonce, 0).with_key(key);
        src.set_rate_cap(30_000);
        let mut echo = Echoer::new(r_end).with_key(key);
        let mut back = BlastParser::new().with_key(key);

        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        echo.start(SimTime::ZERO);
        let mut echoed_back = 0u64;
        for tick in 0..=40u64 {
            let now = SimTime::from_secs_f64(tick as f64 * 0.1);
            src.pump(now);
            echo.pump(now).expect("clean inbound stream");
            let bytes = src.transport_mut().recv(now).expect("return stream open");
            for ev in back.push(&bytes).expect("clean return stream") {
                if let BlastEvent::Data { bytes, corrupt } = ev {
                    assert_eq!(corrupt, 0, "echo must verify");
                    echoed_back += bytes;
                }
            }
        }
        assert_eq!(echo.hello(), Some(DataChannelHello { nonce, channel: 0 }));
        assert!(src.sent_total() > 0);
        assert_eq!(echo.received_total(), src.sent_total(), "everything arrived at the relay");
        assert_eq!(echo.corrupt_total(), 0);
        assert_eq!(echo.echoed_total() + echo.pending_echo(), echo.received_total());
        assert_eq!(echoed_back, echo.echoed_total(), "everything echoed arrived back verified");
        assert!(echoed_back > 0);
    }

    #[test]
    fn replayed_hello_does_not_reset_the_echoers_stream() {
        let (m_end, r_end) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(m_end, 5, 0);
        src.set_rate_cap(1_000);
        let mut echo = Echoer::new(r_end);
        let mut back = BlastParser::new();
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        echo.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));
        echo.pump(SimTime::from_secs(1)).unwrap();
        back.push(&src.transport_mut().recv(SimTime::from_secs(1)).unwrap()).unwrap();
        let verified = back.received_total() - back.corrupt_total();
        assert!(verified > 0);

        // A MITM re-sends the captured hello toward the relay...
        let hello = DataChannelHello { nonce: 5, channel: 0 }.encode();
        src.transport_mut().send(SimTime::from_secs(1), &hello).unwrap();
        echo.pump(SimTime::from_secs(1)).unwrap();
        // ...and the echo stream must continue unbroken: later frames
        // keep their sequence numbers and verify at the measurer.
        src.pump(SimTime::from_secs(2));
        echo.pump(SimTime::from_secs(2)).unwrap();
        back.push(&src.transport_mut().recv(SimTime::from_secs(2)).unwrap()).unwrap();
        assert!(back.received_total() - back.corrupt_total() > verified);
        assert_eq!(back.replayed_total(), 0, "honest echo misread as replayed");
        assert_eq!(back.corrupt_total(), 0);
        assert_eq!(echo.echoed_total() + echo.pending_echo(), echo.received_total());
    }

    #[test]
    fn echoer_never_echoes_corrupt_bytes() {
        let (m_end, r_end) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(m_end, 9, 0);
        src.set_rate_cap(1_000);
        let mut echo = Echoer::new(r_end);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        echo.start(SimTime::ZERO);
        src.pump(SimTime::from_secs(1));
        // A garbage-payload frame with a valid tag: counted corrupt,
        // not echoed.
        let mut frame = Vec::new();
        frame.push(BLAST_FRAME_TAG);
        frame.extend_from_slice(&77u64.to_be_bytes());
        frame.extend_from_slice(&16u32.to_be_bytes());
        frame.extend_from_slice(&frame_tag(0, 9, 77, 16).to_be_bytes());
        frame.extend_from_slice(&[0xEE; 16]);
        src.transport_mut().send(SimTime::from_secs(1), &frame).unwrap();
        echo.pump(SimTime::from_secs(1)).expect("framing intact");
        while echo.pending_echo() > 0 {
            echo.pump(SimTime::from_secs(1)).expect("drain");
        }
        assert!(echo.corrupt_total() >= 15);
        assert_eq!(
            echo.echoed_total(),
            echo.received_total() - echo.corrupt_total(),
            "only verified bytes loop back"
        );
    }

    #[test]
    fn background_meter_caps_admission_during_the_window() {
        let mut meter = BackgroundMeter::new(10_000);
        assert_eq!(meter.admitted_rate(), 10_000, "uncapped admits the offered rate");
        meter.set_cap(4_000);
        assert_eq!(meter.admitted_rate(), 4_000);
        meter.start(SimTime::ZERO);
        for tick in 1..=30u64 {
            meter.tick(SimTime::from_secs_f64(tick as f64 * 0.1));
        }
        assert_eq!(meter.completed_seconds().len(), 3);
        for (ix, &sec) in meter.completed_seconds().iter().enumerate() {
            assert!((3_998..=4_002).contains(&sec), "capped second {ix} admitted {sec}");
        }
        // Cap above the offer: the offer is the binding constraint.
        meter.set_cap(50_000);
        assert_eq!(meter.admitted_rate(), 10_000);
        // Cap zero = uncapped.
        meter.set_cap(0);
        assert_eq!(meter.admitted_rate(), 10_000);
    }

    #[test]
    fn binding_nonce_and_keys_are_stable_and_distinct() {
        let secret = 0xABCD_EF01_2345_6789;
        assert_eq!(binding_nonce(secret), binding_nonce(secret));
        assert_ne!(binding_nonce(secret), secret, "nonce is not the secret itself");
        assert_ne!(binding_nonce(secret), secret_channel_key(secret));
        assert_ne!(binding_nonce(1), binding_nonce(2));
        let t1 = [1u8; crate::msg::AUTH_TOKEN_LEN];
        let t2 = [2u8; crate::msg::AUTH_TOKEN_LEN];
        assert_ne!(channel_key(&t1), channel_key(&t2));
        assert_eq!(channel_key(&t1), channel_key(&t1));
    }

    #[test]
    fn blast_before_hello_poisons_the_parser() {
        let mut parser = BlastParser::new();
        let mut frame = vec![BLAST_FRAME_TAG];
        frame.extend_from_slice(&0u64.to_be_bytes());
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(&frame_tag(0, 0, 0, 4).to_be_bytes());
        frame.extend_from_slice(&[0; 4]);
        assert_eq!(parser.push(&frame), Err(BlastError::MissingHello));
        // Sticky.
        assert_eq!(parser.push(&[]), Err(BlastError::MissingHello));
    }

    #[test]
    fn rebinding_hello_switches_the_pattern_mid_stream() {
        // Session 1 blasts, then a new hello rebinds the channel to
        // session 2 — the pooled-connection reuse path.
        let (a1, b) = Duplex::loopback().into_endpoints();
        let mut sink = TrafficSink::new(b);
        let mut src1 = TrafficSource::new(a1, 111, 0);
        src1.set_rate_cap(1_000);
        src1.greet(SimTime::ZERO);
        src1.start(SimTime::ZERO);
        sink.start(SimTime::ZERO);
        src1.pump(SimTime::from_secs(1));
        sink.pump(SimTime::from_secs(1)).unwrap();
        let after_first = sink.received_total();
        assert!(after_first > 0);
        assert_eq!(sink.corrupt_total(), 0);

        // Second session reuses the same wire with a different nonce.
        let mut src2 = TrafficSource::new(src1.into_transport(), 222, 0);
        src2.set_rate_cap(1_000);
        src2.greet(SimTime::from_secs(1));
        src2.start(SimTime::from_secs(1));
        src2.pump(SimTime::from_secs(2));
        sink.pump(SimTime::from_secs(2)).unwrap();
        assert_eq!(sink.hello(), Some(DataChannelHello { nonce: 222, channel: 0 }));
        assert!(sink.received_total() > after_first);
        assert_eq!(sink.corrupt_total(), 0, "new pattern verified after rebind");
    }

    #[test]
    fn uncapped_pump_is_bounded_per_tick() {
        let (a, _b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 1, 0);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        src.pump(SimTime::ZERO);
        assert_eq!(src.sent_total(), MAX_TICK_BYTES, "one tick, one budget");
    }

    #[test]
    fn transport_failure_stops_the_source() {
        let (a, mut b) = Duplex::loopback().into_endpoints();
        let mut src = TrafficSource::new(a, 1, 0);
        src.set_rate_cap(1_000);
        src.greet(SimTime::ZERO);
        src.start(SimTime::ZERO);
        b.close();
        src.pump(SimTime::from_secs(1));
        assert_eq!(src.state(), SourceState::Stopped);
        assert!(src.error().is_some());
    }
}
