//! Length-prefixed, versioned binary framing for [`Msg`].
//!
//! A frame on the wire is:
//!
//! ```text
//! +----------------+---------+---------+------------------+
//! | length: u32 BE | version | type u8 | body (length-2 B)|
//! +----------------+---------+---------+------------------+
//! ```
//!
//! where `length` counts everything after itself (version byte, type
//! byte, body). Integers in bodies are big-endian. The decoder is
//! incremental — bytes arrive in arbitrary chunks and frames are
//! reassembled — and total: any byte sequence either yields messages or
//! a typed [`WireError`], never a panic.

use crate::msg::{
    AbortReason, MeasureSpec, Msg, MsgType, PeerRole, TargetEndpoint, AUTH_TOKEN_LEN,
    FINGERPRINT_LEN, PROTOCOL_VERSION,
};

/// Upper bound on the length prefix. The largest legitimate frame
/// (`MeasureCmd`) is 60 bytes of payload; anything near the cap is
/// garbage or an attack, and rejecting it bounds decoder memory.
pub const MAX_FRAME_LEN: usize = 256;

/// Bytes of the length prefix.
pub const LEN_PREFIX: usize = 4;

/// Everything that can be wrong with bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The frame declared a payload too short to hold version + type.
    Undersized {
        /// Declared payload length.
        len: usize,
    },
    /// The version byte is not [`PROTOCOL_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The type byte names no known message.
    UnknownType(u8),
    /// The body is shorter than its type requires.
    Truncated {
        /// Message type being decoded.
        msg: &'static str,
        /// Bytes the decode had consumed, plus the read that failed
        /// (a lower bound on the layout's full size).
        needed: usize,
        /// Bytes present.
        have: usize,
    },
    /// The body is longer than its type requires.
    TrailingBytes {
        /// Message type being decoded.
        msg: &'static str,
        /// Unconsumed byte count.
        extra: usize,
    },
    /// An enum field carries an unassigned value.
    BadEnumValue {
        /// Which field.
        field: &'static str,
        /// The byte received.
        value: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
            WireError::Undersized { len } => {
                write!(f, "frame length {len} cannot hold version and type")
            }
            WireError::BadVersion { got } => {
                write!(f, "protocol version {got} (expected {PROTOCOL_VERSION})")
            }
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::Truncated { msg, needed, have } => {
                write!(f, "{msg} body truncated: needed {needed} bytes, have {have}")
            }
            WireError::TrailingBytes { msg, extra } => {
                write!(f, "{msg} body has {extra} trailing bytes")
            }
            WireError::BadEnumValue { field, value } => {
                write!(f, "invalid value {value} for {field}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one message as a complete frame (length prefix included).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut body: Vec<u8> = Vec::with_capacity(64);
    // Reserve the prefix; filled in at the end.
    body.extend_from_slice(&[0u8; LEN_PREFIX]);
    body.push(PROTOCOL_VERSION);
    match msg {
        Msg::Auth { token, role, nonce } => {
            body.push(MsgType::Auth as u8);
            body.extend_from_slice(token);
            body.push(*role as u8);
            body.extend_from_slice(&nonce.to_be_bytes());
        }
        Msg::AuthOk { session, nonce } => {
            body.push(MsgType::AuthOk as u8);
            body.extend_from_slice(&session.to_be_bytes());
            body.extend_from_slice(&nonce.to_be_bytes());
        }
        Msg::MeasureCmd(spec) => {
            body.push(MsgType::MeasureCmd as u8);
            body.extend_from_slice(&spec.relay_fp);
            body.extend_from_slice(&spec.slot_secs.to_be_bytes());
            body.extend_from_slice(&spec.sockets.to_be_bytes());
            body.extend_from_slice(&spec.rate_cap.to_be_bytes());
            body.extend_from_slice(&spec.target.ip);
            body.extend_from_slice(&spec.target.port.to_be_bytes());
            body.extend_from_slice(&spec.measurement_secret.to_be_bytes());
            body.extend_from_slice(&spec.trace_id.to_be_bytes());
        }
        Msg::Ready => body.push(MsgType::Ready as u8),
        Msg::Go => body.push(MsgType::Go as u8),
        Msg::SecondReport { second, bg_bytes, measured_bytes } => {
            body.push(MsgType::SecondReport as u8);
            body.extend_from_slice(&second.to_be_bytes());
            body.extend_from_slice(&bg_bytes.to_be_bytes());
            body.extend_from_slice(&measured_bytes.to_be_bytes());
        }
        Msg::SlotDone => body.push(MsgType::SlotDone as u8),
        Msg::Abort { reason } => {
            body.push(MsgType::Abort as u8);
            body.push(*reason as u8);
        }
        Msg::Ping { probe } => {
            body.push(MsgType::Ping as u8);
            body.extend_from_slice(&probe.to_be_bytes());
        }
        Msg::Pong { probe } => {
            body.push(MsgType::Pong as u8);
            body.extend_from_slice(&probe.to_be_bytes());
        }
        Msg::Resume { token, role, nonce_prior, nonce, trace_id } => {
            body.push(MsgType::Resume as u8);
            body.extend_from_slice(token);
            body.push(*role as u8);
            body.extend_from_slice(&nonce_prior.to_be_bytes());
            body.extend_from_slice(&nonce.to_be_bytes());
            body.extend_from_slice(&trace_id.to_be_bytes());
        }
    }
    let payload_len = (body.len() - LEN_PREFIX) as u32;
    body[..LEN_PREFIX].copy_from_slice(&payload_len.to_be_bytes());
    body
}

/// A cursor over a message body enforcing exact consumption.
struct Body<'a> {
    msg: &'static str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn new(msg: &'static str, bytes: &'a [u8]) -> Self {
        Body { msg, bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated {
                msg: self.msg,
                needed: self.pos + n,
                have: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::TrailingBytes {
                msg: self.msg,
                extra: self.bytes.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Decodes one frame payload (the bytes after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Msg, WireError> {
    if payload.len() < 2 {
        return Err(WireError::Undersized { len: payload.len() });
    }
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let ty = MsgType::from_u8(payload[1]).ok_or(WireError::UnknownType(payload[1]))?;
    let body = &payload[2..];
    let msg = match ty {
        MsgType::Auth => {
            let mut b = Body::new("Auth", body);
            let mut token = [0u8; AUTH_TOKEN_LEN];
            token.copy_from_slice(b.take(AUTH_TOKEN_LEN)?);
            let role_byte = b.u8()?;
            let role = PeerRole::from_u8(role_byte)
                .ok_or(WireError::BadEnumValue { field: "Auth.role", value: role_byte })?;
            let nonce = b.u64()?;
            b.finish()?;
            Msg::Auth { token, role, nonce }
        }
        MsgType::AuthOk => {
            let mut b = Body::new("AuthOk", body);
            let session = b.u64()?;
            let nonce = b.u64()?;
            b.finish()?;
            Msg::AuthOk { session, nonce }
        }
        MsgType::MeasureCmd => {
            let mut b = Body::new("MeasureCmd", body);
            let mut relay_fp = [0u8; FINGERPRINT_LEN];
            relay_fp.copy_from_slice(b.take(FINGERPRINT_LEN)?);
            let slot_secs = b.u32()?;
            let sockets = b.u32()?;
            let rate_cap = b.u64()?;
            let mut ip = [0u8; 4];
            ip.copy_from_slice(b.take(4)?);
            let port = u16::from_be_bytes(b.take(2)?.try_into().expect("2 bytes"));
            let measurement_secret = b.u64()?;
            let trace_id = b.u64()?;
            b.finish()?;
            Msg::MeasureCmd(MeasureSpec {
                relay_fp,
                slot_secs,
                sockets,
                rate_cap,
                target: TargetEndpoint { ip, port },
                measurement_secret,
                trace_id,
            })
        }
        MsgType::Ready => {
            Body::new("Ready", body).finish()?;
            Msg::Ready
        }
        MsgType::Go => {
            Body::new("Go", body).finish()?;
            Msg::Go
        }
        MsgType::SecondReport => {
            let mut b = Body::new("SecondReport", body);
            let second = b.u32()?;
            let bg_bytes = b.u64()?;
            let measured_bytes = b.u64()?;
            b.finish()?;
            Msg::SecondReport { second, bg_bytes, measured_bytes }
        }
        MsgType::SlotDone => {
            Body::new("SlotDone", body).finish()?;
            Msg::SlotDone
        }
        MsgType::Abort => {
            let mut b = Body::new("Abort", body);
            let code = b.u8()?;
            let reason = AbortReason::from_u8(code)
                .ok_or(WireError::BadEnumValue { field: "Abort.reason", value: code })?;
            b.finish()?;
            Msg::Abort { reason }
        }
        MsgType::Ping => {
            let mut b = Body::new("Ping", body);
            let probe = b.u64()?;
            b.finish()?;
            Msg::Ping { probe }
        }
        MsgType::Pong => {
            let mut b = Body::new("Pong", body);
            let probe = b.u64()?;
            b.finish()?;
            Msg::Pong { probe }
        }
        MsgType::Resume => {
            let mut b = Body::new("Resume", body);
            let mut token = [0u8; AUTH_TOKEN_LEN];
            token.copy_from_slice(b.take(AUTH_TOKEN_LEN)?);
            let role_byte = b.u8()?;
            let role = PeerRole::from_u8(role_byte)
                .ok_or(WireError::BadEnumValue { field: "Resume.role", value: role_byte })?;
            let nonce_prior = b.u64()?;
            let nonce = b.u64()?;
            let trace_id = b.u64()?;
            b.finish()?;
            Msg::Resume { token, role, nonce_prior, nonce, trace_id }
        }
    };
    Ok(msg)
}

/// Incremental frame decoder: feed arbitrary chunks, pop whole messages.
///
/// After the first [`WireError`] the decoder is *poisoned* — the stream
/// has lost framing and every later call returns the same error. Sessions
/// treat that as a fatal protocol violation.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are
    /// needed, or the (sticky) framing error.
    pub fn next_msg(&mut self) -> Result<Option<Msg>, WireError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        if self.buf.len() < LEN_PREFIX {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(self.poison(WireError::Oversized { len }));
        }
        if len < 2 {
            return Err(self.poison(WireError::Undersized { len }));
        }
        if self.buf.len() < LEN_PREFIX + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf[LEN_PREFIX..LEN_PREFIX + len].to_vec();
        self.buf.drain(..LEN_PREFIX + len);
        match decode_payload(&payload) {
            Ok(msg) => Ok(Some(msg)),
            Err(e) => Err(self.poison(e)),
        }
    }

    fn poison(&mut self, err: WireError) -> WireError {
        self.poisoned = Some(err);
        self.buf.clear();
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Auth {
                token: [7u8; AUTH_TOKEN_LEN],
                role: PeerRole::Measurer,
                nonce: 0x0123_4567_89AB_CDEF,
            },
            Msg::AuthOk { session: 0xDEAD_BEEF_0123_4567, nonce: 0x0123_4567_89AB_CDEF },
            Msg::MeasureCmd(MeasureSpec {
                relay_fp: [0xAB; FINGERPRINT_LEN],
                slot_secs: 30,
                sockets: 80,
                rate_cap: 117_000_000,
                target: TargetEndpoint { ip: [127, 0, 0, 1], port: 9151 },
                measurement_secret: 0x5EC2_E7BE_EF00_1234,
                trace_id: 0x7ACE_0001_0000_0003,
            }),
            Msg::Ready,
            Msg::Go,
            Msg::SecondReport { second: 12, bg_bytes: 1_000_000, measured_bytes: 31_250_000 },
            Msg::SlotDone,
            Msg::Abort { reason: AbortReason::ReportTimeout },
            Msg::Ping { probe: 0x1357_9BDF_0246_8ACE },
            Msg::Pong { probe: 0x1357_9BDF_0246_8ACE },
            Msg::Resume {
                token: [7u8; AUTH_TOKEN_LEN],
                role: PeerRole::Measurer,
                nonce_prior: 0x0123_4567_89AB_CDEF,
                nonce: 0xFEDC_BA98_7654_3210,
                trace_id: 0x7ACE_0002_0000_0001,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in sample_msgs() {
            let frame = encode(&msg);
            let mut dec = FrameDecoder::new();
            dec.push(&frame);
            assert_eq!(dec.next_msg().unwrap(), Some(msg), "{}", msg.name());
            assert_eq!(dec.next_msg().unwrap(), None);
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let mut stream: Vec<u8> = Vec::new();
        for msg in sample_msgs() {
            stream.extend_from_slice(&encode(&msg));
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(m) = dec.next_msg().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, sample_msgs());
    }

    #[test]
    fn oversized_length_poisons() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_be_bytes());
        dec.push(&[1, 2, 3]);
        let err = dec.next_msg().unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err}");
        // Sticky: still failing, even after more (valid) bytes.
        dec.push(&encode(&Msg::Ready));
        assert_eq!(dec.next_msg().unwrap_err(), err);
    }

    #[test]
    fn bad_version_rejected() {
        let mut frame = encode(&Msg::Ready);
        frame[LEN_PREFIX] = 99;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(dec.next_msg().unwrap_err(), WireError::BadVersion { got: 99 }));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut frame = encode(&Msg::Ready);
        frame[LEN_PREFIX + 1] = 0xEE;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(dec.next_msg().unwrap_err(), WireError::UnknownType(0xEE)));
    }

    #[test]
    fn truncated_body_rejected() {
        // An Auth frame whose declared length cuts the token short.
        let full =
            encode(&Msg::Auth { token: [1; AUTH_TOKEN_LEN], role: PeerRole::Target, nonce: 9 });
        let cut = 10usize;
        let mut frame = full[..LEN_PREFIX + cut].to_vec();
        frame[..LEN_PREFIX].copy_from_slice(&(cut as u32).to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(dec.next_msg().unwrap_err(), WireError::Truncated { msg: "Auth", .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode(&Msg::Go);
        // Extend the payload by one byte and fix up the prefix.
        frame.push(0);
        let len = (frame.len() - LEN_PREFIX) as u32;
        frame[..LEN_PREFIX].copy_from_slice(&len.to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(
            dec.next_msg().unwrap_err(),
            WireError::TrailingBytes { msg: "Go", extra: 1 }
        ));
    }

    #[test]
    fn bad_enum_values_rejected() {
        let mut frame = encode(&Msg::Abort { reason: AbortReason::Shutdown });
        *frame.last_mut().unwrap() = 77;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(
            dec.next_msg().unwrap_err(),
            WireError::BadEnumValue { field: "Abort.reason", value: 77 }
        ));
    }
}
