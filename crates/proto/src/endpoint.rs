//! Binding a session to a transport: the one pump loop.
//!
//! An [`Endpoint`] pairs any [`SessionState`] (either protocol half)
//! with any [`Transport`] and owns the only code that moves bytes
//! between them. Drivers call [`Endpoint::pump`] whenever the transport
//! may have made progress and [`Endpoint::tick`] when time advances;
//! everything else (actions, phases) is read straight off the session.
//!
//! Transport failures are where the byte world meets the state-machine
//! world: the first [`TransportError`] aborts the session with
//! [`AbortReason::ConnectionLost`], drops any frames still queued (there
//! is nowhere for them to go), and closes the transport — so a dead TCP
//! connection degrades the measurement exactly like a stalled peer does,
//! through the session's normal failure path.
//!
//! The reverse direction also holds: once the **session** is terminal,
//! the endpoint flushes its final frames and closes the transport. A
//! terminal session ignores input anyway, so continuing to read would
//! only let a flooding peer keep the endpoint "making progress" forever
//! (wedging any driver that pumps to quiescence, hard deadline and all)
//! while its bytes pile up with nowhere to go.

use flashflow_simnet::time::SimTime;

use crate::msg::AbortReason;
use crate::session::SessionState;
use crate::transport::{Transport, TransportError};

/// A session bound to one transport endpoint.
#[derive(Debug)]
pub struct Endpoint<S: SessionState, T: Transport> {
    session: S,
    transport: T,
    error: Option<TransportError>,
}

impl<S: SessionState, T: Transport> Endpoint<S, T> {
    /// Binds `session` to `transport`.
    pub fn new(session: S, transport: T) -> Self {
        Endpoint { session, transport, error: None }
    }

    /// The session (phase queries, counters).
    pub fn session(&self) -> &S {
        &self.session
    }

    /// The session, mutably (start/go/report_second, action polling).
    pub fn session_mut(&mut self) -> &mut S {
        &mut self.session
    }

    /// The transport, mutably (fault tripping in tests and drivers).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// The first transport error observed, if any.
    pub fn transport_error(&self) -> Option<TransportError> {
        self.error
    }

    /// Moves bytes both ways once: queued session frames onto the
    /// transport, arrived transport bytes into the session. Returns
    /// `true` if anything moved (callers loop to quiescence when the
    /// transport is zero-latency).
    ///
    /// Once the session is terminal its final frames are flushed and the
    /// transport is closed; from then on `pump` neither reads nor
    /// reports progress, so a peer that keeps sending (a flood, a
    /// half-dead socket) cannot wedge a pump-to-quiescence driver.
    pub fn pump(&mut self, now: SimTime) -> bool {
        let mut moved = self.flush_outbound(now);
        // Transport → session (skipped once the session is terminal: it
        // would ignore the bytes, and reading them counts as progress).
        if self.error.is_none() && !self.session.is_terminal() {
            match self.transport.recv(now) {
                Ok(bytes) if !bytes.is_empty() => {
                    self.session.receive(now, &bytes);
                    moved = true;
                }
                Ok(_) => {}
                Err(err) => {
                    self.on_transport_error(err);
                    // The abort frame queued by the session has nowhere
                    // to go; drop it so it cannot pile up.
                    while self.session.poll_outbound().is_some() {}
                }
            }
        }
        // The conversation is over: flush the tail the session may have
        // queued while going terminal during this very pump (its Abort
        // or SlotDone), then hang up. In-flight bytes still deliver to
        // the peer; `close` is idempotent.
        if self.session.is_terminal() && self.error.is_none() {
            moved |= self.flush_outbound(now);
            if self.error.is_none() {
                self.transport.close();
            }
        }
        moved
    }

    /// Sends every queued session frame; drains and drops them instead
    /// once the wire is gone.
    fn flush_outbound(&mut self, now: SimTime) -> bool {
        let mut moved = false;
        while let Some(frame) = self.session.poll_outbound() {
            if self.error.is_some() {
                continue; // drain and drop: the wire is gone
            }
            match self.transport.send(now, &frame) {
                Ok(()) => moved = true,
                Err(err) => self.on_transport_error(err),
            }
        }
        moved
    }

    /// Advances session time (deadline/timeout checks).
    pub fn tick(&mut self, now: SimTime) {
        self.session.on_tick(now);
    }

    /// True once the session can make no further progress.
    pub fn is_terminal(&self) -> bool {
        self.session.is_terminal()
    }

    /// Unbinds, returning the parts.
    pub fn into_parts(self) -> (S, T) {
        (self.session, self.transport)
    }

    fn on_transport_error(&mut self, err: TransportError) {
        if self.error.is_none() {
            self.error = Some(err);
            self.session.abort(AbortReason::ConnectionLost);
            self.transport.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
    use crate::session::{
        CoordAction, CoordPhase, CoordinatorSession, MeasurerPhase, MeasurerSession,
        SessionTimeouts,
    };
    use crate::transport::Duplex;

    fn spec() -> MeasureSpec {
        MeasureSpec {
            relay_fp: [1; FINGERPRINT_LEN],
            slot_secs: 2,
            sockets: 8,
            rate_cap: 0,
            ..MeasureSpec::default()
        }
    }

    #[test]
    fn endpoints_complete_a_slot_over_a_zero_latency_link() {
        let token = [4u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let (ca, cb) = Duplex::loopback().into_endpoints();
        let mut coord =
            Endpoint::new(CoordinatorSession::new(token, PeerRole::Measurer, spec(), 77, t), ca);
        let mut meas = Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, 1, t), cb);
        let now = SimTime::ZERO;
        coord.session_mut().start(now);
        // Zero latency: pump to quiescence completes the handshake.
        while coord.pump(now) | meas.pump(now) {}
        assert_eq!(coord.session().phase(), CoordPhase::Armed);
        coord.session_mut().go(now);
        while coord.pump(now) | meas.pump(now) {}
        assert_eq!(meas.session().phase(), MeasurerPhase::Running);
        meas.session_mut().report_second(0, 10);
        meas.session_mut().report_second(0, 20);
        while coord.pump(now) | meas.pump(now) {}
        assert_eq!(coord.session().phase(), CoordPhase::Done);
    }

    #[test]
    fn terminal_endpoint_stops_reading_and_hangs_up() {
        let token = [4u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let (ca, mut cb) = Duplex::loopback().into_endpoints();
        let mut coord =
            Endpoint::new(CoordinatorSession::new(token, PeerRole::Measurer, spec(), 9, t), ca);
        let now = SimTime::ZERO;
        coord.session_mut().start(now);
        coord.pump(now);
        // A peer floods bytes at the endpoint...
        for _ in 0..64 {
            cb.send(now, &[0xEE; 128]).expect("flood");
        }
        // ...and the session goes terminal. The next pump flushes the
        // Abort frame and hangs up without reading the flood.
        coord.session_mut().abort(AbortReason::Shutdown);
        assert!(coord.pump(now), "the Abort frame still goes out");
        assert!(!coord.pump(now), "a terminal endpoint must not report the flood as progress");
        // The wire is released: the peer's next send fails.
        assert_eq!(cb.send(now, b"more"), Err(TransportError::Closed));
    }

    #[test]
    fn transport_failure_aborts_with_connection_lost() {
        let token = [4u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let (ca, mut cb) = Duplex::loopback().into_endpoints();
        let mut coord =
            Endpoint::new(CoordinatorSession::new(token, PeerRole::Measurer, spec(), 77, t), ca);
        let now = SimTime::ZERO;
        coord.session_mut().start(now);
        cb.close(); // peer vanishes
        coord.pump(now); // Auth send fails → ConnectionLost
        assert_eq!(coord.session().phase(), CoordPhase::Failed);
        assert_eq!(coord.transport_error(), Some(TransportError::Closed));
        assert_eq!(
            coord.session_mut().poll_action(),
            Some(CoordAction::PeerFailed { reason: AbortReason::ConnectionLost })
        );
    }
}
