//! Time-stepped simulation engine.
//!
//! The engine advances simulated time in fixed ticks (100 ms by default).
//! Each tick it:
//!
//! 1. computes every resource's effective capacity (token buckets refill,
//!    CPUs pay per-socket overhead),
//! 2. derives each active flow's cap (application cap ∧ TCP window cap),
//! 3. allocates rates with weighted max-min fairness
//!    ([`crate::flow::max_min_rates`]),
//! 4. moves bytes, completes budgeted flows, and updates token buckets and
//!    TCP ramp state.
//!
//! The paper's measurements are all per-second aggregates over tens of
//! seconds, so a sub-second fluid tick reproduces the relevant dynamics
//! (bursts, ramps, contention) at a tiny fraction of packet-level cost.

use crate::flow::{max_min_rates, AllocFlow, FlowSpec};
use crate::resource::{Resource, ResourceId};
use crate::rng::SimRng;
use crate::tcp::{bundle_cap, TcpProfile, TcpState};
use crate::time::{SimDuration, SimTime};
use crate::units::Rate;

/// Identifies a flow started on an [`Engine`]. Ids are generation-checked:
/// using a stale id after the flow is removed panics rather than silently
/// reading another flow's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    slot: usize,
    generation: u64,
}

/// Configuration for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Length of one simulation tick.
    pub tick: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { tick: SimDuration::from_millis(100) }
    }
}

#[derive(Debug)]
struct FlowState {
    spec: FlowSpec,
    tcp: Option<(TcpProfile, TcpState)>,
    /// Remaining bytes to deliver; `None` = unbounded.
    budget: Option<f64>,
    bytes_total: f64,
    bytes_last_tick: f64,
    rate: f64,
    started: SimTime,
    finished: Option<SimTime>,
}

#[derive(Debug)]
struct Slot {
    generation: u64,
    state: Option<FlowState>,
}

/// What happened during one tick.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Flows whose byte budget completed during this tick.
    pub completed: Vec<FlowId>,
}

/// Mean-reverting multiplicative capacity noise attached to a resource.
///
/// Shared virtual hosts (Table 1's US-NW, IN, NL) see their effective
/// capacity wander as co-resident tenants come and go; this is the
/// paper's explanation for measurement spread and for IN being the
/// slowest measurer. The log-capacity follows an AR(1) process:
/// `state ← ar·state + √(1−ar²)·N(0, σ)`, and the resource's capacity is
/// `base · exp(state)`.
#[derive(Debug)]
struct Jitter {
    resource: ResourceId,
    base: f64,
    sigma: f64,
    ar: f64,
    state: f64,
    rng: SimRng,
}

/// The time-stepped fluid simulation engine.
///
/// ```
/// use flashflow_simnet::engine::{Engine, EngineConfig};
/// use flashflow_simnet::resource::Resource;
/// use flashflow_simnet::flow::FlowSpec;
/// use flashflow_simnet::units::Rate;
/// use flashflow_simnet::time::SimDuration;
///
/// let mut eng = Engine::new(EngineConfig::default());
/// let pipe = eng.add_resource(Resource::pipe("link", Rate::from_mbit(80.0)));
/// let flow = eng.start_flow(FlowSpec::new(vec![pipe]));
/// eng.run_for(SimDuration::from_secs(1));
/// // 80 Mbit/s == 10 MB/s for one second.
/// assert!((eng.flow_bytes(flow) - 10e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    now: SimTime,
    resources: Vec<Resource>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    resource_bytes_last_tick: Vec<f64>,
    jitters: Vec<Jitter>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    /// Panics if the tick length is zero.
    pub fn new(cfg: EngineConfig) -> Self {
        assert!(!cfg.tick.is_zero(), "tick must be positive");
        Engine {
            cfg,
            now: SimTime::ZERO,
            resources: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            resource_bytes_last_tick: Vec::new(),
            jitters: Vec::new(),
        }
    }

    /// Attaches mean-reverting capacity noise to a resource: each tick the
    /// capacity becomes `base · exp(s)` where `s` follows an AR(1) process
    /// with stationary deviation `sigma` and autocorrelation `ar`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or `ar` outside `[0, 1)`.
    pub fn add_jitter(&mut self, resource: ResourceId, sigma: f64, ar: f64, rng: SimRng) {
        assert!(sigma >= 0.0 && sigma.is_finite(), "bad sigma {sigma}");
        assert!((0.0..1.0).contains(&ar), "bad ar {ar}");
        let base = self.resources[resource.index()].capacity().bytes_per_sec();
        self.jitters.push(Jitter { resource, base, sigma, ar, state: 0.0, rng });
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured tick length.
    pub fn tick_duration(&self) -> SimDuration {
        self.cfg.tick
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        self.resources.push(resource);
        self.resource_bytes_last_tick.push(0.0);
        ResourceId(self.resources.len() - 1)
    }

    /// Immutable access to a resource.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Mutable access to a resource (e.g. to change a rate limit mid-run).
    pub fn resource_mut(&mut self, id: ResourceId) -> &mut Resource {
        &mut self.resources[id.index()]
    }

    /// Bytes that crossed `id` during the most recent tick.
    pub fn resource_bytes_last_tick(&self, id: ResourceId) -> f64 {
        self.resource_bytes_last_tick[id.index()]
    }

    /// Average rate over the most recent tick on `id`.
    pub fn resource_rate_last_tick(&self, id: ResourceId) -> Rate {
        Rate::from_bytes_per_sec(
            self.resource_bytes_last_tick[id.index()] / self.cfg.tick.as_secs_f64(),
        )
    }

    fn alloc_slot(&mut self, state: FlowState) -> FlowId {
        if let Some(slot) = self.free.pop() {
            let generation = self.slots[slot].generation + 1;
            self.slots[slot] = Slot { generation, state: Some(state) };
            FlowId { slot, generation }
        } else {
            self.slots.push(Slot { generation: 0, state: Some(state) });
            FlowId { slot: self.slots.len() - 1, generation: 0 }
        }
    }

    fn state(&self, id: FlowId) -> &FlowState {
        let slot = &self.slots[id.slot];
        assert_eq!(slot.generation, id.generation, "stale FlowId");
        slot.state.as_ref().expect("flow was removed")
    }

    fn state_mut(&mut self, id: FlowId) -> &mut FlowState {
        let slot = &mut self.slots[id.slot];
        assert_eq!(slot.generation, id.generation, "stale FlowId");
        slot.state.as_mut().expect("flow was removed")
    }

    /// Starts an unbounded fluid flow.
    ///
    /// # Panics
    /// Panics if the spec references unknown resources.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!(r.index() < self.resources.len(), "unknown resource in path");
        }
        let started = self.now;
        self.alloc_slot(FlowState {
            spec,
            tcp: None,
            budget: None,
            bytes_total: 0.0,
            bytes_last_tick: 0.0,
            rate: 0.0,
            started,
            finished: None,
        })
    }

    /// Starts a flow whose rate is additionally capped by a TCP model
    /// (slow-start ramp, then buffer/BDP ceiling, scaled by the socket
    /// count in the spec).
    pub fn start_tcp_flow(&mut self, spec: FlowSpec, profile: TcpProfile) -> FlowId {
        let id = self.start_flow(spec);
        self.state_mut(id).tcp = Some((profile, TcpState::new()));
        id
    }

    /// Gives a flow a finite byte budget; it completes when the budget is
    /// delivered.
    ///
    /// # Panics
    /// Panics if `bytes` is not positive and finite.
    pub fn set_flow_budget(&mut self, id: FlowId, bytes: f64) {
        assert!(bytes.is_finite() && bytes > 0.0, "bad budget {bytes}");
        self.state_mut(id).budget = Some(bytes);
    }

    /// Replaces a flow's application-level rate cap.
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) {
        self.state_mut(id).spec.cap = cap;
    }

    /// Replaces a flow's share weight.
    ///
    /// # Panics
    /// Panics if `weight` is not strictly positive and finite.
    pub fn set_flow_weight(&mut self, id: FlowId, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "bad weight {weight}");
        self.state_mut(id).spec.weight = weight;
    }

    /// Stops a flow (it stops consuming capacity but its statistics remain
    /// queryable until [`Engine::remove_flow`]).
    pub fn stop_flow(&mut self, id: FlowId) {
        let now = self.now;
        let st = self.state_mut(id);
        if st.finished.is_none() {
            st.finished = Some(now);
            st.rate = 0.0;
        }
    }

    /// Forgets a flow entirely, recycling its id slot.
    pub fn remove_flow(&mut self, id: FlowId) {
        let slot = &mut self.slots[id.slot];
        assert_eq!(slot.generation, id.generation, "stale FlowId");
        assert!(slot.state.is_some(), "flow already removed");
        slot.state = None;
        self.free.push(id.slot);
    }

    /// True if the flow exists and has not finished or been stopped.
    pub fn flow_is_active(&self, id: FlowId) -> bool {
        self.state(id).finished.is_none()
    }

    /// The flow's rate during the most recent tick (bytes/sec).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.state(id).rate
    }

    /// Total bytes delivered by the flow so far.
    pub fn flow_bytes(&self, id: FlowId) -> f64 {
        self.state(id).bytes_total
    }

    /// Bytes delivered by the flow during the most recent tick.
    pub fn flow_bytes_last_tick(&self, id: FlowId) -> f64 {
        self.state(id).bytes_last_tick
    }

    /// When the flow started.
    pub fn flow_started_at(&self, id: FlowId) -> SimTime {
        self.state(id).started
    }

    /// When the flow finished (budget complete or stopped), if it has.
    pub fn flow_finished_at(&self, id: FlowId) -> Option<SimTime> {
        self.state(id).finished
    }

    /// Advances the simulation by one tick.
    pub fn tick(&mut self) -> TickReport {
        let dt = self.cfg.tick.as_secs_f64();

        // Evolve capacity jitter before allocating.
        for j in &mut self.jitters {
            let innovation = (1.0 - j.ar * j.ar).sqrt() * j.sigma;
            j.state = j.ar * j.state + j.rng.gen_normal(0.0, innovation);
            let capacity = j.base * j.state.exp();
            self.resources[j.resource.index()].set_capacity(Rate::from_bytes_per_sec(capacity));
        }

        // Active flow slots, in a stable order.
        let active: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state.as_ref().is_some_and(|st| st.finished.is_none()))
            .map(|(i, _)| i)
            .collect();

        // Socket mass per resource (drives CPU overhead).
        let mut socket_mass = vec![0.0f64; self.resources.len()];
        for &i in &active {
            let st = self.slots[i].state.as_ref().unwrap();
            for r in &st.spec.path {
                socket_mass[r.index()] += f64::from(st.spec.sockets.max(1));
            }
        }

        let capacities: Vec<f64> = self
            .resources
            .iter()
            .enumerate()
            .map(|(ri, r)| r.effective_capacity(dt, socket_mass[ri]))
            .collect();

        // Per-flow caps: app cap ∧ TCP bundle cap.
        let caps: Vec<Option<f64>> = active
            .iter()
            .map(|&i| {
                let st = self.slots[i].state.as_ref().unwrap();
                let tcp_cap = st
                    .tcp
                    .as_ref()
                    .map(|(profile, state)| bundle_cap(profile, state, st.spec.sockets));
                match (st.spec.cap, tcp_cap) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                }
            })
            .collect();

        let alloc_flows: Vec<AllocFlow<'_>> = active
            .iter()
            .zip(&caps)
            .map(|(&i, cap)| {
                let st = self.slots[i].state.as_ref().unwrap();
                AllocFlow { path: &st.spec.path, weight: st.spec.weight, cap: *cap }
            })
            .collect();

        let rates = max_min_rates(&capacities, &alloc_flows);

        // Apply: move bytes, detect completions, track resource usage.
        let mut report = TickReport::default();
        let mut resource_bytes = vec![0.0f64; self.resources.len()];
        // Reset last-tick counters for every live flow (stopped ones too).
        for s in &mut self.slots {
            if let Some(st) = s.state.as_mut() {
                st.bytes_last_tick = 0.0;
                if st.finished.is_some() {
                    st.rate = 0.0;
                }
            }
        }
        let now = self.now;
        for (k, &i) in active.iter().enumerate() {
            let rate = rates[k];
            let generation = self.slots[i].generation;
            let st = self.slots[i].state.as_mut().unwrap();
            let mut bytes = rate * dt;
            let mut finished_at = None;
            if let Some(budget) = st.budget {
                let remaining = budget - st.bytes_total;
                if bytes + 1e-9 >= remaining {
                    bytes = remaining.max(0.0);
                    let extra = if rate > 0.0 { bytes / rate } else { 0.0 };
                    finished_at = Some(now + SimDuration::from_secs_f64(extra.min(dt)));
                }
            }
            st.rate = rate;
            st.bytes_total += bytes;
            st.bytes_last_tick = bytes;
            if let Some(t) = finished_at {
                st.finished = Some(t);
                st.rate = 0.0;
                report.completed.push(FlowId { slot: i, generation });
            }
            if let Some((_, tcp_state)) = st.tcp.as_mut() {
                tcp_state.advance(dt);
            }
            for r in &st.spec.path {
                resource_bytes[r.index()] += bytes;
            }
        }

        for (ri, r) in self.resources.iter_mut().enumerate() {
            r.consume(resource_bytes[ri], dt);
        }
        self.resource_bytes_last_tick = resource_bytes;

        self.now += self.cfg.tick;
        report
    }

    /// Runs whole ticks until at least `duration` has elapsed, collecting
    /// completions.
    pub fn run_for(&mut self, duration: SimDuration) -> Vec<FlowId> {
        let mut completed = Vec::new();
        let end = self.now + duration;
        while self.now < end {
            completed.extend(self.tick().completed);
        }
        completed
    }

    /// Runs until `deadline` (no-op if already past).
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<FlowId> {
        let mut completed = Vec::new();
        while self.now < deadline {
            completed.extend(self.tick().completed);
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    #[test]
    fn single_flow_fills_pipe() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(100.0)));
        let f = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.run_for(SimDuration::from_secs(2));
        let expect = Rate::from_mbit(100.0).bytes_per_sec() * 2.0;
        assert!((eng.flow_bytes(f) - expect).abs() < 1.0);
        assert!((eng.flow_rate(f) - expect / 2.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(100.0)));
        let a = eng.start_flow(FlowSpec::new(vec![pipe]));
        let b = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.run_for(SimDuration::from_secs(1));
        assert!((eng.flow_bytes(a) - eng.flow_bytes(b)).abs() < 1.0);
    }

    #[test]
    fn budget_completes_flow_and_frees_capacity() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(80.0)));
        let small = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.set_flow_budget(small, 1e6); // 1 MB at ~5 MB/s shared
        let big = eng.start_flow(FlowSpec::new(vec![pipe]));
        let completed = eng.run_for(SimDuration::from_secs(3));
        assert_eq!(completed, vec![small]);
        assert!((eng.flow_bytes(small) - 1e6).abs() < 1.0);
        assert!(eng.flow_finished_at(small).is_some());
        // After `small` finishes, `big` gets the whole 10 MB/s pipe.
        assert!((eng.flow_rate(big) - 10e6).abs() < 1.0);
    }

    #[test]
    fn completion_time_is_fractional() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(80.0)));
        // 10 MB/s, 25 MB budget → finishes at exactly 2.5 s.
        let f = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.set_flow_budget(f, 25e6);
        eng.run_for(SimDuration::from_secs(5));
        let t = eng.flow_finished_at(f).unwrap();
        assert!((t.as_secs_f64() - 2.5).abs() < 0.11, "finished at {t}");
    }

    #[test]
    fn stopped_flow_stops_consuming() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(100.0)));
        let a = eng.start_flow(FlowSpec::new(vec![pipe]));
        let b = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.run_for(SimDuration::from_secs(1));
        eng.stop_flow(a);
        eng.run_for(SimDuration::from_secs(1));
        // b now has the full pipe.
        assert!((eng.flow_rate(b) - 12.5e6).abs() < 1.0);
        assert!(!eng.flow_is_active(a));
    }

    #[test]
    fn token_bucket_bursts_then_limits() {
        let mut eng = engine();
        let rate = Rate::from_mbit(80.0); // 10 MB/s sustained
        let bucket = eng.add_resource(Resource::token_bucket("tb", rate, 10e6));
        let f = eng.start_flow(FlowSpec::new(vec![bucket]));
        eng.run_for(SimDuration::from_secs(1));
        let first_second = eng.flow_bytes(f);
        // Bucket (10 MB) + refill (10 MB) in the first second.
        assert!((first_second - 20e6).abs() < 1e4, "first {first_second}");
        eng.run_for(SimDuration::from_secs(1));
        let second_second = eng.flow_bytes(f) - first_second;
        assert!((second_second - 10e6).abs() < 1e4, "second {second_second}");
    }

    #[test]
    fn tcp_flow_ramps_up() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_gbit(10.0)));
        let profile = TcpProfile::new(SimDuration::from_millis(100));
        let f = eng.start_tcp_flow(FlowSpec::new(vec![pipe]), profile);
        eng.tick();
        let early = eng.flow_rate(f);
        eng.run_for(SimDuration::from_secs(10));
        let late = eng.flow_rate(f);
        assert!(late > early * 10.0, "early {early}, late {late}");
        assert!((late - profile.steady_cap()).abs() / profile.steady_cap() < 0.01);
    }

    #[test]
    fn resource_rate_accounting() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(100.0)));
        let _a = eng.start_flow(FlowSpec::new(vec![pipe]));
        let _b = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.tick();
        let rate = eng.resource_rate_last_tick(pipe);
        assert!((rate.as_mbit() - 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "stale FlowId")]
    fn stale_flow_id_panics() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(1.0)));
        let f = eng.start_flow(FlowSpec::new(vec![pipe]));
        eng.remove_flow(f);
        let g = eng.start_flow(FlowSpec::new(vec![pipe])); // recycles slot
        assert_eq!(g.slot, f.slot);
        let _ = eng.flow_rate(f);
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        let mut eng = engine();
        let pipe = eng.add_resource(Resource::pipe("p", Rate::from_mbit(90.0)));
        let a = eng.start_flow(FlowSpec::new(vec![pipe]).with_weight(1.0));
        let b = eng.start_flow(FlowSpec::new(vec![pipe]).with_weight(2.0));
        eng.run_for(SimDuration::from_secs(1));
        let ratio = eng.flow_bytes(b) / eng.flow_bytes(a);
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cpu_resource_slows_with_many_sockets() {
        let mut eng = engine();
        let cpu = eng.add_resource(Resource::cpu("cpu", Rate::from_mbit(1000.0), 0.002));
        let few = eng.start_flow(FlowSpec::new(vec![cpu]).with_sockets(10));
        eng.run_for(SimDuration::from_secs(1));
        let rate_few = eng.flow_rate(few);
        eng.stop_flow(few);
        let many = eng.start_flow(FlowSpec::new(vec![cpu]).with_sockets(300));
        eng.run_for(SimDuration::from_secs(1));
        let rate_many = eng.flow_rate(many);
        assert!(rate_many < rate_few, "few {rate_few}, many {rate_many}");
    }
}
