//! Host profiles and the [`Net`] wrapper tying hosts into an engine.
//!
//! The paper's Internet experiments run on five vantage points (Table 1)
//! plus a pair of lab machines (Appendix C). Each host contributes two
//! pipe resources (uplink and downlink) and carries the CPU and kernel
//! parameters the other layers need. [`Net`] owns the engine, the hosts,
//! and the pairwise RTT matrix, and builds flows between hosts.

use std::collections::HashMap;

use crate::engine::{Engine, EngineConfig, FlowId};
use crate::flow::FlowSpec;
use crate::resource::{Resource, ResourceId};
use crate::rng::SimRng;
use crate::tcp::{KernelProfile, TcpProfile};
use crate::time::SimDuration;
use crate::units::Rate;

/// Stationary log-capacity deviation for shared virtual hosts.
pub const JITTER_SIGMA_VIRTUAL: f64 = 0.16;
/// Stationary log-capacity deviation for dedicated hosts.
pub const JITTER_SIGMA_DEDICATED: f64 = 0.05;
/// AR(1) autocorrelation of capacity noise per 100 ms tick: the ~20 s
/// decorrelation time means congestion episodes persist long enough to
/// move a 30-second median, as they do on real shared hosts.
pub const JITTER_AR: f64 = 0.995;

/// Identifies a host added to a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(usize);

impl HostId {
    /// The raw index of this host.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where a host's connectivity comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkType {
    /// Datacenter connectivity (most Table 1 hosts).
    Datacenter,
    /// Residential connectivity (US-E).
    Residential,
}

/// Static description of a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Display name ("US-SW", "lab-a", …).
    pub name: String,
    /// Uplink capacity.
    pub nic_up: Rate,
    /// Downlink capacity.
    pub nic_down: Rate,
    /// CPU core count (Tor forwards on a single core regardless).
    pub cores: u32,
    /// Single-threaded Tor cell-forwarding capacity on this machine.
    pub tor_cpu: Rate,
    /// Whether the machine is a shared virtual host.
    pub virtualized: bool,
    /// Datacenter or residential connectivity.
    pub network_type: NetworkType,
    /// Kernel socket-buffer configuration.
    pub kernel: KernelProfile,
}

impl HostProfile {
    /// A generic host with symmetric NIC capacity.
    pub fn new(name: impl Into<String>, nic: Rate) -> Self {
        HostProfile {
            name: name.into(),
            nic_up: nic,
            nic_down: nic,
            cores: 4,
            tor_cpu: Rate::from_mbit(900.0),
            virtualized: false,
            network_type: NetworkType::Datacenter,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// Sets the single-threaded Tor CPU capacity.
    pub fn with_tor_cpu(mut self, rate: Rate) -> Self {
        self.tor_cpu = rate;
        self
    }

    /// Sets the kernel profile.
    pub fn with_kernel(mut self, kernel: KernelProfile) -> Self {
        self.kernel = kernel;
        self
    }

    /// US-SW (Fremont, CA): 8 cores, 32 GiB, dedicated, ~954 Mbit/s
    /// measured; the paper's target-relay host with 890 Mbit/s Tor ground
    /// truth.
    pub fn us_sw() -> Self {
        HostProfile {
            name: "US-SW".into(),
            nic_up: Rate::from_mbit(954.0),
            nic_down: Rate::from_mbit(954.0),
            cores: 8,
            tor_cpu: Rate::from_mbit(890.0),
            virtualized: false,
            network_type: NetworkType::Datacenter,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// US-NW (Santa Rosa, CA): virtual, 8 cores, ~946 Mbit/s.
    pub fn us_nw() -> Self {
        HostProfile {
            name: "US-NW".into(),
            nic_up: Rate::from_mbit(946.0),
            nic_down: Rate::from_mbit(946.0),
            cores: 8,
            tor_cpu: Rate::from_mbit(850.0),
            virtualized: true,
            network_type: NetworkType::Datacenter,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// US-E (Washington, DC): dedicated residential, 12 cores, ~941 Mbit/s.
    pub fn us_e() -> Self {
        HostProfile {
            name: "US-E".into(),
            nic_up: Rate::from_mbit(941.0),
            nic_down: Rate::from_mbit(941.0),
            cores: 12,
            tor_cpu: Rate::from_mbit(950.0),
            virtualized: false,
            network_type: NetworkType::Residential,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// IN (Bangalore): small shared virtual host, ~1076 Mbit/s measured.
    pub fn host_in() -> Self {
        HostProfile {
            name: "IN".into(),
            nic_up: Rate::from_mbit(1076.0),
            nic_down: Rate::from_mbit(1076.0),
            cores: 2,
            tor_cpu: Rate::from_mbit(600.0),
            virtualized: true,
            network_type: NetworkType::Datacenter,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// NL (Amsterdam): small shared virtual host, ~1611 Mbit/s measured.
    pub fn host_nl() -> Self {
        HostProfile {
            name: "NL".into(),
            nic_up: Rate::from_mbit(1611.0),
            nic_down: Rate::from_mbit(1611.0),
            cores: 2,
            tor_cpu: Rate::from_mbit(650.0),
            virtualized: true,
            network_type: NetworkType::Datacenter,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// A lab machine (Appendix C): dual Xeon E5-2697V3, 10 Gbit/s fiber,
    /// 1,248 Mbit/s single-thread Tor capacity.
    pub fn lab(name: impl Into<String>) -> Self {
        HostProfile {
            name: name.into(),
            nic_up: Rate::from_gbit(10.0),
            nic_down: Rate::from_gbit(10.0),
            cores: 56,
            tor_cpu: Rate::from_mbit(1248.0),
            virtualized: false,
            network_type: NetworkType::Datacenter,
            kernel: KernelProfile::default_linux(),
        }
    }

    /// All five Table 1 vantage points in paper order
    /// (US-SW, US-NW, US-E, IN, NL).
    pub fn table1() -> Vec<HostProfile> {
        vec![
            HostProfile::us_sw(),
            HostProfile::us_nw(),
            HostProfile::us_e(),
            HostProfile::host_in(),
            HostProfile::host_nl(),
        ]
    }
}

/// Round-trip times between the Table 1 hosts, in milliseconds, indexed in
/// paper order (US-SW, US-NW, US-E, IN, NL). Values to US-SW come straight
/// from Table 1; the rest are geographic estimates.
pub const TABLE1_RTT_MS: [[u64; 5]; 5] = [
    [0, 40, 62, 210, 137],
    [40, 0, 70, 230, 150],
    [62, 70, 0, 250, 90],
    [210, 230, 250, 0, 130],
    [137, 150, 90, 130, 0],
];

struct HostEntry {
    profile: HostProfile,
    tx: ResourceId,
    rx: ResourceId,
}

/// An engine plus hosts plus an RTT matrix: the substrate experiments are
/// built on.
pub struct Net {
    engine: Engine,
    hosts: Vec<HostEntry>,
    rtt: HashMap<(usize, usize), SimDuration>,
    default_rtt: SimDuration,
    jitter_rng: Option<SimRng>,
    wan_loss: bool,
}

/// Per-second-of-RTT coefficient of the WAN loss model: paths with
/// longer RTTs cross more congested infrastructure and see more loss.
pub const WAN_LOSS_PER_RTT_SEC: f64 = 5e-4;

impl Net {
    /// Creates an empty network with the default engine configuration.
    pub fn new() -> Self {
        Net::with_config(EngineConfig::default())
    }

    /// Creates an empty network with a custom engine configuration.
    pub fn with_config(cfg: EngineConfig) -> Self {
        Net {
            engine: Engine::new(cfg),
            hosts: Vec::new(),
            rtt: HashMap::new(),
            default_rtt: SimDuration::from_millis(80),
            jitter_rng: None,
            wan_loss: false,
        }
    }

    /// Enables the WAN loss model: TCP profiles between hosts carry a
    /// packet-loss rate proportional to their RTT, capping per-socket
    /// throughput via the Mathis relation. [`Net::table1`] enables this
    /// (the paper's vantage points are real Internet paths); lab-style
    /// nets leave it off.
    pub fn enable_wan_loss(&mut self) {
        self.wan_loss = true;
    }

    /// Enables capacity jitter for hosts added *after* this call:
    /// virtualized hosts wander with deviation
    /// [`JITTER_SIGMA_VIRTUAL`], dedicated ones with
    /// [`JITTER_SIGMA_DEDICATED`]. Experiments that need run-to-run
    /// spread (Fig. 6's accuracy CDFs) enable this; unit tests that
    /// assert exact rates leave it off.
    pub fn enable_jitter(&mut self, seed: u64) {
        self.jitter_rng = Some(SimRng::seed_from_u64(seed ^ 0x4a49_5454_4552));
    }

    /// True if capacity jitter is enabled.
    pub fn jitter_enabled(&self) -> bool {
        self.jitter_rng.is_some()
    }

    /// Forks a jitter RNG stream (used by higher layers to jitter their
    /// own resources, e.g. relay CPUs). Returns `None` when jitter is
    /// disabled.
    pub fn fork_jitter_rng(&mut self) -> Option<SimRng> {
        self.jitter_rng.as_mut().map(|r| r.fork())
    }

    /// Builds a network containing the five Table 1 hosts with the paper's
    /// RTT matrix. Returns the net and host ids in paper order.
    pub fn table1() -> (Net, Vec<HostId>) {
        Net::table1_seeded(None)
    }

    /// [`Net::table1`] with optional capacity jitter (used by the
    /// accuracy experiments, where run-to-run spread matters).
    pub fn table1_seeded(jitter_seed: Option<u64>) -> (Net, Vec<HostId>) {
        let mut net = Net::new();
        net.enable_wan_loss();
        if let Some(seed) = jitter_seed {
            net.enable_jitter(seed);
        }
        let ids: Vec<HostId> = HostProfile::table1().into_iter().map(|p| net.add_host(p)).collect();
        for (i, row) in TABLE1_RTT_MS.iter().enumerate() {
            for (j, &ms) in row.iter().enumerate() {
                if i != j {
                    net.set_rtt(ids[i], ids[j], SimDuration::from_millis(ms));
                }
            }
        }
        (net, ids)
    }

    /// Access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Adds a host, creating its uplink and downlink resources (jittered
    /// if jitter is enabled).
    pub fn add_host(&mut self, profile: HostProfile) -> HostId {
        let tx = self
            .engine
            .add_resource(Resource::pipe(format!("{}/tx", profile.name), profile.nic_up));
        let rx = self
            .engine
            .add_resource(Resource::pipe(format!("{}/rx", profile.name), profile.nic_down));
        if let Some(rng) = self.jitter_rng.as_mut() {
            let sigma =
                if profile.virtualized { JITTER_SIGMA_VIRTUAL } else { JITTER_SIGMA_DEDICATED };
            let fork_tx = rng.fork();
            let fork_rx = rng.fork();
            self.engine.add_jitter(tx, sigma, JITTER_AR, fork_tx);
            self.engine.add_jitter(rx, sigma, JITTER_AR, fork_rx);
        }
        self.hosts.push(HostEntry { profile, tx, rx });
        HostId(self.hosts.len() - 1)
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// A host's profile.
    pub fn profile(&self, h: HostId) -> &HostProfile {
        &self.hosts[h.0].profile
    }

    /// The uplink (transmit) resource of a host.
    pub fn tx(&self, h: HostId) -> ResourceId {
        self.hosts[h.0].tx
    }

    /// The downlink (receive) resource of a host.
    pub fn rx(&self, h: HostId) -> ResourceId {
        self.hosts[h.0].rx
    }

    /// Sets the symmetric RTT between two hosts.
    pub fn set_rtt(&mut self, a: HostId, b: HostId, rtt: SimDuration) {
        self.rtt.insert((a.0, b.0), rtt);
        self.rtt.insert((b.0, a.0), rtt);
    }

    /// Sets the RTT used for host pairs without an explicit entry.
    pub fn set_default_rtt(&mut self, rtt: SimDuration) {
        self.default_rtt = rtt;
    }

    /// The RTT between two hosts.
    pub fn rtt(&self, a: HostId, b: HostId) -> SimDuration {
        if a == b {
            return SimDuration::from_micros(130); // paper's lab loopback-ish RTT
        }
        *self.rtt.get(&(a.0, b.0)).unwrap_or(&self.default_rtt)
    }

    /// Rough path efficiency as a function of RTT: long WAN paths lose
    /// throughput to recovery stalls and queueing (the paper's IN host is
    /// the slowest measurer for exactly this reason).
    pub fn path_efficiency(&self, a: HostId, b: HostId) -> f64 {
        let rtt_s = self.rtt(a, b).as_secs_f64();
        (1.0 / (1.0 + 1.2 * rtt_s)).clamp(0.5, 1.0)
    }

    /// The TCP profile for a connection from `a` to `b`: sender's transmit
    /// buffer, receiver's receive buffer, path RTT, efficiency, and (when
    /// the WAN loss model is enabled) an RTT-proportional loss rate.
    pub fn tcp_profile(&self, a: HostId, b: HostId) -> TcpProfile {
        let ka = &self.profile(a).kernel;
        let kb = &self.profile(b).kernel;
        let kernel = KernelProfile {
            max_rx_buffer: kb.max_rx_buffer,
            max_tx_buffer: ka.max_tx_buffer,
            buffer_efficiency: ka.buffer_efficiency.min(kb.buffer_efficiency),
            loss_recovery: ka.loss_recovery.min(kb.loss_recovery),
        };
        let loss =
            if self.wan_loss { WAN_LOSS_PER_RTT_SEC * self.rtt(a, b).as_secs_f64() } else { 0.0 };
        TcpProfile::new(self.rtt(a, b))
            .with_kernel(kernel)
            .with_path_efficiency(self.path_efficiency(a, b))
            .with_loss_rate(loss)
    }

    /// A flow spec from `a` to `b` over their NIC resources. Extra
    /// resources (relay CPU, token buckets) can be appended by the caller.
    pub fn flow_between(&self, a: HostId, b: HostId) -> FlowSpec {
        FlowSpec::new(vec![self.tx(a), self.rx(b)])
    }

    /// Starts a plain (UDP-like) flow from `a` to `b`.
    pub fn start_udp_flow(&mut self, a: HostId, b: HostId, sockets: u32) -> FlowId {
        let spec = self.flow_between(a, b).with_sockets(sockets);
        self.engine.start_flow(spec)
    }

    /// Starts a TCP-modelled flow from `a` to `b` with `sockets` parallel
    /// connections.
    pub fn start_tcp_flow(&mut self, a: HostId, b: HostId, sockets: u32) -> FlowId {
        let profile = self.tcp_profile(a, b);
        let spec = self.flow_between(a, b).with_sockets(sockets);
        self.engine.start_tcp_flow(spec, profile)
    }
}

impl Default for Net {
    fn default() -> Self {
        Net::new()
    }
}

impl std::fmt::Debug for Net {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Net").field("hosts", &self.hosts.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_profiles_match_paper() {
        let hosts = HostProfile::table1();
        assert_eq!(hosts.len(), 5);
        assert_eq!(hosts[0].name, "US-SW");
        assert!(!hosts[0].virtualized);
        assert!(hosts[1].virtualized);
        assert_eq!(hosts[2].network_type, NetworkType::Residential);
        assert_eq!(hosts[3].cores, 2);
        assert!((hosts[4].nic_up.as_mbit() - 1611.0).abs() < 1e-9);
    }

    #[test]
    fn table1_net_rtts() {
        let (net, ids) = Net::table1();
        assert_eq!(net.rtt(ids[0], ids[3]), SimDuration::from_millis(210));
        assert_eq!(net.rtt(ids[3], ids[0]), SimDuration::from_millis(210));
        assert_eq!(net.rtt(ids[0], ids[4]), SimDuration::from_millis(137));
    }

    #[test]
    fn flow_between_uses_both_nics() {
        let (mut net, ids) = Net::table1();
        let f = net.start_udp_flow(ids[1], ids[0], 1);
        net.engine_mut().run_for(SimDuration::from_secs(1));
        // Bottleneck is min(946 up, 954 down) = 946 Mbit/s.
        let rate = Rate::from_bytes_per_sec(net.engine().flow_rate(f));
        assert!((rate.as_mbit() - 946.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn tcp_profile_efficiency_decreases_with_rtt() {
        let (net, ids) = Net::table1();
        let near = net.path_efficiency(ids[0], ids[1]);
        let far = net.path_efficiency(ids[0], ids[3]);
        assert!(far < near);
    }

    #[test]
    fn same_host_rtt_is_lab_scale() {
        let (net, ids) = Net::table1();
        assert!(net.rtt(ids[0], ids[0]) < SimDuration::from_millis(1));
    }
}
