//! Capacity resources: NIC directions, links, relay CPUs, token buckets.
//!
//! Every throughput limit in the simulation is expressed as a *resource*
//! with a capacity in bytes/second. A [`crate::flow::FlowSpec`] names the
//! resources it crosses; the engine divides each resource's capacity among
//! crossing flows with weighted max-min fairness (see [`crate::flow`]).
//!
//! Three kinds of resources cover everything the paper needs:
//!
//! * **Pipe** — a fixed-rate constraint (a NIC direction or a bottleneck
//!   link on a path).
//! * **Token bucket** — Tor's `BandwidthRate`/`BandwidthBurst` rate limiter.
//!   Accumulated tokens allow a short burst above the sustained rate — the
//!   one-second spike visible at the start of Figure 7 comes from exactly
//!   this mechanism.
//! * **CPU** — a relay's single-threaded cell-processing limit, with a small
//!   per-socket bookkeeping overhead so throughput *declines* as sockets are
//!   added past the peak (Figures 11 and 14).

use crate::units::Rate;

/// Identifies a resource registered with an [`crate::engine::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The raw index of this resource (stable for the engine's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The behaviour of a resource's capacity over time.
#[derive(Debug, Clone, PartialEq)]
pub enum ResourceKind {
    /// Fixed capacity.
    Pipe,
    /// Token bucket with the given burst depth in bytes; the sustained rate
    /// is the resource capacity. The bucket starts full.
    TokenBucket {
        /// Maximum accumulated bytes that may be sent as a burst.
        burst_bytes: f64,
    },
    /// Single-threaded processor: effective capacity shrinks as
    /// `capacity / (1 + overhead_per_socket * total_sockets)`.
    Cpu {
        /// Fractional capacity cost of managing one additional socket.
        overhead_per_socket: f64,
    },
}

/// A named capacity constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    name: String,
    capacity: f64, // bytes/sec
    kind: ResourceKind,
    tokens: f64, // only meaningful for TokenBucket
}

impl Resource {
    /// A fixed-capacity pipe.
    pub fn pipe(name: impl Into<String>, capacity: Rate) -> Self {
        Resource {
            name: name.into(),
            capacity: capacity.bytes_per_sec(),
            kind: ResourceKind::Pipe,
            tokens: 0.0,
        }
    }

    /// An effectively unlimited resource (useful as a placeholder).
    pub fn unlimited(name: impl Into<String>) -> Self {
        Resource::pipe(name, Rate::from_gbit(10_000.0))
    }

    /// A token bucket with sustained `rate` and burst depth `burst_bytes`.
    ///
    /// # Panics
    /// Panics if `burst_bytes` is negative or not finite.
    pub fn token_bucket(name: impl Into<String>, rate: Rate, burst_bytes: f64) -> Self {
        assert!(burst_bytes.is_finite() && burst_bytes >= 0.0, "bad burst {burst_bytes}");
        Resource {
            name: name.into(),
            capacity: rate.bytes_per_sec(),
            kind: ResourceKind::TokenBucket { burst_bytes },
            tokens: burst_bytes, // bucket starts full
        }
    }

    /// A single-threaded CPU with a fractional per-socket overhead.
    ///
    /// # Panics
    /// Panics if `overhead_per_socket` is negative or not finite.
    pub fn cpu(name: impl Into<String>, capacity: Rate, overhead_per_socket: f64) -> Self {
        assert!(
            overhead_per_socket.is_finite() && overhead_per_socket >= 0.0,
            "bad overhead {overhead_per_socket}"
        );
        Resource {
            name: name.into(),
            capacity: capacity.bytes_per_sec(),
            kind: ResourceKind::Cpu { overhead_per_socket },
            tokens: 0.0,
        }
    }

    /// The resource's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base (sustained) capacity.
    pub fn capacity(&self) -> Rate {
        Rate::from_bytes_per_sec(self.capacity)
    }

    /// Replaces the base capacity (e.g. reconfiguring a rate limit).
    pub fn set_capacity(&mut self, capacity: Rate) {
        self.capacity = capacity.bytes_per_sec();
        if let ResourceKind::TokenBucket { burst_bytes } = self.kind {
            self.tokens = self.tokens.min(burst_bytes);
        }
    }

    /// The resource kind.
    pub fn kind(&self) -> &ResourceKind {
        &self.kind
    }

    /// Effective capacity (bytes/sec) available for a tick of `dt_secs`
    /// given `total_sockets` crossing sockets.
    pub(crate) fn effective_capacity(&self, dt_secs: f64, total_sockets: f64) -> f64 {
        match self.kind {
            ResourceKind::Pipe => self.capacity,
            ResourceKind::TokenBucket { burst_bytes } => {
                let available = (self.tokens + self.capacity * dt_secs).min(
                    // Burst depth plus what refills during the tick bounds
                    // the bytes this tick may carry.
                    burst_bytes + self.capacity * dt_secs,
                );
                available / dt_secs
            }
            ResourceKind::Cpu { overhead_per_socket } => {
                self.capacity / (1.0 + overhead_per_socket * total_sockets)
            }
        }
    }

    /// Consumes `used_bytes` over `dt_secs`, updating token-bucket state.
    pub(crate) fn consume(&mut self, used_bytes: f64, dt_secs: f64) {
        if let ResourceKind::TokenBucket { burst_bytes } = self.kind {
            let refilled =
                (self.tokens + self.capacity * dt_secs).min(burst_bytes + self.capacity * dt_secs);
            self.tokens = (refilled - used_bytes).clamp(0.0, burst_bytes);
        }
    }

    /// Current token-bucket fill level (zero for other kinds).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_capacity_constant() {
        let r = Resource::pipe("nic", Rate::from_mbit(100.0));
        assert_eq!(r.effective_capacity(0.1, 0.0), Rate::from_mbit(100.0).bytes_per_sec());
        assert_eq!(r.effective_capacity(1.0, 500.0), Rate::from_mbit(100.0).bytes_per_sec());
    }

    #[test]
    fn token_bucket_allows_initial_burst_then_sustained() {
        let rate = Rate::from_mbit(80.0); // 10 MB/s
        let burst = 10e6; // one second of burst
        let mut r = Resource::token_bucket("limit", rate, burst);
        let dt = 1.0;
        // Full bucket: 10 MB of tokens + 10 MB refill = 20 MB/s effective.
        let first = r.effective_capacity(dt, 0.0);
        assert!((first - 20e6).abs() < 1.0, "first {first}");
        r.consume(first * dt, dt);
        // Bucket drained: only the sustained rate remains.
        let second = r.effective_capacity(dt, 0.0);
        assert!((second - 10e6).abs() < 1.0, "second {second}");
    }

    #[test]
    fn token_bucket_refills_when_idle() {
        let rate = Rate::from_mbit(80.0);
        let mut r = Resource::token_bucket("limit", rate, 5e6);
        r.consume(r.effective_capacity(1.0, 0.0), 1.0); // drain completely
                                                        // Idle for one second at 10 MB/s refill, capped at 5 MB burst depth.
        r.consume(0.0, 1.0);
        assert!((r.tokens() - 5e6).abs() < 1.0);
    }

    #[test]
    fn cpu_overhead_reduces_capacity_with_sockets() {
        let r = Resource::cpu("tor", Rate::from_mbit(1248.0), 0.0015);
        let none = r.effective_capacity(0.1, 0.0);
        let hundred = r.effective_capacity(0.1, 100.0);
        assert!(hundred < none);
        let expected = none / 1.15;
        assert!((hundred - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn set_capacity_clamps_tokens() {
        let mut r = Resource::token_bucket("limit", Rate::from_mbit(80.0), 10e6);
        r.set_capacity(Rate::from_mbit(40.0));
        assert!(r.tokens() <= 10e6);
        assert_eq!(r.capacity(), Rate::from_mbit(40.0));
    }
}
