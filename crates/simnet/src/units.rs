//! Bandwidth and data-size units.
//!
//! The simulator's native units are **bytes** and **bytes per second**
//! (`f64`), while the paper reports **Mbit/s** and **Gbit/s**. These helpers
//! keep conversions explicit so a stray factor of 8 can't sneak in.

/// Bytes in one KiB.
pub const KIB: f64 = 1024.0;
/// Bytes in one MiB.
pub const MIB: f64 = 1024.0 * 1024.0;
/// Bytes in one GiB.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A transfer rate in bytes per second.
///
/// ```
/// use flashflow_simnet::units::Rate;
/// let r = Rate::from_mbit(100.0);
/// assert_eq!(r.bytes_per_sec(), 12_500_000.0);
/// assert!((r.as_mbit() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// The zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// A rate from raw bytes per second.
    ///
    /// # Panics
    /// Panics if `bps` is negative or not finite.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid rate: {bps} B/s");
        Rate(bps)
    }

    /// A rate from megabits per second (decimal megabits, as the paper uses).
    pub fn from_mbit(mbit: f64) -> Self {
        Rate::from_bytes_per_sec(mbit * 1e6 / 8.0)
    }

    /// `const` variant of [`Rate::from_mbit`] for use in constants. Unlike
    /// the runtime constructors it cannot validate its argument, so it is
    /// reserved for literal values.
    pub const fn from_const_mbit(mbit: f64) -> Self {
        Rate(mbit * 1e6 / 8.0)
    }

    /// A rate from gigabits per second.
    pub fn from_gbit(gbit: f64) -> Self {
        Rate::from_mbit(gbit * 1000.0)
    }

    /// A rate from kilobits per second.
    pub fn from_kbit(kbit: f64) -> Self {
        Rate::from_bytes_per_sec(kbit * 1e3 / 8.0)
    }

    /// Raw bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Megabits per second.
    pub fn as_mbit(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// Gigabits per second.
    pub fn as_gbit(self) -> f64 {
        self.as_mbit() / 1000.0
    }

    /// Bytes transferred at this rate over `secs` seconds.
    pub fn bytes_over(self, secs: f64) -> f64 {
        self.0 * secs
    }

    /// The smaller of two rates.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }

    /// Scales the rate by a non-negative factor.
    ///
    /// # Panics
    /// Panics if `k` is negative or not finite.
    pub fn scale(self, k: f64) -> Rate {
        Rate::from_bytes_per_sec(self.0 * k)
    }

    /// True if this rate is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= Rate::from_gbit(1.0).0 {
            write!(f, "{:.3} Gbit/s", self.as_gbit())
        } else {
            write!(f, "{:.2} Mbit/s", self.as_mbit())
        }
    }
}

impl std::ops::Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Rate {
    type Output = Rate;
    fn sub(self, rhs: Rate) -> Rate {
        Rate((self.0 - rhs.0).max(0.0))
    }
}

impl std::iter::Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        Rate(iter.map(|r| r.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_agree() {
        assert_eq!(Rate::from_gbit(1.0).as_mbit(), 1000.0);
        assert_eq!(Rate::from_mbit(8.0).bytes_per_sec(), 1e6);
        assert_eq!(Rate::from_kbit(8000.0), Rate::from_mbit(8.0));
    }

    #[test]
    fn bytes_over_integrates() {
        let r = Rate::from_mbit(80.0); // 10 MB/s
        assert_eq!(r.bytes_over(3.0), 30e6);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let a = Rate::from_mbit(5.0);
        let b = Rate::from_mbit(10.0);
        assert_eq!(a - b, Rate::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Rate::from_mbit(250.0)), "250.00 Mbit/s");
        assert_eq!(format!("{}", Rate::from_gbit(1.5)), "1.500 Gbit/s");
    }

    #[test]
    #[should_panic]
    fn negative_rate_rejected() {
        let _ = Rate::from_bytes_per_sec(-1.0);
    }
}
