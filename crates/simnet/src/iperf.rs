//! iPerf-style capacity probing (paper §6.1, Appendix B).
//!
//! FlashFlow uses iPerf to lower-bound measurer capacity: each measurer
//! exchanges bidirectional UDP traffic with every other team member
//! concurrently for 60 seconds, and the capacity estimate is the median of
//! the per-second rates. This module reproduces that procedure inside the
//! simulator, including the pairwise TCP/UDP probes of Appendix B
//! (Table 3) and the all-to-one saturation runs that fill the last column
//! of Table 1.

use crate::engine::FlowId;
use crate::host::{HostId, Net};
use crate::stats::{median, SecondsAccumulator};
use crate::time::SimDuration;
use crate::units::Rate;

/// Transport used for a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// UDP: paced only by the NICs and path.
    Udp,
    /// TCP: additionally capped by socket buffers and slow start.
    Tcp,
}

/// Result of one iPerf run.
#[derive(Debug, Clone, PartialEq)]
pub struct IperfReport {
    /// Per-second combined throughput samples (bytes).
    pub per_second: Vec<f64>,
    /// Median per-second throughput.
    pub median_rate: Rate,
}

impl IperfReport {
    fn from_seconds(per_second: Vec<f64>) -> Self {
        let med = median(&per_second).unwrap_or(0.0);
        IperfReport { per_second, median_rate: Rate::from_bytes_per_sec(med) }
    }
}

/// Default iPerf run length used throughout the paper.
pub const IPERF_DURATION: SimDuration = SimDuration::from_secs(60);

fn run_flows(net: &mut Net, flows: &[FlowId], duration: SimDuration) -> Vec<f64> {
    let mut acc = SecondsAccumulator::new();
    let dt = net.engine().tick_duration().as_secs_f64();
    let end = net.engine().now() + duration;
    while net.engine().now() < end {
        net.engine_mut().tick();
        let bytes: f64 = flows.iter().map(|f| net.engine().flow_bytes_last_tick(*f)).sum();
        acc.push(bytes, dt);
    }
    for f in flows {
        net.engine_mut().stop_flow(*f);
    }
    acc.into_seconds()
}

/// Bidirectional probe between a pair of hosts, as in Appendix B: reports
/// the per-second *minimum* of the two directions' totals, summarised by
/// its median (the paper's summary statistic for Table 3).
pub fn pairwise_bidirectional(
    net: &mut Net,
    a: HostId,
    b: HostId,
    transport: Transport,
    duration: SimDuration,
) -> IperfReport {
    let (fwd, rev) = match transport {
        Transport::Udp => (net.start_udp_flow(a, b, 4), net.start_udp_flow(b, a, 4)),
        Transport::Tcp => (net.start_tcp_flow(a, b, 4), net.start_tcp_flow(b, a, 4)),
    };
    let mut fwd_acc = SecondsAccumulator::new();
    let mut rev_acc = SecondsAccumulator::new();
    let dt = net.engine().tick_duration().as_secs_f64();
    let end = net.engine().now() + duration;
    while net.engine().now() < end {
        net.engine_mut().tick();
        fwd_acc.push(net.engine().flow_bytes_last_tick(fwd), dt);
        rev_acc.push(net.engine().flow_bytes_last_tick(rev), dt);
    }
    net.engine_mut().stop_flow(fwd);
    net.engine_mut().stop_flow(rev);
    let per_second: Vec<f64> =
        fwd_acc.seconds().iter().zip(rev_acc.seconds()).map(|(f, r)| f.min(*r)).collect();
    IperfReport::from_seconds(per_second)
}

/// All-to-one saturation probe: every `source` sends UDP to `target`
/// simultaneously; the per-second totals received at the target are summed
/// (Table 1's "BW (measured)" row and Table 3's "UDP (many)" column).
pub fn saturate_target(
    net: &mut Net,
    target: HostId,
    sources: &[HostId],
    duration: SimDuration,
) -> IperfReport {
    let flows: Vec<FlowId> = sources.iter().map(|s| net.start_udp_flow(*s, target, 8)).collect();
    let seconds = run_flows(net, &flows, duration);
    IperfReport::from_seconds(seconds)
}

/// The team-capacity estimation FlashFlow performs when a measurer joins
/// (§4.2 "Measuring Measurers"): `host` exchanges bidirectional UDP with
/// every other team member concurrently; the estimate is the median of the
/// per-second totals it simultaneously sends *and* receives (the minimum
/// of the two directions, since forwarding requires both).
pub fn measure_measurer(
    net: &mut Net,
    host: HostId,
    team: &[HostId],
    duration: SimDuration,
) -> IperfReport {
    let mut out_flows = Vec::new();
    let mut in_flows = Vec::new();
    for peer in team {
        if *peer == host {
            continue;
        }
        out_flows.push(net.start_udp_flow(host, *peer, 4));
        in_flows.push(net.start_udp_flow(*peer, host, 4));
    }
    assert!(!out_flows.is_empty(), "team must contain another member");
    let mut out_acc = SecondsAccumulator::new();
    let mut in_acc = SecondsAccumulator::new();
    let dt = net.engine().tick_duration().as_secs_f64();
    let end = net.engine().now() + duration;
    while net.engine().now() < end {
        net.engine_mut().tick();
        let out_bytes: f64 = out_flows.iter().map(|f| net.engine().flow_bytes_last_tick(*f)).sum();
        let in_bytes: f64 = in_flows.iter().map(|f| net.engine().flow_bytes_last_tick(*f)).sum();
        out_acc.push(out_bytes, dt);
        in_acc.push(in_bytes, dt);
    }
    for f in out_flows.iter().chain(&in_flows) {
        net.engine_mut().stop_flow(*f);
    }
    let per_second: Vec<f64> =
        out_acc.seconds().iter().zip(in_acc.seconds()).map(|(o, i)| o.min(*i)).collect();
    IperfReport::from_seconds(per_second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Net;

    #[test]
    fn saturation_reaches_nic_limit() {
        let (mut net, ids) = Net::table1();
        let report = saturate_target(
            &mut net,
            ids[0],
            &[ids[1], ids[2], ids[3], ids[4]],
            SimDuration::from_secs(10),
        );
        // US-SW's downlink is 954 Mbit/s; four senders saturate it.
        assert!((report.median_rate.as_mbit() - 954.0).abs() < 5.0, "{}", report.median_rate);
    }

    #[test]
    fn pairwise_udp_hits_slower_nic() {
        let (mut net, ids) = Net::table1();
        let report = pairwise_bidirectional(
            &mut net,
            ids[0],
            ids[2],
            Transport::Udp,
            SimDuration::from_secs(10),
        );
        // Bottleneck 941 Mbit/s (US-E NIC).
        assert!((report.median_rate.as_mbit() - 941.0).abs() < 5.0, "{}", report.median_rate);
    }

    #[test]
    fn pairwise_tcp_below_udp_on_long_paths() {
        let (mut net, ids) = Net::table1();
        let udp = pairwise_bidirectional(
            &mut net,
            ids[0],
            ids[3],
            Transport::Udp,
            SimDuration::from_secs(10),
        );
        let (mut net2, ids2) = Net::table1();
        let tcp = pairwise_bidirectional(
            &mut net2,
            ids2[0],
            ids2[3],
            Transport::Tcp,
            SimDuration::from_secs(10),
        );
        assert!(
            tcp.median_rate.bytes_per_sec() < udp.median_rate.bytes_per_sec(),
            "tcp {} vs udp {}",
            tcp.median_rate,
            udp.median_rate
        );
    }

    #[test]
    fn measure_measurer_bounded_by_own_nic() {
        let (mut net, ids) = Net::table1();
        let report = measure_measurer(&mut net, ids[4], &ids, SimDuration::from_secs(10));
        // NL's NIC is 1611 Mbit/s; peers can't exceed it and the minimum of
        // both directions can't either.
        assert!(report.median_rate.as_mbit() <= 1611.0 + 1.0);
        assert!(report.median_rate.as_mbit() > 500.0);
    }

    #[test]
    fn report_median_matches_seconds() {
        let (mut net, ids) = Net::table1();
        let report = saturate_target(&mut net, ids[1], &[ids[0]], SimDuration::from_secs(5));
        assert_eq!(report.per_second.len(), 5);
        let med = median(&report.per_second).unwrap();
        assert_eq!(report.median_rate.bytes_per_sec(), med);
    }
}
