//! Small statistics toolkit shared by every experiment.
//!
//! The paper summarises nearly everything with medians, percentiles, CDFs,
//! and the relative standard deviation (Appendix A, Eq. 7); these helpers
//! implement those reductions once, with care around empty input and NaN.

/// Returns the arithmetic mean, or `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Returns the population standard deviation, or `None` for empty input.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Relative standard deviation `stdev(V)/mean(V)` (paper Eq. 7).
///
/// Returns `None` for empty input or a zero mean.
pub fn relative_std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(values)? / m)
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) using linear interpolation, or
/// `None` for empty input.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Returns the median, or `None` for empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Returns `(min, max)` or `None` for empty input.
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        assert!(!v.is_nan(), "NaN in min_max input");
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some((lo, hi))
}

/// An empirical cumulative distribution function over a sample.
///
/// ```
/// use flashflow_simnet::stats::Ecdf;
/// let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample.
    ///
    /// # Panics
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empty ECDF sample");
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF sample"));
        Ecdf { sorted: values }
    }

    /// Number of points in the sample.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of the sample that is ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile of the sample (linear interpolation).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.sorted, q).expect("ECDF is never empty")
    }

    /// The median of the sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Iterates `(value, cumulative_fraction)` pairs, one per sample point.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted.iter().enumerate().map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }

    /// Renders the CDF sampled at `n` evenly spaced quantiles, for printing.
    pub fn sampled(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two sample points");
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

/// Accumulates per-tick byte counts into a per-second series.
///
/// FlashFlow's estimator consumes *per-second* byte totals (`x_j`, `y_j` in
/// §4.1); the simulator ticks faster than once per second, so experiments
/// feed every tick into this accumulator and read whole seconds out.
#[derive(Debug, Clone, Default)]
pub struct SecondsAccumulator {
    /// Completed whole-second totals.
    complete: Vec<f64>,
    /// Bytes in the currently accumulating second.
    partial: f64,
    /// How much of the current second has elapsed.
    partial_secs: f64,
}

impl SecondsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` transferred over `dt_secs` of simulated time.
    ///
    /// # Panics
    /// Panics if `dt_secs` is negative, zero, or not finite.
    pub fn push(&mut self, bytes: f64, dt_secs: f64) {
        assert!(dt_secs > 0.0 && dt_secs.is_finite(), "bad tick duration {dt_secs}");
        let mut remaining_dt = dt_secs;
        let mut remaining_bytes = bytes;
        while remaining_dt > 0.0 {
            let room = 1.0 - self.partial_secs;
            let take = remaining_dt.min(room);
            let frac = take / remaining_dt;
            let byte_share = remaining_bytes * frac;
            self.partial += byte_share;
            self.partial_secs += take;
            remaining_bytes -= byte_share;
            remaining_dt -= take;
            if self.partial_secs >= 1.0 - 1e-12 {
                self.complete.push(self.partial);
                self.partial = 0.0;
                self.partial_secs = 0.0;
            }
        }
    }

    /// The completed per-second byte totals so far.
    pub fn seconds(&self) -> &[f64] {
        &self.complete
    }

    /// Consumes the accumulator, returning completed seconds (the trailing
    /// partial second is discarded, matching how the paper's per-second
    /// reports work).
    pub fn into_seconds(self) -> Vec<f64> {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(std_dev(&v), Some(2.0));
        assert_eq!(relative_std_dev(&v), Some(0.4));
    }

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&v, 0.0), Some(10.0));
        assert_eq!(quantile(&v, 1.0), Some(50.0));
        assert_eq!(quantile(&v, 0.25), Some(20.0));
        assert_eq!(quantile(&v, 0.75), Some(40.0));
        assert_eq!(quantile(&v, 0.125), Some(15.0));
    }

    #[test]
    fn ecdf_fractions() {
        let cdf = Ecdf::new(vec![1.0, 1.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(3.0), 1.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn ecdf_points_monotone() {
        let cdf = Ecdf::new(vec![5.0, 3.0, 8.0, 1.0]);
        let pts: Vec<_> = cdf.points().collect();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn seconds_accumulator_sub_second_ticks() {
        let mut acc = SecondsAccumulator::new();
        // Ten 0.1 s ticks of 100 bytes each = one second of 1000 bytes.
        for _ in 0..10 {
            acc.push(100.0, 0.1);
        }
        assert_eq!(acc.seconds().len(), 1);
        assert!((acc.seconds()[0] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn seconds_accumulator_splits_spanning_ticks() {
        let mut acc = SecondsAccumulator::new();
        // One 2.5 s tick of 2500 bytes: two complete seconds of 1000 each.
        acc.push(2500.0, 2.5);
        assert_eq!(acc.seconds().len(), 2);
        assert!((acc.seconds()[0] - 1000.0).abs() < 1e-6);
        assert!((acc.seconds()[1] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn seconds_accumulator_drops_trailing_partial() {
        let mut acc = SecondsAccumulator::new();
        acc.push(300.0, 1.5);
        assert_eq!(acc.into_seconds().len(), 1);
    }
}
