//! TCP throughput model: socket buffers, bandwidth-delay product, slow
//! start, and kernel tuning profiles.
//!
//! Appendix D of the paper studies how the Linux kernel's socket-buffer
//! limits cap a single connection's throughput on high-BDP paths, and how
//! adding sockets (FlashFlow's `s` parameter) sidesteps the per-socket
//! limit. We model a TCP connection's achievable rate as
//!
//! ```text
//! rate ≤ min(effective_buffer / RTT, ramp(t)) × efficiency
//! ```
//!
//! where `effective_buffer` comes from the kernel profile (default
//! autotuning tops out near 4/6 MiB read/write; the paper's "tuned" kernel
//! raises both to 64 MiB), and `ramp(t)` is an exponential slow-start
//! envelope that doubles every RTT from an initial window of ten segments.
//! The `efficiency` factor absorbs header overhead and loss-recovery
//! stalls, which grow with RTT on real WAN paths.

use crate::time::SimDuration;
use crate::units::Rate;

/// Standard Ethernet-ish maximum segment size in bytes.
pub const MSS: f64 = 1460.0;

/// TCP initial congestion window (RFC 6928) in segments.
pub const INITIAL_WINDOW_SEGMENTS: f64 = 10.0;

/// Kernel socket-buffer configuration (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Maximum receive-buffer bytes the kernel will autotune to.
    pub max_rx_buffer: f64,
    /// Maximum send-buffer bytes.
    pub max_tx_buffer: f64,
    /// Fraction of the nominal buffer a connection effectively fills
    /// (autotuning overhead, `tcp_adv_win_scale`, bookkeeping).
    pub buffer_efficiency: f64,
    /// Multiplier on the path loss rate a connection effectively sees:
    /// ample buffering keeps the pipe full through recovery episodes, so
    /// the tuned kernel behaves as if loss were rarer.
    pub loss_recovery: f64,
}

impl KernelProfile {
    /// The defaults Linux picks on the paper's hosts: 4 MiB read / 6 MiB
    /// write maximums.
    pub fn default_linux() -> Self {
        KernelProfile {
            max_rx_buffer: 4.0 * 1024.0 * 1024.0,
            max_tx_buffer: 6.0 * 1024.0 * 1024.0,
            buffer_efficiency: 0.75,
            loss_recovery: 1.0,
        }
    }

    /// The paper's tuned kernel: 64 MiB maximums for both directions.
    pub fn tuned() -> Self {
        KernelProfile {
            max_rx_buffer: 64.0 * 1024.0 * 1024.0,
            max_tx_buffer: 64.0 * 1024.0 * 1024.0,
            buffer_efficiency: 0.75,
            loss_recovery: 0.5,
        }
    }

    /// The buffer bytes that actually bound in-flight data: the smaller
    /// direction times the efficiency factor.
    pub fn effective_window_bytes(&self) -> f64 {
        self.max_rx_buffer.min(self.max_tx_buffer) * self.buffer_efficiency
    }

    /// Steady-state per-socket throughput cap for a path with `rtt`.
    ///
    /// # Panics
    /// Panics if `rtt` is zero.
    pub fn bdp_cap(&self, rtt: SimDuration) -> Rate {
        let rtt_s = rtt.as_secs_f64();
        assert!(rtt_s > 0.0, "rtt must be positive");
        Rate::from_bytes_per_sec(self.effective_window_bytes() / rtt_s)
    }
}

impl Default for KernelProfile {
    fn default() -> Self {
        KernelProfile::default_linux()
    }
}

/// Parameters of one TCP connection (or a bundle of identical ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpProfile {
    /// Round-trip time of the path.
    pub rtt: SimDuration,
    /// Kernel buffer configuration.
    pub kernel: KernelProfile,
    /// Protocol efficiency on this path (headers, recovery stalls). WAN
    /// paths with higher loss see lower efficiency.
    pub path_efficiency: f64,
    /// Packet-loss probability on the path. Zero on clean lab links;
    /// positive on WAN paths, where it caps per-socket throughput via
    /// the Mathis relation `MSS/RTT × 1.22/√loss` — the reason FlashFlow
    /// needs many sockets (`s = 160`) over the Internet.
    pub loss_rate: f64,
}

impl TcpProfile {
    /// A connection profile over a path with round-trip time `rtt`.
    pub fn new(rtt: SimDuration) -> Self {
        TcpProfile {
            rtt,
            kernel: KernelProfile::default_linux(),
            path_efficiency: 1.0,
            loss_rate: 0.0,
        }
    }

    /// Sets the path loss rate in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if outside `[0, 1)`.
    pub fn with_loss_rate(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "bad loss rate {loss}");
        self.loss_rate = loss;
        self
    }

    /// The Mathis-equation throughput ceiling for this path, or infinity
    /// on loss-free paths.
    pub fn mathis_cap(&self) -> f64 {
        let eff_loss = self.loss_rate * self.kernel.loss_recovery;
        if eff_loss <= 0.0 {
            return f64::INFINITY;
        }
        let rtt_s = self.rtt.as_secs_f64();
        (MSS / rtt_s) * 1.22 / eff_loss.sqrt()
    }

    /// Uses the given kernel profile.
    pub fn with_kernel(mut self, kernel: KernelProfile) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the path efficiency factor in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if outside `(0, 1]`.
    pub fn with_path_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "bad efficiency {eff}");
        self.path_efficiency = eff;
        self
    }

    /// Steady-state per-socket cap (bytes/sec): the tighter of the
    /// buffer/BDP limit and the loss (Mathis) limit.
    pub fn steady_cap(&self) -> f64 {
        let buffer_cap = self.kernel.bdp_cap(self.rtt).bytes_per_sec();
        buffer_cap.min(self.mathis_cap()) * self.path_efficiency
    }

    /// Slow-start envelope: the rate the window allows after `elapsed`
    /// time, before hitting the steady-state cap. The initial window is
    /// ten segments per RTT, doubling each RTT.
    pub fn ramp_cap(&self, elapsed: SimDuration) -> f64 {
        let rtt_s = self.rtt.as_secs_f64();
        if rtt_s <= 0.0 {
            return self.steady_cap();
        }
        let initial = INITIAL_WINDOW_SEGMENTS * MSS / rtt_s;
        let doublings = (elapsed.as_secs_f64() / rtt_s).min(60.0);
        let ramped = initial * 2f64.powf(doublings);
        ramped.min(self.steady_cap())
    }

    /// Time for the ramp to reach the steady-state cap.
    pub fn ramp_time(&self) -> SimDuration {
        let rtt_s = self.rtt.as_secs_f64();
        let initial = INITIAL_WINDOW_SEGMENTS * MSS / rtt_s;
        let steady = self.steady_cap();
        if steady <= initial {
            return SimDuration::ZERO;
        }
        let doublings = (steady / initial).log2();
        SimDuration::from_secs_f64(doublings * rtt_s)
    }
}

/// Evolving state of a live TCP flow in the engine: tracks elapsed time so
/// the slow-start envelope can be applied as a per-tick cap.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TcpState {
    elapsed: f64, // seconds since flow start
}

impl TcpState {
    /// Fresh connection state.
    pub fn new() -> Self {
        TcpState { elapsed: 0.0 }
    }

    /// The per-socket cap for the upcoming tick.
    pub fn current_cap(&self, profile: &TcpProfile) -> f64 {
        profile.ramp_cap(SimDuration::from_secs_f64(self.elapsed))
    }

    /// Advances connection time by one tick.
    pub fn advance(&mut self, dt_secs: f64) {
        self.elapsed += dt_secs;
    }
}

/// Aggregate cap for `n` parallel sockets sharing one profile: `n` sockets
/// each contribute a window, so the bundle cap is `n ×` the per-socket cap.
pub fn bundle_cap(profile: &TcpProfile, state: &TcpState, sockets: u32) -> f64 {
    f64::from(sockets.max(1)) * state.current_cap(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdp_cap_shrinks_with_rtt() {
        let k = KernelProfile::default_linux();
        let fast = k.bdp_cap(SimDuration::from_millis(28));
        let slow = k.bdp_cap(SimDuration::from_millis(340));
        assert!(fast.bytes_per_sec() > slow.bytes_per_sec());
        // Ratio should be exactly the inverse RTT ratio.
        let ratio = fast.bytes_per_sec() / slow.bytes_per_sec();
        assert!((ratio - 340.0 / 28.0).abs() < 1e-9);
    }

    #[test]
    fn tuned_kernel_raises_cap() {
        let rtt = SimDuration::from_millis(120);
        let default = KernelProfile::default_linux().bdp_cap(rtt);
        let tuned = KernelProfile::tuned().bdp_cap(rtt);
        assert!(tuned.bytes_per_sec() > default.bytes_per_sec() * 10.0);
    }

    #[test]
    fn default_kernel_is_write_limited_by_read_buffer() {
        // min(4 MiB, 6 MiB) = 4 MiB governs.
        let k = KernelProfile::default_linux();
        assert_eq!(k.effective_window_bytes(), 4.0 * 1024.0 * 1024.0 * 0.75);
    }

    #[test]
    fn ramp_reaches_steady_state() {
        let p = TcpProfile::new(SimDuration::from_millis(100));
        let at_start = p.ramp_cap(SimDuration::ZERO);
        assert!((at_start - 10.0 * MSS / 0.1).abs() < 1e-6);
        let done = p.ramp_cap(p.ramp_time() + SimDuration::from_secs(1));
        assert!((done - p.steady_cap()).abs() < 1e-6);
    }

    #[test]
    fn ramp_monotone_nondecreasing() {
        let p = TcpProfile::new(SimDuration::from_millis(50));
        let mut last = 0.0;
        for ms in (0..2000).step_by(50) {
            let c = p.ramp_cap(SimDuration::from_millis(ms));
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn bundle_scales_with_sockets() {
        let p = TcpProfile::new(SimDuration::from_millis(100));
        let mut s = TcpState::new();
        s.advance(60.0); // steady state
        let one = bundle_cap(&p, &s, 1);
        let many = bundle_cap(&p, &s, 160);
        assert!((many - 160.0 * one).abs() < 1e-6);
    }

    #[test]
    fn path_efficiency_scales_cap() {
        let rtt = SimDuration::from_millis(100);
        let base = TcpProfile::new(rtt).steady_cap();
        let lossy = TcpProfile::new(rtt).with_path_efficiency(0.5).steady_cap();
        assert!((lossy - base * 0.5).abs() < 1e-9);
    }
}
