//! Weighted max-min fair rate allocation (progressive filling).
//!
//! A *flow* is a unidirectional fluid stream crossing an ordered set of
//! resources. FlashFlow's echo measurement appears as a single flow whose
//! path contains the measurer's uplink, the relay's downlink, CPU, and
//! uplink, and the measurer's downlink — so one allocation captures the full
//! send/decrypt/return loop.
//!
//! The allocator implements the classic progressive-filling algorithm
//! extended with per-flow weights (a flow aggregating `n` TCP sockets gets
//! `n` shares at a bottleneck, which is how "more measurement sockets win
//! more of the relay" emerges naturally) and per-flow rate caps (application
//! limits, TCP window/BDP limits, scheduler ceilings).

use crate::resource::ResourceId;

/// Description of one fluid flow for the allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Resources this flow consumes, in path order. Duplicate entries are
    /// allowed and count double (a flow looping through the same NIC).
    pub path: Vec<ResourceId>,
    /// Relative share weight at a contended resource (≈ socket count).
    pub weight: f64,
    /// Number of underlying TCP sockets (drives CPU per-socket overhead).
    pub sockets: u32,
    /// Optional absolute rate cap in bytes/sec (app or window limited).
    pub cap: Option<f64>,
}

impl FlowSpec {
    /// A flow over `path` with weight 1 and one socket.
    pub fn new(path: Vec<ResourceId>) -> Self {
        FlowSpec { path, weight: 1.0, sockets: 1, cap: None }
    }

    /// Sets the bottleneck share weight.
    ///
    /// # Panics
    /// Panics if `weight` is not strictly positive and finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "bad weight {weight}");
        self.weight = weight;
        self
    }

    /// Sets the socket count (also used as the share weight unless
    /// overridden).
    pub fn with_sockets(mut self, sockets: u32) -> Self {
        self.sockets = sockets;
        self.weight = f64::from(sockets.max(1));
        self
    }

    /// Sets an absolute rate cap in bytes/sec.
    ///
    /// # Panics
    /// Panics if `cap` is negative or not finite.
    pub fn with_cap(mut self, cap: f64) -> Self {
        assert!(cap.is_finite() && cap >= 0.0, "bad cap {cap}");
        self.cap = Some(cap);
        self
    }
}

/// Input view of one flow for [`max_min_rates`].
#[derive(Debug, Clone)]
pub struct AllocFlow<'a> {
    /// Resource indices (into the capacity slice) crossed by the flow.
    pub path: &'a [ResourceId],
    /// Share weight.
    pub weight: f64,
    /// Optional absolute cap in bytes/sec.
    pub cap: Option<f64>,
}

const EPS_REL: f64 = 1e-9;

/// Computes weighted max-min fair rates.
///
/// `capacities[i]` is the effective capacity (bytes/sec) of resource `i`
/// for this allocation round. Returns one rate per flow, in order.
///
/// Invariants (verified by property tests):
/// * no resource is used beyond its capacity;
/// * no flow exceeds its cap;
/// * every flow is *bottlenecked*: it sits at its cap or crosses a
///   saturated resource.
///
/// # Panics
/// Panics if a flow references an out-of-range resource, has a
/// non-positive weight, or has an empty path and no cap (its fair rate
/// would be unbounded).
pub fn max_min_rates(capacities: &[f64], flows: &[AllocFlow<'_>]) -> Vec<f64> {
    let nr = capacities.len();
    let nf = flows.len();
    for (i, f) in flows.iter().enumerate() {
        assert!(f.weight.is_finite() && f.weight > 0.0, "flow {i}: bad weight {}", f.weight);
        assert!(!f.path.is_empty() || f.cap.is_some(), "flow {i}: empty path requires a cap");
        for r in f.path {
            assert!(r.index() < nr, "flow {i}: resource {} out of range", r.index());
        }
    }

    let mut rates = vec![0.0f64; nf];
    let mut frozen = vec![false; nf];
    let mut remaining: Vec<f64> = capacities.iter().map(|c| c.max(0.0)).collect();
    let mut active = nf;

    while active > 0 {
        // Weight mass crossing each resource from unfrozen flows. A path may
        // visit a resource multiple times; each visit consumes capacity.
        let mut wsum = vec![0.0f64; nr];
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            for r in f.path {
                wsum[r.index()] += f.weight;
            }
        }

        // Tightest resource constraint: the smallest fair share any resource
        // can still hand out per unit of weight.
        let mut res_share = f64::INFINITY;
        for r in 0..nr {
            if wsum[r] > 0.0 {
                res_share = res_share.min(remaining[r].max(0.0) / wsum[r]);
            }
        }

        // Tightest cap constraint among unfrozen flows.
        let mut cap_share = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if let Some(cap) = f.cap {
                cap_share = cap_share.min(cap / f.weight);
            }
        }

        let share = res_share.min(cap_share);

        if share.is_infinite() {
            // Remaining flows cross no finite constraint: they were promised
            // a cap (checked above) so cap_share must have been finite —
            // reaching here means all unfrozen flows have empty paths and
            // infinite caps, which construction forbids.
            unreachable!("unbounded flows remain");
        }

        let tol = share.abs().max(1.0) * EPS_REL;

        let mut froze_any = false;
        if cap_share <= res_share {
            // Cap-limited flows freeze at their caps.
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if let Some(cap) = f.cap {
                    if cap / f.weight <= share + tol {
                        rates[i] = cap;
                        frozen[i] = true;
                        active -= 1;
                        froze_any = true;
                        for r in f.path {
                            remaining[r.index()] = (remaining[r.index()] - cap).max(0.0);
                        }
                    }
                }
            }
        }
        if !froze_any {
            // Freeze every flow crossing a bottleneck resource.
            let mut bottleneck = vec![false; nr];
            for r in 0..nr {
                if wsum[r] > 0.0 && remaining[r].max(0.0) / wsum[r] <= share + tol {
                    bottleneck[r] = true;
                }
            }
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if f.path.iter().any(|r| bottleneck[r.index()]) {
                    let rate = (f.weight * share).min(f.cap.unwrap_or(f64::INFINITY));
                    rates[i] = rate;
                    frozen[i] = true;
                    active -= 1;
                    froze_any = true;
                    for r in f.path {
                        remaining[r.index()] = (remaining[r.index()] - rate).max(0.0);
                    }
                }
            }
        }
        debug_assert!(froze_any, "progressive filling made no progress");
        if !froze_any {
            // Defensive: freeze everything at the current share to
            // guarantee termination even under pathological float inputs.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    rates[i] = (f.weight * share).min(f.cap.unwrap_or(f64::INFINITY));
                    frozen[i] = true;
                    active -= 1;
                }
            }
        }
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: usize) -> ResourceId {
        ResourceId(i)
    }

    fn flows_of<'a>(specs: &'a [(Vec<ResourceId>, f64, Option<f64>)]) -> Vec<AllocFlow<'a>> {
        specs.iter().map(|(p, w, c)| AllocFlow { path: p, weight: *w, cap: *c }).collect()
    }

    #[test]
    fn equal_split_on_single_bottleneck() {
        let caps = [100.0];
        let specs = vec![
            (vec![rid(0)], 1.0, None),
            (vec![rid(0)], 1.0, None),
            (vec![rid(0)], 1.0, None),
            (vec![rid(0)], 1.0, None),
        ];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        for r in rates {
            assert!((r - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_split() {
        let caps = [120.0];
        let specs =
            vec![(vec![rid(0)], 1.0, None), (vec![rid(0)], 2.0, None), (vec![rid(0)], 3.0, None)];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert!((rates[0] - 20.0).abs() < 1e-6);
        assert!((rates[1] - 40.0).abs() < 1e-6);
        assert!((rates[2] - 60.0).abs() < 1e-6);
    }

    #[test]
    fn cap_frees_capacity_for_others() {
        let caps = [100.0];
        let specs = vec![(vec![rid(0)], 1.0, Some(10.0)), (vec![rid(0)], 1.0, None)];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert!((rates[0] - 10.0).abs() < 1e-6);
        assert!((rates[1] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn classic_three_link_example() {
        // Textbook max-min: links of 10 and 5; flow A crosses both,
        // B crosses link0 only, C crosses link1 only.
        let caps = [10.0, 5.0];
        let specs = vec![
            (vec![rid(0), rid(1)], 1.0, None), // A
            (vec![rid(0)], 1.0, None),         // B
            (vec![rid(1)], 1.0, None),         // C
        ];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert!((rates[0] - 2.5).abs() < 1e-6, "A = {}", rates[0]);
        assert!((rates[1] - 7.5).abs() < 1e-6, "B = {}", rates[1]);
        assert!((rates[2] - 2.5).abs() < 1e-6, "C = {}", rates[2]);
    }

    #[test]
    fn repeated_resource_counts_twice() {
        // A flow visiting the same pipe twice can use at most half of it.
        let caps = [100.0];
        let specs = vec![(vec![rid(0), rid(0)], 1.0, None)];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert!((rates[0] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn empty_path_with_cap_gets_cap() {
        let caps: [f64; 0] = [];
        let specs = vec![(vec![], 1.0, Some(42.0))];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert_eq!(rates[0], 42.0);
    }

    #[test]
    #[should_panic]
    fn empty_path_without_cap_panics() {
        let caps: [f64; 0] = [];
        let specs = vec![(vec![], 1.0, None)];
        let _ = max_min_rates(&caps, &flows_of(&specs));
    }

    #[test]
    fn zero_capacity_resource_starves_flows() {
        let caps = [0.0];
        let specs = vec![(vec![rid(0)], 1.0, None)];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = max_min_rates(&[5.0], &[]);
        assert!(rates.is_empty());
    }

    #[test]
    fn sockets_weighting_mirrors_measurement_contention() {
        // 160 measurement sockets vs 20 client sockets on a 1 Gbit/s relay:
        // measurement takes 160/180 of the capacity.
        let cap = 125e6;
        let caps = [cap];
        let specs = vec![(vec![rid(0)], 160.0, None), (vec![rid(0)], 20.0, None)];
        let rates = max_min_rates(&caps, &flows_of(&specs));
        assert!((rates[0] / cap - 160.0 / 180.0).abs() < 1e-9);
        assert!((rates[1] / cap - 20.0 / 180.0).abs() < 1e-9);
    }
}
