//! Deterministic, forkable random number generation.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`] seeded
//! from the experiment configuration, so identical seeds produce identical
//! traces. `SimRng` implements xoshiro256** (public domain, Blackman/Vigna)
//! with SplitMix64 seeding, plus the handful of distribution samplers the
//! experiments need. We deliberately avoid platform- or version-dependent
//! generators for long-term reproducibility.

/// A deterministic pseudorandom generator (xoshiro256**).
///
/// ```
/// use flashflow_simnet::rng::SimRng;
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Derives an independent child generator from this one.
    ///
    /// Forking lets each simulated component own its stream so that adding
    /// or removing draws in one component does not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    /// Derives a child generator labeled by `tag`, independent of draw order.
    pub fn fork_named(&self, tag: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Mix the fork tag with our current state without advancing it.
        SimRng::seed_from_u64(h ^ self.s[0].rotate_left(17) ^ self.s[2])
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        // Lemire-style rejection to avoid modulo bias.
        let n64 = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n64 as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n64 || lo >= n64.wrapping_neg() % n64 {
                return hi as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_index((hi - lo) as usize) as u64
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn gen_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gen_normal(mu, sigma).exp()
    }

    /// Exponential with the given mean (`1/lambda`).
    ///
    /// # Panics
    /// Panics if `mean <= 0`.
    pub fn gen_exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Pareto with scale `x_min` and shape `alpha` (heavy-tailed sizes).
    ///
    /// # Panics
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn gen_pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "bad pareto parameters");
        x_min / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: first k positions are the sample.
        for i in 0..k {
            let j = i + self.gen_index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Picks one element of a slice uniformly.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }

    /// Picks an index with probability proportional to `weights`.
    ///
    /// # Panics
    /// Panics if weights are empty, negative, or all zero.
    pub fn choose_weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "empty weights");
        let total: f64 = weights
            .iter()
            .map(|w| {
                assert!(*w >= 0.0 && w.is_finite(), "bad weight {w}");
                *w
            })
            .sum();
        assert!(total > 0.0, "all weights zero");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= *w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_named_is_order_independent() {
        let base = SimRng::seed_from_u64(99);
        let mut x = base.fork_named("alpha");
        let mut y = base.fork_named("alpha");
        assert_eq!(x.next_u64(), y.next_u64());
        let mut z = base.fork_named("beta");
        assert_ne!(x.next_u64(), z.next_u64());
    }

    #[test]
    fn uniform_unit_interval_bounds_and_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_index_unbiased_small_range() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        const N: usize = 50_000;
        for _ in 0..N {
            counts[rng.gen_index(5)] += 1;
        }
        for c in counts {
            let frac = c as f64 / N as f64;
            assert!((frac - 0.2).abs() < 0.02, "bucket fraction {frac}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(5);
        const N: usize = 50_000;
        let samples: Vec<f64> = (0..N).map(|_| rng.gen_normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(13);
        const N: usize = 50_000;
        let mean = (0..N).map(|_| rng.gen_exponential(3.0)).sum::<f64>() / N as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_lower_bound_holds() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..1000 {
            assert!(rng.gen_pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::seed_from_u64(23);
        let picked = rng.sample_indices(50, 20);
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::seed_from_u64(31);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        const N: usize = 40_000;
        for _ in 0..N {
            counts[rng.choose_weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / N as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0 {frac0}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(37);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
