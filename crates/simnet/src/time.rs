//! Simulation time: nanosecond-resolution instants and durations.
//!
//! All simulator state is keyed on [`SimTime`], a monotonically increasing
//! instant measured from the start of the simulation. Wall-clock time is
//! never consulted anywhere in the workspace; this is what makes every
//! experiment deterministic and replayable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulated time, measured in nanoseconds since simulation
/// start.
///
/// ```
/// use flashflow_simnet::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(30);
/// assert_eq!(t.as_secs_f64(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds since simulation start.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Builds an instant from fractional seconds since simulation start.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime seconds: {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whole seconds since simulation start (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier <= self, "duration_since: {earlier:?} is after {self:?}");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference; zero if `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimDuration seconds: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Builds a duration from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        SimDuration::from_secs(hours * 3600)
    }

    /// Builds a duration from whole days.
    pub fn from_days(days: u64) -> Self {
        SimDuration::from_secs(days * 86_400)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whole seconds (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// True if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked division of two durations, returning the ratio.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 10.5);
        assert_eq!(t.as_secs(), 10);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    fn duration_construction_units_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn saturating_duration_is_zero_backwards() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_secs(4));
    }

    #[test]
    #[should_panic]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn fractional_seconds_round() {
        let d = SimDuration::from_secs_f64(0.1);
        assert_eq!(d.as_nanos(), 100_000_000);
        assert!((d.as_secs_f64() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ratio_divides() {
        let a = SimDuration::from_secs(30);
        let b = SimDuration::from_secs(60);
        assert_eq!(a.ratio(b), 0.5);
    }
}
