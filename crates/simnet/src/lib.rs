//! # flashflow-simnet
//!
//! Deterministic discrete-event **fluid network simulator** — the substrate
//! the FlashFlow reproduction runs on in place of the paper's Internet
//! vantage points and Shadow testbed.
//!
//! The model: every throughput constraint (NIC direction, rate limiter,
//! relay CPU) is a [`resource::Resource`]; traffic is a set of
//! [`flow::FlowSpec`] fluid flows crossing resources; each engine tick
//! divides capacity among flows with **weighted max-min fairness**
//! ([`flow::max_min_rates`]), applies TCP window/slow-start caps
//! ([`tcp`]), moves bytes, and advances time.
//!
//! Why fluid and not packet-level: every result in the paper is a
//! per-second aggregate over tens of seconds (§4.1's estimator consumes
//! per-second byte counts), so the relevant dynamics are rate shares,
//! ramps, bursts, and saturation — exactly what a fluid model captures,
//! at a cost low enough to simulate whole-network experiments.
//!
//! ## Quick example
//!
//! ```
//! use flashflow_simnet::prelude::*;
//!
//! // Two Table 1 hosts exchange an iPerf probe.
//! let (mut net, ids) = Net::table1();
//! let report = flashflow_simnet::iperf::saturate_target(
//!     &mut net, ids[0], &ids[1..], SimDuration::from_secs(5));
//! assert!(report.median_rate.as_mbit() > 900.0);
//! ```

pub mod engine;
pub mod flow;
pub mod host;
pub mod iperf;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod units;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::engine::{Engine, EngineConfig, FlowId, TickReport};
    pub use crate::flow::FlowSpec;
    pub use crate::host::{HostId, HostProfile, Net};
    pub use crate::resource::{Resource, ResourceId, ResourceKind};
    pub use crate::rng::SimRng;
    pub use crate::stats::{mean, median, quantile, relative_std_dev, Ecdf, SecondsAccumulator};
    pub use crate::tcp::{KernelProfile, TcpProfile};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::Rate;
}
