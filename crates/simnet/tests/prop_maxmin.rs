//! Property tests for the weighted max-min fair allocator.
//!
//! These check the three defining invariants of a max-min allocation on
//! arbitrary topologies: feasibility (no resource oversubscribed), cap
//! respect, and bottleneck optimality (every flow is limited by its cap or
//! by a saturated resource on its path — nobody can be raised without
//! lowering someone else).

use flashflow_simnet::flow::{max_min_rates, AllocFlow};
use flashflow_simnet::resource::ResourceId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Problem {
    capacities: Vec<f64>,
    flows: Vec<(Vec<usize>, f64, Option<f64>)>, // (path, weight, cap)
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    let caps = prop::collection::vec(1.0f64..1e9, 1..8);
    caps.prop_flat_map(|capacities| {
        let nr = capacities.len();
        let flow = (
            prop::collection::vec(0..nr, 1..=nr.min(4)),
            0.1f64..64.0,
            prop::option::of(1.0f64..1e9),
        );
        let flows = prop::collection::vec(flow, 1..12);
        (Just(capacities), flows).prop_map(|(capacities, flows)| Problem { capacities, flows })
    })
}

fn solve(p: &Problem) -> Vec<f64> {
    let paths: Vec<Vec<ResourceId>> =
        p.flows.iter().map(|(path, _, _)| path.iter().map(|&i| rid(i)).collect()).collect();
    let flows: Vec<AllocFlow<'_>> = p
        .flows
        .iter()
        .zip(&paths)
        .map(|((_, w, c), path)| AllocFlow { path, weight: *w, cap: *c })
        .collect();
    max_min_rates(&p.capacities, &flows)
}

fn rid(i: usize) -> ResourceId {
    // ResourceId construction is crate-private; go through the engine.
    use flashflow_simnet::engine::{Engine, EngineConfig};
    use flashflow_simnet::resource::Resource;
    use flashflow_simnet::units::Rate;
    // Build ids 0..=i and return the last. Engine assigns sequential ids.
    let mut eng = Engine::new(EngineConfig::default());
    let mut last = None;
    for _ in 0..=i {
        last = Some(eng.add_resource(Resource::pipe("r", Rate::from_mbit(1.0))));
    }
    last.unwrap()
}

const REL_TOL: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rates_are_nonnegative_and_finite(p in problem_strategy()) {
        for r in solve(&p) {
            prop_assert!(r.is_finite());
            prop_assert!(r >= 0.0);
        }
    }

    #[test]
    fn no_resource_oversubscribed(p in problem_strategy()) {
        let rates = solve(&p);
        let mut usage = vec![0.0; p.capacities.len()];
        for ((path, _, _), rate) in p.flows.iter().zip(&rates) {
            for &r in path {
                usage[r] += rate;
            }
        }
        for (u, c) in usage.iter().zip(&p.capacities) {
            prop_assert!(*u <= c * (1.0 + REL_TOL) + 1e-9, "usage {u} > cap {c}");
        }
    }

    #[test]
    fn caps_respected(p in problem_strategy()) {
        let rates = solve(&p);
        for ((_, _, cap), rate) in p.flows.iter().zip(&rates) {
            if let Some(c) = cap {
                prop_assert!(*rate <= c * (1.0 + REL_TOL), "rate {rate} > cap {c}");
            }
        }
    }

    #[test]
    fn every_flow_is_bottlenecked(p in problem_strategy()) {
        let rates = solve(&p);
        let mut usage = vec![0.0; p.capacities.len()];
        for ((path, _, _), rate) in p.flows.iter().zip(&rates) {
            for &r in path {
                usage[r] += rate;
            }
        }
        for ((path, _, cap), rate) in p.flows.iter().zip(&rates) {
            let at_cap = cap.is_some_and(|c| *rate >= c * (1.0 - REL_TOL) - 1e-9);
            let crosses_saturated = path.iter().any(|&r| {
                usage[r] >= p.capacities[r] * (1.0 - REL_TOL) - 1e-9
            });
            prop_assert!(
                at_cap || crosses_saturated,
                "flow with rate {rate} (cap {cap:?}) is not bottlenecked"
            );
        }
    }

    #[test]
    fn equal_flows_get_equal_rates(
        cap in 1.0f64..1e9,
        n in 1usize..10,
    ) {
        let p = Problem {
            capacities: vec![cap],
            flows: (0..n).map(|_| (vec![0], 1.0, None)).collect(),
        };
        let rates = solve(&p);
        let expected = cap / n as f64;
        for r in rates {
            prop_assert!((r - expected).abs() <= expected * REL_TOL);
        }
    }

    #[test]
    fn allocation_is_scale_invariant(p in problem_strategy(), k in 0.5f64..8.0) {
        // Scaling every capacity and cap by k scales every rate by k.
        // (Note per-flow monotonicity under added flows does NOT hold for
        // max-min fairness — adding a flow at one bottleneck can free
        // capacity elsewhere — so we test invariances that do hold.)
        let base = solve(&p);
        let scaled_problem = Problem {
            capacities: p.capacities.iter().map(|c| c * k).collect(),
            flows: p
                .flows
                .iter()
                .map(|(path, w, c)| (path.clone(), *w, c.map(|c| c * k)))
                .collect(),
        };
        let scaled = solve(&scaled_problem);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((s - b * k).abs() <= (b * k).abs() * 1e-6 + 1e-6,
                "scale violated: {b} * {k} != {s}");
        }
    }

    #[test]
    fn allocation_is_deterministic(p in problem_strategy()) {
        prop_assert_eq!(solve(&p), solve(&p));
    }

    #[test]
    fn reversing_flow_order_permutes_rates(p in problem_strategy()) {
        let forward = solve(&p);
        let reversed_problem = Problem {
            capacities: p.capacities.clone(),
            flows: p.flows.iter().rev().cloned().collect(),
        };
        let mut reversed = solve(&reversed_problem);
        reversed.reverse();
        for (f, r) in forward.iter().zip(&reversed) {
            prop_assert!((f - r).abs() <= f.abs() * 1e-6 + 1e-6,
                "order dependence: {f} vs {r}");
        }
    }
}
