//! Fixture: graceful daemon code; panics live only in the test
//! module — zero findings.

pub fn serve(input: Option<u32>) -> Result<u32, String> {
    input.ok_or_else(|| "missing input".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        super::serve(Some(1)).unwrap();
        assert!(super::serve(None).expect_err("err").contains("missing"));
    }
}
