//! Fixture: a three-variant wire enum.

#[derive(Debug)]
pub enum Msg {
    Ping,
    #[allow(dead_code)]
    Pong {
        token: u64,
    },
    Report(u32),
}
