//! Fixture: durable-state writes routed through the persistence
//! layer; reads and non-create opens stay unrestricted — zero
//! findings.

pub fn save(path: &std::path::Path, data: &str) -> std::io::Result<()> {
    flashflow_procutil::atomic_write(path, data.as_bytes())
}

pub fn load(path: &std::path::Path) -> std::io::Result<String> {
    let _probe = std::fs::File::open(path)?;
    std::fs::read_to_string(path)
}
