//! Fixture: justified or harmless orderings — zero findings even
//! under a hot-path name.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool, total: &AtomicU64) {
    // ORDERING: the total must be globally visible before the flag
    // flips; the fence is the point.
    total.fetch_add(1, Ordering::SeqCst);
    // ORDERING: readers re-check the total themselves; the flag alone
    // carries no payload.
    flag.store(true, Ordering::Relaxed);
    total.fetch_add(1, Ordering::Relaxed);
}

pub fn sample(total: &AtomicU64) -> u64 {
    total.load(Ordering::Relaxed)
}
