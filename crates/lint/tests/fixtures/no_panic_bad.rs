//! Fixture: panics on a daemon's serving path — four `no-panic`
//! findings when linted under a long-running binary's crate.

pub fn serve(input: Option<u32>) -> u32 {
    let v = input.unwrap();
    let w = input.expect("input");
    if v + w == 0 {
        panic!("zero");
    }
    match v {
        0 => unreachable!(),
        n => n,
    }
}
