//! Fixture: `thread::sleep` on a reactor path. Linted under the path
//! `crates/relay/src/reactor.rs`, so both sleeps below must fire —
//! each one parks a shard thread and stalls every connection its
//! epoll loop drives.

use std::thread;
use std::time::Duration;

pub fn drain_backlog() {
    // Fully qualified form.
    std::thread::sleep(Duration::from_millis(5));
}

pub fn await_peer() {
    // Imported form.
    thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    // Exempt: harness code sleeping between assertions blocks nobody's
    // data plane.
    #[test]
    fn settles() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
