//! Fixture property test: `Msg::Report` never round-trips — one
//! `msg-exhaustive` finding against the property test.

#[test]
fn round_trips() {
    for msg in [Msg::Ping, Msg::Pong { token: 7 }] {
        assert!(decode(&encode(&msg)).is_some());
    }
}
