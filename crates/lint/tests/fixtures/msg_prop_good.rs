//! Fixture property test: round-trips every variant.

#[test]
fn round_trips() {
    for msg in [Msg::Ping, Msg::Pong { token: 7 }, Msg::Report(3)] {
        assert!(decode(&encode(&msg)).is_some());
    }
}
