//! Fixture: unannotated unsafe code — two `safety-comment` findings.

pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p }
}

extern "C" {
    fn getpid() -> i32;
}
