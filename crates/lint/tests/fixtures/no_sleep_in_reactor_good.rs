//! Fixture: reactor code that waits correctly. Linted under the path
//! `crates/relay/src/reactor.rs` and must produce zero findings — the
//! loop bounds idle latency with the poller's wait timeout and
//! expresses "later" with per-connection tick deadlines, never by
//! parking the shard thread.

use std::time::{Duration, Instant};

pub struct Shard {
    next_tick: Instant,
}

impl Shard {
    /// The poll timeout: time until the nearest deadline, floored at
    /// zero. `epoll_wait` sleeps so the shard thread never has to.
    pub fn wait_budget(&self) -> Duration {
        self.next_tick.saturating_duration_since(Instant::now())
    }

    /// A local named `sleep` is not `thread::sleep`; the rule must not
    /// fire on the identifier alone.
    pub fn arm(&mut self, sleep: Duration) {
        self.next_tick = Instant::now() + sleep;
    }
}
