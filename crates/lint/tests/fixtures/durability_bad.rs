//! Fixture: raw filesystem writes in a durable-state crate — three
//! `durability` findings (`File::create`, `OpenOptions`, `fs::write`).

pub fn save(path: &std::path::Path, data: &str) -> std::io::Result<()> {
    let _f = std::fs::File::create(path)?;
    let _g = std::fs::OpenOptions::new().append(true).open(path)?;
    std::fs::write(path, data)
}
