//! Fixture codec: every variant encoded and decoded.

pub fn encode(msg: &Msg) -> Vec<u8> {
    match msg {
        Msg::Ping => vec![0],
        Msg::Pong { token } => vec![1, *token as u8],
        Msg::Report(n) => vec![2, *n as u8],
    }
}

pub fn decode(bytes: &[u8]) -> Option<Msg> {
    match bytes.first()? {
        0 => Some(Msg::Ping),
        1 => Some(Msg::Pong { token: 0 }),
        2 => Some(Msg::Report(0)),
        _ => None,
    }
}
