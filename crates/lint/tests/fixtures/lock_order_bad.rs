//! Fixture: two functions taking the same pair of locks in opposite
//! orders — one `lock-order` cycle.

use std::sync::Mutex;

pub struct Shared {
    pub sessions: Mutex<u32>,
    pub replay: Mutex<u32>,
}

pub fn forward(s: &Shared) {
    let sessions = s.sessions.lock().unwrap();
    let replay = s.replay.lock().unwrap();
    drop((sessions, replay));
}

pub fn backward(s: &Shared) {
    let replay = s.replay.lock().unwrap();
    let sessions = s.sessions.lock().unwrap();
    drop((replay, sessions));
}
