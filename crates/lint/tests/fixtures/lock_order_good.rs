//! Fixture: consistent acquisition order, a statement-end temporary,
//! and one marked exception — zero findings.

use std::sync::Mutex;

pub struct Shared {
    pub sessions: Mutex<u32>,
    pub replay: Mutex<u32>,
}

pub fn forward(s: &Shared) {
    let sessions = s.sessions.lock().unwrap();
    let replay = s.replay.lock().unwrap();
    drop((sessions, replay));
}

pub fn also_forward(s: &Shared) {
    let sessions = s.sessions.lock().unwrap();
    let replay = s.replay.lock().unwrap();
    drop((replay, sessions));
}

pub fn snapshot_then_lock(s: &Shared) -> u32 {
    // `.clone()` makes the replay guard a statement-end temporary; it
    // is not held across the next acquisition.
    let snapshot = s.replay.lock().unwrap().clone();
    let sessions = s.sessions.lock().unwrap();
    drop(sessions);
    snapshot
}

pub fn marked(s: &Shared) {
    let replay = s.replay.lock().unwrap();
    // LOCK-ORDER: single-threaded startup path; no peer can hold
    // `sessions` yet.
    let sessions = s.sessions.lock().unwrap();
    drop((replay, sessions));
}
