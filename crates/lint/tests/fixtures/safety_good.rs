//! Fixture: every unsafe site justified — zero findings.

pub fn raw_read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn raw_read_bound(p: *const u8) -> u8 {
    // SAFETY: the comment above the *statement* also counts.
    let v = unsafe { *p };
    v
}

// SAFETY: `getpid(2)`'s POSIX prototype, declared verbatim.
extern "C" {
    fn getpid() -> i32;
}

/// An `extern "C"` function-pointer *type* is not an item and carries
/// no obligation — it must not be flagged.
pub type Callback = extern "C" fn(i32);
