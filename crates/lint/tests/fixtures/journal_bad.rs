//! Fixture journal: the decoder and the recovery fold both forgot
//! `Record::PeriodDone` — two `journal-exhaustive` findings. The
//! variant still encodes, so a real daemon would append it and then
//! lose it on every crash recovery.

#[derive(Debug)]
pub enum Record {
    PeriodStart { period: u64 },
    ItemDone { ix: u64 },
    PeriodDone,
}

impl Record {
    pub fn to_json_line(&self) -> String {
        match self {
            Record::PeriodStart { period } => format!("start {period}"),
            Record::ItemDone { ix } => format!("done {ix}"),
            Record::PeriodDone => "fin".to_string(),
        }
    }

    pub fn parse(line: &str) -> Option<Record> {
        match line.split(' ').next()? {
            "start" => Some(Record::PeriodStart { period: 0 }),
            "done" => Some(Record::ItemDone { ix: 0 }),
            _ => None,
        }
    }
}

#[derive(Default)]
pub struct State {
    pub done: u64,
}

impl State {
    pub fn apply(&mut self, record: &Record) {
        match record {
            Record::PeriodStart { .. } => self.done = 0,
            Record::ItemDone { .. } => self.done += 1,
            _ => {}
        }
    }
}
