//! Fixture: undeliberate atomic orderings. Linted under a hot-path
//! name this yields two `atomic-ordering` findings (the `SeqCst`
//! fence and the relaxed store); elsewhere only the relaxed store.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool, total: &AtomicU64) {
    total.fetch_add(1, Ordering::SeqCst);
    flag.store(true, Ordering::Relaxed);
}
