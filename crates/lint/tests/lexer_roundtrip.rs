//! The lexer property-tested against the best corpus available: this
//! workspace's own sources. For every `.rs` file in the tree, the
//! token stream must tile the input exactly — concatenating the token
//! texts reproduces the file byte for byte, spans are contiguous, and
//! line numbers never decrease. Every rule sits on top of these
//! invariants; a lexer that drops or duplicates a byte lies to all of
//! them at once.

use std::path::PathBuf;

use flashflow_lint::lexer::lex;
use flashflow_lint::workspace_files;

#[test]
fn every_workspace_file_round_trips_through_the_lexer() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).expect("walk workspace");
    assert!(files.len() >= 100, "corpus unexpectedly small: {} files", files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).expect("read source");
        let toks = lex(&src);

        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "{rel}: token texts must tile the file exactly");

        let mut pos = 0;
        let mut line = 1;
        for t in &toks {
            assert_eq!(t.start, pos, "{rel}: gap or overlap at byte {pos}");
            assert!(t.end > t.start, "{rel}: empty token at byte {pos}");
            assert!(t.line >= line, "{rel}: line numbers must not decrease");
            pos = t.end;
            line = t.line;
        }
        assert_eq!(pos, src.len(), "{rel}: trailing bytes unlexed");
    }
}

#[test]
fn lexer_survives_the_fixture_corpus_too() {
    // The fixtures directory is excluded from the workspace walk, so
    // cover it explicitly — deliberate violations still must lex.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).expect("read fixture");
            let rebuilt: String = lex(&src).iter().map(|t| t.text(&src)).collect();
            assert_eq!(rebuilt, src, "{}: fixture must round-trip", path.display());
            seen += 1;
        }
    }
    assert!(seen >= 15, "expected the per-rule fixtures, found {seen}");
}
