//! End-to-end exercise of the `flashflow-lint` binary against a
//! synthetic violating workspace: the exit codes, `--allow`
//! downgrade, `--deny-all` override, and `--json` output the CI job
//! and operators rely on.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Builds a throwaway workspace containing exactly one durability
/// violation (plus the minimal codec tree the default config expects)
/// and returns its root.
fn violating_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ff-lint-cli-{tag}-{}", std::process::id()));
    let proto_src = root.join("crates/proto/src");
    let proto_tests = root.join("crates/proto/tests");
    let coord_src = root.join("crates/coord/src");
    for dir in [&proto_src, &proto_tests, &coord_src] {
        std::fs::create_dir_all(dir).expect("mk workspace");
    }
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(proto_src.join("msg.rs"), "pub enum Msg {\n    Ping,\n}\n").expect("enum");
    std::fs::write(
        proto_src.join("frame.rs"),
        "pub fn encode(m: &Msg) -> u8 {\n    match m {\n        Msg::Ping => 0,\n    }\n}\n\
         pub fn decode_payload(b: u8) -> Option<Msg> {\n    if b == 0 {\n        Some(Msg::Ping)\n    } else {\n        None\n    }\n}\n",
    )
    .expect("codec");
    std::fs::write(
        proto_tests.join("prop_codec.rs"),
        "#[test]\nfn round_trips() {\n    assert!(decode_payload(encode(&Msg::Ping)).is_some());\n}\n",
    )
    .expect("prop");
    std::fs::write(
        coord_src.join("bad.rs"),
        "pub fn save(p: &std::path::Path) -> std::io::Result<()> {\n    std::fs::write(p, b\"x\")\n}\n",
    )
    .expect("violation");
    // A minimal, complete journal so the default journal-exhaustive
    // anchors are satisfied and only the durability violation fires.
    std::fs::write(
        coord_src.join("journal.rs"),
        "pub enum Record {\n    Fin,\n}\nimpl Record {\n    pub fn to_json_line(&self) -> &'static str {\n        match self {\n            Record::Fin => \"fin\",\n        }\n    }\n    pub fn parse(line: &str) -> Option<Record> {\n        if line == \"fin\" {\n            Some(Record::Fin)\n        } else {\n            None\n        }\n    }\n}\npub struct State;\nimpl State {\n    pub fn apply(&mut self, r: &Record) {\n        match r {\n            Record::Fin => {}\n        }\n    }\n}\n",
    )
    .expect("journal");
    root
}

fn lint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flashflow-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run flashflow-lint")
}

#[test]
fn violations_gate_allow_downgrades_and_deny_all_restores() {
    let root = violating_workspace("gate");

    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("crates/coord/src/bad.rs:2: durability:"),
        "file:line: rule-id: message format: {stdout}"
    );

    let out = lint(&root, &["--allow", "durability"]);
    assert_eq!(out.status.code(), Some(0), "--allow downgrades to advisory");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("(allowed)"), "advisory findings still print: {stdout}");

    let out = lint(&root, &["--allow", "durability", "--deny-all"]);
    assert_eq!(out.status.code(), Some(1), "--deny-all must override --allow");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn json_output_is_machine_readable() {
    let root = violating_workspace("json");
    let out = lint(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let line = stdout.trim();
    assert!(line.starts_with('[') && line.ends_with(']'), "one JSON array: {line}");
    assert!(line.contains("\"rule\":\"durability\""), "{line}");
    assert!(line.contains("\"allowed\":false"), "{line}");
    assert!(line.contains("\"file\":\"crates/coord/src/bad.rs\""), "{line}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_allow_rule_is_a_usage_error() {
    let root = violating_workspace("usage");
    let out = lint(&root, &["--allow", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2), "unknown rule id must exit 2");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown rule"), "{stderr}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn list_rules_names_the_full_catalogue() {
    let out = Command::new(env!("CARGO_BIN_EXE_flashflow-lint"))
        .arg("--list-rules")
        .output()
        .expect("run flashflow-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let listed: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        listed,
        vec![
            "safety-comment",
            "atomic-ordering",
            "no-panic",
            "durability",
            "lock-order",
            "msg-exhaustive",
            "journal-exhaustive",
            "no-sleep-in-reactor"
        ]
    );
}
