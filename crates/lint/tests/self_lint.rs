//! The workspace lints itself to zero: every invariant the rules
//! encode is currently true of the tree, and stays true — a PR that
//! introduces a bare `unsafe`, a panicking daemon path, or a reversed
//! lock order fails here (and in the CI `lint-invariants` job) with
//! the exact file:line.

use std::path::PathBuf;

use flashflow_lint::{lint_workspace, workspace_files, LintConfig};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_lints_clean_with_every_rule_gating() {
    let root = workspace_root();
    let findings = lint_workspace(&root, &LintConfig::default()).expect("readable workspace");
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(rendered, Vec::<String>::new(), "the workspace must lint clean");
}

#[test]
fn walker_sees_the_real_tree_but_not_fixtures_or_target() {
    let files = workspace_files(&workspace_root()).expect("walk");
    assert!(
        files.len() >= 100,
        "the walk found only {} files — a broken walker lints nothing and passes vacuously",
        files.len()
    );
    assert!(files.iter().any(|f| f == "crates/proto/src/msg.rs"), "known file present");
    assert!(
        files.iter().all(|f| !f.contains("/fixtures/") && !f.starts_with("target/")),
        "fixtures (deliberate violations) and build output must be excluded"
    );
}
