//! Per-rule fixture tests: each rule gets a positive fixture (the
//! violation fires, with the expected count) and a negative one (the
//! annotated / refactored form is silent). The fixture sources live
//! under `tests/fixtures/`, which both cargo and the linter's own
//! workspace walk ignore — they hold deliberate violations.

use std::collections::BTreeSet;

use flashflow_lint::rules::{self, lock_order};
use flashflow_lint::scan::FileScan;
use flashflow_lint::{lint_file, CodecConfig, Finding, JournalConfig, LintConfig};

/// Rule ids of `findings`, in order.
fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn safety_fixtures() {
    let cfg = LintConfig::default();
    let bad = lint_file("crates/core/src/fx.rs", include_str!("fixtures/safety_bad.rs"), &cfg);
    assert_eq!(rules_of(&bad), vec!["safety-comment", "safety-comment"], "{bad:?}");
    assert!(bad[0].msg.contains("unsafe"), "{}", bad[0]);
    assert!(bad[1].msg.contains("extern"), "{}", bad[1]);

    let good = lint_file("crates/core/src/fx.rs", include_str!("fixtures/safety_good.rs"), &cfg);
    assert_eq!(good, vec![], "annotated fixture must be silent");
}

#[test]
fn ordering_fixtures() {
    let cfg = LintConfig::default();
    // Under a hot-path name both the `SeqCst` fence and the relaxed
    // store fire; elsewhere only the relaxed store.
    let bad_src = include_str!("fixtures/ordering_bad.rs");
    let hot = lint_file("crates/obs/src/metrics.rs", bad_src, &cfg);
    assert_eq!(rules_of(&hot), vec!["atomic-ordering", "atomic-ordering"], "{hot:?}");
    let cold = lint_file("crates/core/src/fx.rs", bad_src, &cfg);
    assert_eq!(rules_of(&cold), vec!["atomic-ordering"], "{cold:?}");
    assert!(cold[0].msg.contains("relaxed store"), "{}", cold[0]);

    let good_src = include_str!("fixtures/ordering_good.rs");
    let good = lint_file("crates/obs/src/metrics.rs", good_src, &cfg);
    assert_eq!(good, vec![], "justified fixture must be silent even on the hot path");
}

#[test]
fn no_panic_fixtures() {
    let cfg = LintConfig::default();
    let bad_src = include_str!("fixtures/no_panic_bad.rs");
    let bad = lint_file("crates/measurer/src/fx.rs", bad_src, &cfg);
    assert_eq!(rules_of(&bad), vec!["no-panic"; 4], "{bad:?}");

    // The same panics outside a long-running binary's crate are fine.
    let library = lint_file("crates/core/src/fx.rs", bad_src, &cfg);
    assert_eq!(library, vec![], "libraries may panic");

    let good =
        lint_file("crates/measurer/src/fx.rs", include_str!("fixtures/no_panic_good.rs"), &cfg);
    assert_eq!(good, vec![], "graceful fixture must be silent; test modules are exempt");
}

#[test]
fn durability_fixtures() {
    let cfg = LintConfig::default();
    let bad_src = include_str!("fixtures/durability_bad.rs");
    let bad = lint_file("crates/coord/src/fx.rs", bad_src, &cfg);
    assert_eq!(rules_of(&bad), vec!["durability"; 3], "{bad:?}");

    // The same writes outside a durable-state crate are fine.
    let library = lint_file("crates/core/src/fx.rs", bad_src, &cfg);
    assert_eq!(library, vec![], "non-durable crates write freely");

    let good =
        lint_file("crates/coord/src/fx.rs", include_str!("fixtures/durability_good.rs"), &cfg);
    assert_eq!(good, vec![], "persist-routed fixture must be silent; reads stay unrestricted");
}

/// Runs the lock-order rule alone over one fixture source.
fn lock_findings(src: &str) -> Vec<Finding> {
    let scan = FileScan::new("crates/measurer/src/fx.rs", src);
    let mut graph = lock_order::LockGraph::default();
    lock_order::collect(&scan, &mut graph);
    let mut findings = Vec::new();
    lock_order::check(&graph, &mut findings);
    findings
}

#[test]
fn lock_order_fixtures() {
    let bad = lock_findings(include_str!("fixtures/lock_order_bad.rs"));
    assert_eq!(rules_of(&bad), vec!["lock-order"], "one cycle, reported once: {bad:?}");
    assert!(
        bad[0].msg.contains("replay") && bad[0].msg.contains("sessions"),
        "cycle names both locks: {}",
        bad[0]
    );
    assert!(bad[0].msg.contains("`forward`") || bad[0].msg.contains("`backward`"), "{}", bad[0]);

    let good = lock_findings(include_str!("fixtures/lock_order_good.rs"));
    assert_eq!(good, vec![], "consistent order, temporaries, and markers must be silent");
}

/// The msg-exhaustive rule over a synthetic three-file workspace.
fn msg_findings(codec_src: &str, prop_src: &str) -> Vec<Finding> {
    let codec = CodecConfig {
        enum_file: "crates/proto/src/msg.rs".into(),
        enum_name: "Msg".into(),
        codec_file: "crates/proto/src/frame.rs".into(),
        encode_fn: "encode".into(),
        decode_fn: "decode".into(),
        prop_file: "crates/proto/tests/prop_codec.rs".into(),
    };
    let cfg = LintConfig { codec: Some(codec), ..LintConfig::default() };
    let sources = vec![
        ("crates/proto/src/msg.rs".to_string(), include_str!("fixtures/msg_enum.rs").to_string()),
        ("crates/proto/src/frame.rs".to_string(), codec_src.to_string()),
        ("crates/proto/tests/prop_codec.rs".to_string(), prop_src.to_string()),
    ];
    let mut findings = Vec::new();
    rules::msg_exhaustive::check(&sources, &cfg, &mut findings);
    findings
}

#[test]
fn msg_exhaustive_fixtures() {
    let good = msg_findings(
        include_str!("fixtures/msg_codec_good.rs"),
        include_str!("fixtures/msg_prop_good.rs"),
    );
    assert_eq!(good, vec![], "complete codec must be silent");

    let bad = msg_findings(
        include_str!("fixtures/msg_codec_bad.rs"),
        include_str!("fixtures/msg_prop_bad.rs"),
    );
    assert_eq!(rules_of(&bad), vec!["msg-exhaustive", "msg-exhaustive"], "{bad:?}");
    assert!(
        bad.iter().all(|f| f.msg.contains("Msg::Report")),
        "the forgotten variant is named: {bad:?}"
    );
    assert!(bad.iter().any(|f| f.msg.contains("decoder")), "{bad:?}");
    assert!(bad.iter().any(|f| f.msg.contains("property test")), "{bad:?}");
}

fn journal_findings(journal_src: &str) -> Vec<Finding> {
    let journal = JournalConfig {
        journal_file: "crates/coord/src/journal.rs".into(),
        enum_name: "Record".into(),
        encode_fn: "to_json_line".into(),
        decode_fn: "parse".into(),
        apply_fn: "apply".into(),
    };
    let cfg = LintConfig { journal: Some(journal), ..LintConfig::default() };
    let sources = vec![("crates/coord/src/journal.rs".to_string(), journal_src.to_string())];
    let mut findings = Vec::new();
    rules::journal_exhaustive::check(&sources, &cfg, &mut findings);
    findings
}

#[test]
fn journal_exhaustive_fixtures() {
    let good = journal_findings(include_str!("fixtures/journal_good.rs"));
    assert_eq!(good, vec![], "complete recovery path must be silent");

    let bad = journal_findings(include_str!("fixtures/journal_bad.rs"));
    assert_eq!(rules_of(&bad), vec!["journal-exhaustive"; 2], "{bad:?}");
    assert!(
        bad.iter().all(|f| f.msg.contains("Record::PeriodDone")),
        "the forgotten variant is named: {bad:?}"
    );
    assert!(bad.iter().any(|f| f.msg.contains("journal decoder")), "{bad:?}");
    assert!(bad.iter().any(|f| f.msg.contains("recovery fold")), "{bad:?}");
}

#[test]
fn no_sleep_in_reactor_fixtures() {
    let cfg = LintConfig::default();
    let bad_src = include_str!("fixtures/no_sleep_in_reactor_bad.rs");
    let bad = lint_file("crates/relay/src/reactor.rs", bad_src, &cfg);
    assert_eq!(rules_of(&bad), vec!["no-sleep-in-reactor"; 2], "{bad:?}");
    assert!(bad[0].msg.contains("stalls every"), "{}", bad[0]);

    // The same sleeps off the reactor path are fine — blocking a
    // harness or CLI thread parks nobody's data plane.
    let elsewhere = lint_file("crates/relay/src/main.rs", bad_src, &cfg);
    assert_eq!(elsewhere, vec![], "non-reactor paths may sleep");

    let good_src = include_str!("fixtures/no_sleep_in_reactor_good.rs");
    let good = lint_file("crates/relay/src/reactor.rs", good_src, &cfg);
    assert_eq!(good, vec![], "tick/deadline waiting and a local `sleep` binding must be silent");
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let cfg = LintConfig::default();
    let bad = lint_file("crates/core/src/fx.rs", include_str!("fixtures/safety_bad.rs"), &cfg);
    let rendered = bad[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/fx.rs:4: safety-comment: "),
        "grep-able format: {rendered}"
    );
}

#[test]
fn rule_set_is_closed_under_the_ids_fixtures_use() {
    let seen: BTreeSet<&str> = flashflow_lint::RULES.iter().copied().collect();
    for id in [
        "safety-comment",
        "atomic-ordering",
        "no-panic",
        "durability",
        "lock-order",
        "msg-exhaustive",
        "journal-exhaustive",
        "no-sleep-in-reactor",
    ] {
        assert!(seen.contains(id), "{id} missing from RULES");
    }
    assert_eq!(seen.len(), 8);
}
