//! Structural context layered over the raw token stream: which tokens
//! are test-only code, where function bodies begin and end, and
//! whether a token carries a justification annotation (`// SAFETY:`,
//! `// ORDERING:`) in its surrounding comments.
//!
//! This is deliberately *not* a parser. Every question the rules ask
//! can be answered with brace matching and small backward/forward
//! walks, which keeps the analysis a few hundred lines and — unlike a
//! grammar — impossible to desynchronize from future Rust editions:
//! unknown syntax just lexes to tokens the walks skip.

use crate::lexer::{lex, TokKind, Token};

/// One lexed file plus the derived structure the rules share.
pub struct FileScan<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    pub src: &'a str,
    pub toks: Vec<Token>,
    /// Indices into `toks` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Per *token* (not per sig entry): true inside `#[cfg(test)]` /
    /// `#[test]` items, or everywhere in files under `tests/` or
    /// `benches/` directories.
    pub test_mask: Vec<bool>,
    /// Function bodies, innermost-last for nested functions.
    pub fns: Vec<FnSpan>,
}

/// A `fn` item: its name and the token range of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, `{` and `}` inclusive.
    pub body: (usize, usize),
}

impl<'a> FileScan<'a> {
    pub fn new(path: &'a str, src: &'a str) -> FileScan<'a> {
        let toks = lex(src);
        let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].kind.is_trivia()).collect();
        let mut scan = FileScan { path, src, toks, sig, test_mask: Vec::new(), fns: Vec::new() };
        scan.test_mask = scan.compute_test_mask();
        scan.fns = scan.compute_fns();
        scan
    }

    /// The text of token `ix`.
    pub fn text(&self, ix: usize) -> &'a str {
        self.toks[ix].text(self.src)
    }

    /// True when token `ix` is the identifier `word`.
    pub fn is_ident(&self, ix: usize, word: &str) -> bool {
        self.toks[ix].kind == TokKind::Ident && self.text(ix) == word
    }

    /// The position in `sig` of token index `ix` (which must be
    /// significant).
    fn sig_pos(&self, ix: usize) -> usize {
        self.sig.partition_point(|&s| s < ix)
    }

    /// The n-th significant token after the significant token `ix`
    /// (1 = next).
    pub fn sig_after(&self, ix: usize, n: usize) -> Option<usize> {
        let p = self.sig_pos(ix);
        if self.sig.get(p) != Some(&ix) {
            return None;
        }
        self.sig.get(p + n).copied()
    }

    /// The n-th significant token before the significant token `ix`
    /// (1 = previous).
    pub fn sig_before(&self, ix: usize, n: usize) -> Option<usize> {
        let p = self.sig_pos(ix);
        if self.sig.get(p) != Some(&ix) {
            return None;
        }
        p.checked_sub(n).map(|q| self.sig[q])
    }

    /// Whether the path lives in a directory whose *entire* contents
    /// are test or bench code.
    fn whole_file_is_test(path: &str) -> bool {
        path.split('/').any(|seg| seg == "tests" || seg == "benches")
    }

    /// Marks the token ranges covered by `#[cfg(test)]` / `#[test]`
    /// items (attribute through the item's closing brace or semicolon).
    fn compute_test_mask(&self) -> Vec<bool> {
        let mut mask = vec![Self::whole_file_is_test(self.path); self.toks.len()];
        if mask.first().copied().unwrap_or(false) {
            return mask;
        }
        let mut s = 0usize;
        while s < self.sig.len() {
            let ix = self.sig[s];
            if self.text(ix) == "#" {
                if let Some((attr_end_s, is_test)) = self.scan_attribute(s) {
                    if is_test {
                        if let Some(item_end_s) = self.item_end(attr_end_s + 1) {
                            let lo = ix;
                            let hi = self.sig[item_end_s];
                            for m in mask.iter_mut().take(hi + 1).skip(lo) {
                                *m = true;
                            }
                            s = item_end_s + 1;
                            continue;
                        }
                    }
                    s = attr_end_s + 1;
                    continue;
                }
            }
            s += 1;
        }
        mask
    }

    /// From sig position `s` at a `#`, scans the `[...]` attribute.
    /// Returns the sig position of the closing `]` and whether the
    /// attribute marks test code (`#[test]`, `#[cfg(test)]`, and any
    /// `cfg` whose predicate mentions `test`).
    fn scan_attribute(&self, s: usize) -> Option<(usize, bool)> {
        let open = *self.sig.get(s + 1)?;
        if self.text(open) != "[" {
            return None;
        }
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        for (pos, &ix) in self.sig.iter().enumerate().skip(s + 1) {
            match self.text(ix) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        let is_test = idents.first() == Some(&"test")
                            || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
                        return Some((pos, is_test));
                    }
                }
                _ => {
                    if self.toks[ix].kind == TokKind::Ident {
                        idents.push(self.text(ix));
                    }
                }
            }
        }
        None
    }

    /// From sig position `s` (just past an attribute), finds the sig
    /// position where the annotated item ends: its matching `}` for a
    /// braced item, or the `;` for a declaration. Intervening
    /// attributes are stepped over.
    fn item_end(&self, mut s: usize) -> Option<usize> {
        // Skip any further attributes between the test attribute and
        // the item keyword.
        while s < self.sig.len() && self.text(self.sig[s]) == "#" {
            let (end, _) = self.scan_attribute(s)?;
            s = end + 1;
        }
        let mut paren = 0i32;
        for (pos, &ix) in self.sig.iter().enumerate().skip(s) {
            match self.text(ix) {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => return Some(pos),
                "{" if paren == 0 => return self.match_brace(pos),
                _ => {}
            }
        }
        None
    }

    /// Sig position of the `}` matching the `{` at sig position
    /// `open_s`.
    fn match_brace(&self, open_s: usize) -> Option<usize> {
        let mut depth = 0usize;
        for (pos, &ix) in self.sig.iter().enumerate().skip(open_s) {
            match self.text(ix) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(pos);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Collects every `fn name ... { body }` span. A `fn` token that
    /// opens a function *type* (`fn(i32) -> i32`) is not followed by an
    /// identifier and is skipped.
    fn compute_fns(&self) -> Vec<FnSpan> {
        let mut fns = Vec::new();
        for (s, &ix) in self.sig.iter().enumerate() {
            if !self.is_ident(ix, "fn") {
                continue;
            }
            let Some(&name_ix) = self.sig.get(s + 1) else { continue };
            if self.toks[name_ix].kind != TokKind::Ident {
                continue;
            }
            // Scan to the body `{` at paren depth 0; a `;` first means
            // a bodiless declaration (trait method, extern fn).
            let mut paren = 0i32;
            let mut body = None;
            for (pos, &jx) in self.sig.iter().enumerate().skip(s + 2) {
                match self.text(jx) {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    ";" if paren == 0 => break,
                    "{" if paren == 0 => {
                        if let Some(close) = self.match_brace(pos) {
                            body = Some((self.sig[pos], self.sig[close]));
                        }
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(body) = body {
                fns.push(FnSpan {
                    name: self.text(name_ix).to_string(),
                    line: self.toks[ix].line,
                    body,
                });
            }
        }
        fns
    }

    /// The name of the innermost function whose body contains token
    /// `ix`, if any.
    pub fn enclosing_fn(&self, ix: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= ix && ix <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The first significant token of the statement containing the
    /// significant token `ix`: the token after the nearest preceding
    /// `;`, `{`, or `}`. Heuristic — a `;` inside a closure argument
    /// also counts as a boundary — but for marker lookup that only
    /// narrows where a comment may sit, never widens it.
    pub fn stmt_start(&self, ix: usize) -> usize {
        let mut j = ix;
        let mut start = ix;
        while let Some(prev) = self.sig_before(j, 1) {
            if matches!(self.text(prev), ";" | "{" | "}") {
                break;
            }
            j = prev;
            start = prev;
        }
        start
    }

    /// True when token `ix` carries the `marker` annotation: the
    /// nearest comment block immediately above it (attributes stepped
    /// over), or a comment later on the same line, contains `marker`.
    pub fn has_marker(&self, ix: usize, marker: &str) -> bool {
        // Backward: skip whitespace; comments are inspected and
        // *accumulate* (a justification may span several `//` lines);
        // an attribute `#[...]` between the comment and the token is
        // stepped over; any other token ends the search.
        let mut j = ix;
        let mut blanks_ok = true;
        while j > 0 && blanks_ok {
            j -= 1;
            let t = &self.toks[j];
            match t.kind {
                TokKind::Ws => {
                    // A blank line (two newlines) detaches the comment
                    // above it from this token.
                    if t.text(self.src).bytes().filter(|&b| b == b'\n').count() >= 2 {
                        blanks_ok = false;
                    }
                }
                TokKind::LineComment | TokKind::BlockComment => {
                    if t.text(self.src).contains(marker) {
                        return true;
                    }
                }
                _ => {
                    // Step over one attribute: `]` ... `[` `#`.
                    if t.text(self.src) == "]" {
                        let mut depth = 1i32;
                        while j > 0 && depth > 0 {
                            j -= 1;
                            match self.text(j) {
                                "]" => depth += 1,
                                "[" => depth -= 1,
                                _ => {}
                            }
                        }
                        if j > 0 && self.text(j - 1) == "#" {
                            j -= 1;
                            continue;
                        }
                    }
                    break;
                }
            }
        }
        // Forward: a trailing comment on the token's own line.
        let line = self.toks[ix].line;
        for t in &self.toks[ix + 1..] {
            if t.line > line {
                break;
            }
            if t.kind.is_comment() && t.text(self.src).contains(marker) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_modules_and_test_fns() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n\
                   #[test]\nfn one() { z.unwrap(); }\n\
                   fn also_live() {}\n";
        let scan = FileScan::new("crates/x/src/lib.rs", src);
        let masked: Vec<(&str, bool)> = scan
            .sig
            .iter()
            .filter(|&&ix| scan.toks[ix].kind == TokKind::Ident)
            .map(|&ix| (scan.text(ix), scan.test_mask[ix]))
            .filter(|(t, _)| ["live", "helper", "one", "also_live", "tests"].contains(t))
            .collect();
        assert_eq!(
            masked,
            vec![
                ("live", false),
                ("tests", true),
                ("helper", true),
                ("one", true),
                ("also_live", false),
            ]
        );
    }

    #[test]
    fn files_under_tests_dirs_are_all_test_code() {
        let scan = FileScan::new("crates/x/tests/harness.rs", "fn f() { a.unwrap(); }");
        assert!(scan.test_mask.iter().all(|&m| m));
    }

    #[test]
    fn fn_spans_capture_bodies_not_fn_types() {
        let src = "fn outer(cb: fn(i32) -> i32) -> Vec<u8> {\n    fn inner() {}\n    Vec::new()\n}";
        let scan = FileScan::new("x.rs", src);
        let names: Vec<&str> = scan.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let inner_tok =
            scan.sig.iter().copied().find(|&ix| scan.is_ident(ix, "inner")).expect("inner ident");
        // `inner`'s name token sits in outer's body; the innermost
        // enclosing fn of a token *inside* inner's braces is inner.
        let brace_after_inner = scan.sig_after(inner_tok, 3).expect("inner body");
        assert_eq!(scan.enclosing_fn(brace_after_inner).expect("enclosing").name, "inner");
    }

    #[test]
    fn markers_are_found_above_after_and_not_through_blank_lines() {
        let src = "// SAFETY: justified above\nunsafe { a() };\n\
                   unsafe { b() }; // SAFETY: justified trailing\n\
                   // SAFETY: detached\n\nunsafe { c() };\n";
        let scan = FileScan::new("x.rs", src);
        let sites: Vec<(usize, bool)> = scan
            .sig
            .iter()
            .copied()
            .filter(|&ix| scan.is_ident(ix, "unsafe"))
            .map(|ix| (ix, scan.has_marker(ix, "SAFETY:")))
            .collect();
        assert_eq!(sites.len(), 3);
        assert!(sites[0].1, "comment above counts");
        assert!(sites[1].1, "trailing same-line comment counts");
        assert!(!sites[2].1, "a blank line detaches the comment");
    }

    #[test]
    fn marker_steps_over_attributes() {
        let src = "// SAFETY: the handler only flips a flag\n#[allow(dead_code)]\nunsafe { a() };";
        let scan = FileScan::new("x.rs", src);
        let ix = scan.sig.iter().copied().find(|&ix| scan.is_ident(ix, "unsafe")).expect("site");
        assert!(scan.has_marker(ix, "SAFETY:"));
    }
}
