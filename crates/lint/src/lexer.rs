//! A hand-rolled token-level Rust lexer.
//!
//! The rules in this crate do not need a parse tree — every invariant
//! they enforce is visible at token granularity — but they *do* need
//! comments, strings, char literals, and lifetimes classified
//! correctly, or a rule would read `// SAFETY:` inside a string
//! literal, or mistake `'a'` for a lifetime. The lexer therefore
//! handles the full lexical surface (nested block comments, raw
//! strings with hash fences, byte strings, raw identifiers, numeric
//! exponents) while staying a few hundred lines of `std`-only code.
//!
//! Tokens **tile** the source: every byte of the input belongs to
//! exactly one token, whitespace included, so concatenating the token
//! texts reproduces the file byte-identically. That property is what
//! `tests/lexer_roundtrip.rs` checks against every `.rs` file in the
//! workspace — the workspace's own sources are the property-test
//! corpus.

/// What a token is; `Ws`, `LineComment`, and `BlockComment` are the
/// *trivia* kinds (skipped by rules except for annotation lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, carriage returns, newlines.
    Ws,
    /// `// ...` through the end of the line (newline excluded), doc
    /// comments (`///`, `//!`) included.
    LineComment,
    /// `/* ... */`, nested, doc block comments included.
    BlockComment,
    /// `"..."` and `b"..."` with escapes.
    Str,
    /// `r"..."` / `r#"..."#` / `br#"..."#` with any hash fence.
    RawStr,
    /// `'a'`, `'\n'`, `b'x'`.
    Char,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// Identifiers and keywords, raw identifiers (`r#fn`) included.
    Ident,
    /// Integer and float literals, suffixes and exponents included.
    Num,
    /// Everything else, one character at a time.
    Punct,
}

impl TokKind {
    /// Trivia separates significant tokens but never *is* one.
    pub fn is_trivia(self) -> bool {
        matches!(self, TokKind::Ws | TokKind::LineComment | TokKind::BlockComment)
    }

    /// Comment trivia, where `SAFETY:` / `ORDERING:` annotations live.
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token: a kind plus the byte span it occupies in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text, sliced back out of the source it was lexed
    /// from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 character starting at `b[i]`.
fn char_len(b: &[u8], i: usize) -> usize {
    let lead = b[i];
    let len = if lead < 0x80 {
        1
    } else if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    };
    len.min(b.len() - i)
}

/// Lexes `src` into a token stream that tiles it exactly.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let start = i;
        let kind = scan_one(b, &mut i);
        debug_assert!(i > start, "lexer must always make progress");
        toks.push(Token { kind, start, end: i, line });
        line += src[start..i].bytes().filter(|&c| c == b'\n').count() as u32;
    }
    toks
}

/// Scans the single token starting at `*i`, advancing `*i` past it.
fn scan_one(b: &[u8], i: &mut usize) -> TokKind {
    let c = b[*i];
    match c {
        b' ' | b'\t' | b'\r' | b'\n' => {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\r' | b'\n') {
                *i += 1;
            }
            TokKind::Ws
        }
        b'/' if peek(b, *i + 1) == Some(b'/') => {
            while *i < b.len() && b[*i] != b'\n' {
                *i += 1;
            }
            TokKind::LineComment
        }
        b'/' if peek(b, *i + 1) == Some(b'*') => {
            *i += 2;
            let mut depth = 1usize;
            while *i < b.len() && depth > 0 {
                if b[*i] == b'/' && peek(b, *i + 1) == Some(b'*') {
                    depth += 1;
                    *i += 2;
                } else if b[*i] == b'*' && peek(b, *i + 1) == Some(b'/') {
                    depth -= 1;
                    *i += 2;
                } else {
                    *i += char_len(b, *i);
                }
            }
            TokKind::BlockComment
        }
        b'r' => scan_r_prefixed(b, i),
        b'b' => scan_b_prefixed(b, i),
        b'"' => {
            *i += 1;
            scan_str_body(b, i);
            TokKind::Str
        }
        b'\'' => scan_quote(b, i),
        _ if is_ident_start(c) => {
            while *i < b.len() && is_ident_continue(b[*i]) {
                *i += 1;
            }
            TokKind::Ident
        }
        _ if c.is_ascii_digit() => scan_number(b, i),
        _ => {
            *i += char_len(b, *i);
            TokKind::Punct
        }
    }
}

fn peek(b: &[u8], i: usize) -> Option<u8> {
    b.get(i).copied()
}

/// `r"..."`, `r#"..."#`, or a plain/raw identifier starting with `r`.
fn scan_r_prefixed(b: &[u8], i: &mut usize) -> TokKind {
    let mut j = *i + 1;
    let mut hashes = 0usize;
    while peek(b, j) == Some(b'#') {
        hashes += 1;
        j += 1;
    }
    if peek(b, j) == Some(b'"') {
        *i = j + 1;
        scan_raw_str_body(b, i, hashes);
        return TokKind::RawStr;
    }
    if hashes == 1 && peek(b, j).is_some_and(is_ident_start) {
        // Raw identifier: `r#fn`.
        *i = j + 1;
        while *i < b.len() && is_ident_continue(b[*i]) {
            *i += 1;
        }
        return TokKind::Ident;
    }
    // Plain identifier starting with `r`.
    *i += 1;
    while *i < b.len() && is_ident_continue(b[*i]) {
        *i += 1;
    }
    TokKind::Ident
}

/// `b"..."`, `b'x'`, `br#"..."#`, or a plain identifier starting with
/// `b`.
fn scan_b_prefixed(b: &[u8], i: &mut usize) -> TokKind {
    match peek(b, *i + 1) {
        Some(b'"') => {
            *i += 2;
            scan_str_body(b, i);
            TokKind::Str
        }
        Some(b'\'') => {
            *i += 1; // now at the quote; byte chars lex like chars
            scan_char_body(b, i);
            TokKind::Char
        }
        Some(b'r') => {
            let mut j = *i + 2;
            let mut hashes = 0usize;
            while peek(b, j) == Some(b'#') {
                hashes += 1;
                j += 1;
            }
            if peek(b, j) == Some(b'"') {
                *i = j + 1;
                scan_raw_str_body(b, i, hashes);
                return TokKind::RawStr;
            }
            *i += 1;
            while *i < b.len() && is_ident_continue(b[*i]) {
                *i += 1;
            }
            TokKind::Ident
        }
        _ => {
            *i += 1;
            while *i < b.len() && is_ident_continue(b[*i]) {
                *i += 1;
            }
            TokKind::Ident
        }
    }
}

/// Body of a `"..."` string, opening quote already consumed; consumes
/// the closing quote.
fn scan_str_body(b: &[u8], i: &mut usize) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i = (*i + 2).min(b.len()),
            b'"' => {
                *i += 1;
                return;
            }
            _ => *i += char_len(b, *i),
        }
    }
}

/// Body of a raw string with `hashes` fence hashes, opening `"` already
/// consumed; consumes the closing `"###`.
fn scan_raw_str_body(b: &[u8], i: &mut usize, hashes: usize) {
    while *i < b.len() {
        if b[*i] == b'"' {
            let mut j = *i + 1;
            let mut seen = 0usize;
            while seen < hashes && peek(b, j) == Some(b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                return;
            }
        }
        *i += char_len(b, *i);
    }
}

/// A `'` starts either a char literal or a lifetime; disambiguates the
/// way rustc does — `'a'` is a char, `'a` (no closing quote) is a
/// lifetime — and consumes whichever it is.
fn scan_quote(b: &[u8], i: &mut usize) -> TokKind {
    let j = *i + 1;
    match peek(b, j) {
        Some(b'\\') => {
            scan_char_body(b, i);
            TokKind::Char
        }
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            let mut k = j;
            while k < b.len() && is_ident_continue(b[k]) {
                k += 1;
            }
            if peek(b, k) == Some(b'\'') {
                *i = k + 1;
                TokKind::Char
            } else {
                *i = k;
                TokKind::Lifetime
            }
        }
        Some(_) => {
            // A char literal of one non-identifier character: `' '`,
            // `'('`, `'→'`.
            scan_char_body(b, i);
            TokKind::Char
        }
        None => {
            *i += 1;
            TokKind::Punct
        }
    }
}

/// A char literal starting at the opening quote `b[*i]`; consumes
/// through the closing quote (escapes included).
fn scan_char_body(b: &[u8], i: &mut usize) {
    debug_assert_eq!(b[*i], b'\'');
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i = (*i + 2).min(b.len()),
            b'\'' => {
                *i += 1;
                return;
            }
            _ => *i += char_len(b, *i),
        }
    }
}

/// A numeric literal: decimal/hex/octal/binary, `_` separators, one
/// fractional dot (only when a digit follows — `0..3` keeps its range
/// dots), `e`/`E` exponents with an optional sign, and alphabetic type
/// suffixes (`u64`, `f32`).
fn scan_number(b: &[u8], i: &mut usize) -> TokKind {
    let radix_prefixed = b[*i] == b'0'
        && matches!(peek(b, *i + 1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        && peek(b, *i + 2).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_');
    if radix_prefixed {
        *i += 2;
        while *i < b.len() && (is_ident_continue(b[*i])) {
            *i += 1;
        }
        return TokKind::Num;
    }
    let mut seen_dot = false;
    while *i < b.len() {
        let c = b[*i];
        if c.is_ascii_digit() || c == b'_' {
            *i += 1;
        } else if (c == b'e' || c == b'E')
            && (peek(b, *i + 1).is_some_and(|n| n.is_ascii_digit())
                || (matches!(peek(b, *i + 1), Some(b'+' | b'-'))
                    && peek(b, *i + 2).is_some_and(|n| n.is_ascii_digit())))
        {
            // Exponent: consume the marker, the sign, and fall through
            // for the digits.
            *i += if peek(b, *i + 1).is_some_and(|n| n.is_ascii_digit()) { 1 } else { 2 };
        } else if c.is_ascii_alphabetic() {
            // Type suffix (`u64`, `f32`, `usize`): consume to the end
            // of the identifier tail.
            while *i < b.len() && is_ident_continue(b[*i]) {
                *i += 1;
            }
            break;
        } else if c == b'.' && !seen_dot && peek(b, *i + 1).is_some_and(|n| n.is_ascii_digit()) {
            seen_dot = true;
            *i += 1;
        } else {
            break;
        }
    }
    TokKind::Num
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn round_trips(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut prev_end = 0usize;
        for t in &toks {
            assert_eq!(t.start, prev_end, "tokens must tile with no gap at {}", t.start);
            prev_end = t.end;
            rebuilt.push_str(t.text(src));
        }
        assert_eq!(rebuilt, src, "concatenated tokens must reproduce the source");
    }

    #[test]
    fn comments_strings_and_lifetimes_classify() {
        let src = r##"// line SAFETY: x
/* block /* nested */ still */
let s = "str with \" quote and 'a' inside";
let r = r#"raw "string" fence"#;
let b = b"bytes";
let c = 'x';
let esc = '\n';
let lt: &'static str = "s";
fn f<'a>(x: &'a u8) {}
"##;
        round_trips(src);
        let ks = kinds(src);
        assert!(ks.contains(&(TokKind::LineComment, "// line SAFETY: x")));
        assert!(ks.contains(&(TokKind::BlockComment, "/* block /* nested */ still */")));
        assert!(ks.contains(&(TokKind::Str, "\"str with \\\" quote and 'a' inside\"")));
        assert!(ks.contains(&(TokKind::RawStr, "r#\"raw \"string\" fence\"#")));
        assert!(ks.contains(&(TokKind::Str, "b\"bytes\"")));
        assert!(ks.contains(&(TokKind::Char, "'x'")));
        assert!(ks.contains(&(TokKind::Char, "'\\n'")));
        assert!(ks.contains(&(TokKind::Lifetime, "'static")));
        assert!(ks.contains(&(TokKind::Lifetime, "'a")));
    }

    #[test]
    fn numbers_keep_range_dots_and_exponents() {
        let src = "let a = 0..3; let b = 1.0e-3; let c = 0xFFu64; let d = 1_000.5; let e = t.0;";
        round_trips(src);
        let ks = kinds(src);
        assert!(ks.contains(&(TokKind::Num, "0")), "range start is a bare number");
        assert!(ks.contains(&(TokKind::Num, "3")));
        assert!(ks.contains(&(TokKind::Num, "1.0e-3")));
        assert!(ks.contains(&(TokKind::Num, "0xFFu64")));
        assert!(ks.contains(&(TokKind::Num, "1_000.5")));
        assert!(!ks.iter().any(|(_, t)| t.contains("..")), "no token swallowed the range dots");
    }

    #[test]
    fn raw_identifiers_and_unicode_survive() {
        let src = "let r#fn = 1; // naïve → done §8\nlet r = rate; let brr = 2;";
        round_trips(src);
        let ks = kinds(src);
        assert!(ks.contains(&(TokKind::Ident, "r#fn")));
        assert!(ks.contains(&(TokKind::Ident, "rate")));
        assert!(ks.contains(&(TokKind::Ident, "brr")));
    }

    #[test]
    fn lines_are_one_based_and_advance() {
        let src = "a\nbb\n\nc";
        let toks = lex(src);
        let lines: Vec<(String, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(lines, vec![("a".to_string(), 1), ("bb".to_string(), 2), ("c".to_string(), 4)]);
    }
}
