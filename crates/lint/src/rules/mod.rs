//! The rule implementations. Each module exposes a `RULE` id and a
//! `check` entry point; file-local rules take one [`FileScan`], the
//! cross-file rules ([`lock_order`], [`msg_exhaustive`]) accumulate
//! over the whole workspace.
//!
//! [`FileScan`]: crate::scan::FileScan

pub mod durability;
pub mod journal_exhaustive;
pub mod lock_order;
pub mod msg_exhaustive;
pub mod no_panic;
pub mod no_sleep_in_reactor;
pub mod ordering;
pub mod safety;
