//! `msg-exhaustive`: every variant of the wire-message enum must
//! appear in the encoder, in the decoder, and in the codec property
//! test. The replay windows and keyed tags only defend if every
//! message actually round-trips through the codec under test — a
//! variant added to `Msg` but forgotten in `prop_codec.rs` is a
//! protocol surface the property tests silently stop covering (the
//! compiler forces the *encoder* match to be exhaustive, but nothing
//! forces the decoder's byte-level arm or the test generator until
//! this rule).

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::scan::FileScan;
use crate::{CodecConfig, Finding, LintConfig};

pub const RULE: &str = "msg-exhaustive";

/// Runs against the whole workspace's `(path, source)` list.
pub fn check(sources: &[(String, String)], cfg: &LintConfig, out: &mut Vec<Finding>) {
    let Some(codec) = &cfg.codec else { return };
    let Some(enum_scan) = file(sources, &codec.enum_file) else {
        out.push(missing(codec, &codec.enum_file, "message enum file not found"));
        return;
    };
    let variants = enum_variants(&enum_scan, &codec.enum_name);
    if variants.is_empty() {
        out.push(missing(
            codec,
            &codec.enum_file,
            &format!("enum `{}` not found or has no variants", codec.enum_name),
        ));
        return;
    }
    let Some(codec_scan) = file(sources, &codec.codec_file) else {
        out.push(missing(codec, &codec.codec_file, "codec file not found"));
        return;
    };
    let places: [(&str, Option<BTreeSet<String>>, &str); 3] = [
        (
            codec.codec_file.as_str(),
            fn_refs(&codec_scan, &codec.enum_name, &codec.encode_fn),
            "encoder",
        ),
        (
            codec.codec_file.as_str(),
            fn_refs(&codec_scan, &codec.enum_name, &codec.decode_fn),
            "decoder",
        ),
        (
            codec.prop_file.as_str(),
            file(sources, &codec.prop_file)
                .map(|scan| refs(&scan, &codec.enum_name, scan.body_range())),
            "codec property test",
        ),
    ];
    for (path, refs, what) in places {
        let Some(refs) = refs else {
            out.push(missing(codec, path, &format!("{what} not found")));
            continue;
        };
        for (variant, line) in &variants {
            if !refs.contains(variant) {
                out.push(Finding {
                    file: codec.enum_file.clone(),
                    line: *line,
                    rule: RULE,
                    msg: format!(
                        "`{}::{variant}` never appears in the {what} ({path}); a variant \
                         outside the codec and its property tests is unprotected protocol \
                         surface",
                        codec.enum_name
                    ),
                });
            }
        }
    }
}

fn missing(codec: &CodecConfig, path: &str, msg: &str) -> Finding {
    Finding { file: codec.enum_file.clone(), line: 1, rule: RULE, msg: format!("{msg} ({path})") }
}

pub(crate) fn file<'a>(sources: &'a [(String, String)], path: &str) -> Option<FileScan<'a>> {
    sources.iter().find(|(p, _)| p == path).map(|(p, src)| FileScan::new(p, src))
}

impl FileScan<'_> {
    /// The whole file as a token range.
    fn body_range(&self) -> (usize, usize) {
        (0, self.toks.len())
    }
}

/// The variants of `enum <name> { ... }`: each `(variant, line)`.
pub(crate) fn enum_variants(scan: &FileScan<'_>, name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    // Find `enum <name> {`.
    let mut open = None;
    for &ix in &scan.sig {
        if scan.is_ident(ix, "enum")
            && scan.sig_after(ix, 1).is_some_and(|j| scan.is_ident(j, name))
            && scan.sig_after(ix, 2).is_some_and(|j| scan.text(j) == "{")
        {
            open = scan.sig_after(ix, 2);
            break;
        }
    }
    let Some(open) = open else { return variants };
    // Walk the body at depth 1: the identifier after `{`, `,`, or a
    // closed attribute is a variant name; nested payload braces,
    // parens, and attribute brackets bump the depth.
    let mut depth = 0i32;
    let mut expecting = false;
    for &ix in scan.sig.iter().filter(|&&ix| ix >= open) {
        match scan.text(ix) {
            "{" | "(" | "[" => {
                if depth == 1 {
                    expecting = false;
                }
                depth += 1;
                if ix == open {
                    expecting = true;
                }
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                if depth == 1 && scan.text(ix) == "]" {
                    // An attribute between variants closed; still
                    // expecting the name.
                    expecting = true;
                }
            }
            "," if depth == 1 => expecting = true,
            "#" => {}
            _ => {
                if depth == 1 && expecting && scan.toks[ix].kind == TokKind::Ident {
                    variants.push((scan.text(ix).to_string(), scan.toks[ix].line));
                    expecting = false;
                }
            }
        }
    }
    variants
}

/// `Enum::Variant` references inside the named function's body.
pub(crate) fn fn_refs(
    scan: &FileScan<'_>,
    enum_name: &str,
    fn_name: &str,
) -> Option<BTreeSet<String>> {
    let f = scan.fns.iter().find(|f| f.name == fn_name)?;
    Some(refs(scan, enum_name, f.body))
}

/// `Enum::Variant` references within a token range.
fn refs(scan: &FileScan<'_>, enum_name: &str, range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for &ix in scan.sig.iter().filter(|&&ix| ix >= range.0 && ix <= range.1) {
        if scan.is_ident(ix, enum_name)
            && scan.sig_after(ix, 1).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_after(ix, 2).is_some_and(|j| scan.text(j) == ":")
        {
            if let Some(v) = scan.sig_after(ix, 3) {
                if scan.toks[v].kind == TokKind::Ident {
                    out.insert(scan.text(v).to_string());
                }
            }
        }
    }
    out
}
