//! `lock-order`: extracts each function's `Mutex`/`RwLock`
//! acquisition sequence, accumulates a workspace-wide lock-order
//! graph, and fails on cycles — the thread-per-connection listeners
//! take locks on several shared maps, and two functions taking the
//! same pair in opposite orders is a deadlock waiting for load.
//!
//! The analysis is token-level and deliberately conservative about
//! guard lifetimes:
//!
//! * an acquisition bound with `let` holds its guard to the end of the
//!   enclosing block;
//! * an inline temporary (`shared.replay.lock()?.witness(..)`) holds
//!   it to the end of the statement;
//! * while a guard is held, every later acquisition adds an edge
//!   *held → new*.
//!
//! Locks are identified by their receiver's final field name
//! (`shared.replay.lock()` → `replay`), scoped per crate so unrelated
//! crates sharing a field name cannot alias. A deliberate exception —
//! a site the analysis misreads — is excluded with a
//! `// LOCK-ORDER: <why>` comment on the acquisition. Only `.lock()`,
//! `.read()`, and `.write()` with *empty* argument lists are
//! acquisitions; `io::Write::write(buf)` takes an argument and is
//! ignored. Test code is exempt (a test may stage lock orders on
//! purpose); the production listeners are what must stay acyclic.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::scan::FileScan;
use crate::{Finding, LintConfig};

pub const RULE: &str = "lock-order";

const MARKER: &str = "LOCK-ORDER:";

/// Where an edge was first observed.
#[derive(Debug, Clone)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub func: String,
}

/// The accumulated acquisition-order graph: `(crate, held, acquired)`
/// → first site that took them in that order.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeMap<(String, String, String), Site>,
}

/// One currently-held guard while walking a function body.
struct Held {
    name: String,
    /// Token index past which the guard is dropped.
    until: usize,
}

/// Folds `scan`'s functions into the graph.
pub fn collect(scan: &FileScan<'_>, graph: &mut LockGraph) {
    let krate = LintConfig::crate_of(scan.path).unwrap_or("workspace").to_string();
    for f in &scan.fns {
        // Skip nested fns here; they get their own walk.
        let nested: Vec<(usize, usize)> = scan
            .fns
            .iter()
            .filter(|g| g.body.0 > f.body.0 && g.body.1 < f.body.1)
            .map(|g| g.body)
            .collect();
        let mut held: Vec<Held> = Vec::new();
        for &ix in &scan.sig {
            if ix <= f.body.0 || ix >= f.body.1 {
                continue;
            }
            if nested.iter().any(|&(lo, hi)| lo <= ix && ix <= hi) {
                continue;
            }
            if scan.test_mask[ix] {
                continue;
            }
            let Some(name) = acquisition(scan, ix) else { continue };
            // The exclusion comment may sit against the method or above
            // the whole statement.
            if scan.has_marker(ix, MARKER) || scan.has_marker(scan.stmt_start(ix), MARKER) {
                continue;
            }
            held.retain(|h| h.until > ix);
            let until = guard_end(scan, ix);
            for h in &held {
                graph.edges.entry((krate.clone(), h.name.clone(), name.clone())).or_insert_with(
                    || Site {
                        file: scan.path.to_string(),
                        line: scan.toks[ix].line,
                        func: f.name.clone(),
                    },
                );
            }
            held.push(Held { name, until });
        }
    }
}

/// If the significant token at `ix` is an acquisition method
/// (`.lock()` / `.read()` / `.write()` with no arguments), returns the
/// lock's name.
fn acquisition(scan: &FileScan<'_>, ix: usize) -> Option<String> {
    if scan.toks[ix].kind != TokKind::Ident {
        return None;
    }
    if !matches!(scan.text(ix), "lock" | "read" | "write") {
        return None;
    }
    let dot = scan.sig_before(ix, 1)?;
    if scan.text(dot) != "." {
        return None;
    }
    if scan.text(scan.sig_after(ix, 1)?) != "(" || scan.text(scan.sig_after(ix, 2)?) != ")" {
        return None;
    }
    // Receiver's final component: step back over one balanced group if
    // the receiver is itself a call (`stdout().lock()`), then take the
    // identifier (or tuple index) before the dot.
    let mut j = scan.sig_before(dot, 1)?;
    if matches!(scan.text(j), ")" | "]") {
        let mut depth = 1i32;
        while depth > 0 {
            j = scan.sig_before(j, 1)?;
            match scan.text(j) {
                ")" | "]" => depth += 1,
                "(" | "[" => depth -= 1,
                _ => {}
            }
        }
        j = scan.sig_before(j, 1)?;
    }
    match scan.toks[j].kind {
        TokKind::Ident | TokKind::Num => Some(scan.text(j).to_string()),
        _ => None,
    }
}

/// The token index where the guard acquired at `ix` drops: end of the
/// enclosing block for `let`-bound guards, end of the statement for
/// temporaries.
///
/// A guard is `let`-bound only when the binding captures the *guard
/// itself*: the call may be adapted by `.unwrap()` / `.expect(..)` /
/// `?`, but a further method (`.clone()`, `.get(..)`) means the bound
/// value is derived and the guard is a temporary that drops at the
/// statement's end.
fn guard_end(scan: &FileScan<'_>, ix: usize) -> usize {
    // Backward to the statement start; a `let` on the way means the
    // statement is a binding.
    let mut let_stmt = false;
    let mut depth = 0i32;
    let mut j = ix;
    while let Some(prev) = scan.sig_before(j, 1) {
        j = prev;
        match scan.text(j) {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => break,
            "let" if depth == 0 && scan.toks[j].kind == TokKind::Ident => {
                let_stmt = true;
                break;
            }
            _ => {}
        }
    }
    let bound = let_stmt && binds_guard(scan, ix);
    // Forward to the drop point.
    let mut depth = 0i32;
    let mut k = ix;
    while let Some(next) = scan.sig_after(k, 1) {
        k = next;
        match scan.text(k) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if !bound => depth += 1,
            "}" if !bound => depth -= 1,
            "{" if bound => depth += 1,
            "}" if bound => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            ";" if !bound && depth <= 0 => return k,
            _ => {}
        }
    }
    k
}

/// True when the expression chain after the acquisition at `ix` ends
/// with the guard (possibly through `.unwrap()` / `.expect(..)` / `?`)
/// rather than a value derived from it.
fn binds_guard(scan: &FileScan<'_>, ix: usize) -> bool {
    // `ix` is the method ident; skip its `( )`.
    let Some(mut k) = scan.sig_after(ix, 3) else { return false };
    loop {
        match scan.text(k) {
            ";" => return true,
            "?" => {}
            "." => {
                let Some(m) = scan.sig_after(k, 1) else { return false };
                if !matches!(scan.text(m), "unwrap" | "expect") {
                    return false;
                }
                // Skip the adapter's balanced argument list.
                let Some(open) = scan.sig_after(m, 1) else { return false };
                if scan.text(open) != "(" {
                    return false;
                }
                let mut depth = 0i32;
                k = open;
                loop {
                    match scan.text(k) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    let Some(next) = scan.sig_after(k, 1) else { return false };
                    k = next;
                }
            }
            _ => return false,
        }
        let Some(next) = scan.sig_after(k, 1) else { return false };
        k = next;
    }
}

/// Detects cycles in the accumulated graph and reports each once.
pub fn check(graph: &LockGraph, out: &mut Vec<Finding>) {
    // Group edges per crate.
    let mut crates: BTreeMap<&str, BTreeMap<&str, Vec<&str>>> = BTreeMap::new();
    for (krate, from, to) in graph.edges.keys() {
        crates.entry(krate).or_default().entry(from).or_default().push(to);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (krate, adj) in &crates {
        let nodes: Vec<&str> =
            adj.iter().flat_map(|(f, ts)| std::iter::once(*f).chain(ts.iter().copied())).collect();
        for &start in &nodes {
            let mut stack = vec![start];
            let mut path = Vec::new();
            dfs(adj, start, &mut stack, &mut path, &mut |cycle| {
                // Normalize: rotate the cycle so its smallest node
                // leads, so A→B→A and B→A→B report once.
                let min = cycle.iter().enumerate().min_by_key(|(_, n)| n.as_str()).map(|(i, _)| i);
                let Some(min) = min else { return };
                let mut norm: Vec<String> =
                    cycle[min..].iter().chain(&cycle[..min]).map(|s| s.to_string()).collect();
                norm.push(norm[0].clone());
                if !reported.insert(norm.clone()) {
                    return;
                }
                let mut legs = Vec::new();
                for pair in norm.windows(2) {
                    let key = (krate.to_string(), pair[0].clone(), pair[1].clone());
                    if let Some(site) = graph.edges.get(&key) {
                        legs.push(format!(
                            "{}→{} at {}:{} in `{}`",
                            pair[0], pair[1], site.file, site.line, site.func
                        ));
                    }
                }
                let site = graph
                    .edges
                    .get(&(krate.to_string(), norm[0].clone(), norm[1].clone()))
                    .cloned();
                let (file, line) = site
                    .map(|s| (s.file, s.line))
                    .unwrap_or_else(|| (format!("crates/{krate}"), 1));
                out.push(Finding {
                    file,
                    line,
                    rule: RULE,
                    msg: format!(
                        "lock-order cycle in crate `{krate}`: {} (a thread holding one side \
                         while another holds the other deadlocks): {}",
                        norm.join(" → "),
                        legs.join("; ")
                    ),
                });
            });
            debug_assert!(path.is_empty() && stack == vec![start]);
        }
    }
}

/// DFS from `node` along `adj`, invoking `on_cycle` with the node path
/// of every cycle that returns to a node currently on the stack.
/// Bounded by path length (no revisits within one path), which is
/// plenty for a lock graph of a dozen nodes.
fn dfs<'g>(
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    node: &'g str,
    stack: &mut Vec<&'g str>,
    path: &mut Vec<String>,
    on_cycle: &mut impl FnMut(&[String]),
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if let Some(pos) = stack.iter().position(|&n| n == next) {
            let mut cycle: Vec<String> = stack[pos..].iter().map(|s| s.to_string()).collect();
            cycle[0] = next.to_string();
            on_cycle(&cycle);
            continue;
        }
        stack.push(next);
        path.push(next.to_string());
        dfs(adj, next, stack, path, on_cycle);
        path.pop();
        stack.pop();
    }
}
