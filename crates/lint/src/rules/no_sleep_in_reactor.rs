//! `no-sleep-in-reactor`: reactor code must never block a shard
//! thread. A reactor shard multiplexes hundreds of connections; a
//! single `thread::sleep` on its path stalls *every* connection the
//! shard drives for the duration — the exact failure mode the
//! readiness-driven core exists to rule out. Waiting belongs in the
//! event loop: `epoll_wait`'s timeout bounds idle latency, and
//! per-connection deadlines/ticks express "later" without parking the
//! thread.
//!
//! Scope: non-test code in files whose path names a reactor module
//! (any segment or file name containing a configured fragment —
//! `reactor` by default). Test modules and `tests/`/`benches/` trees
//! are exempt: a harness thread sleeping between assertions blocks
//! nobody's data plane.

use crate::scan::FileScan;
use crate::{Finding, LintConfig};

pub const RULE: &str = "no-sleep-in-reactor";

pub fn check(scan: &FileScan<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let in_scope = cfg
        .reactor_path_fragments
        .iter()
        .any(|frag| scan.path.split('/').any(|seg| seg.contains(frag.as_str())));
    if !in_scope {
        return;
    }
    for &ix in &scan.sig {
        if scan.test_mask[ix] || !scan.is_ident(ix, "sleep") {
            continue;
        }
        // `thread::sleep(` — qualified call, not a local named `sleep`
        // or some other type's method.
        let qualified = scan.sig_before(ix, 1).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_before(ix, 2).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_before(ix, 3).is_some_and(|j| scan.is_ident(j, "thread"));
        let called = scan.sig_after(ix, 1).is_some_and(|j| scan.text(j) == "(");
        if qualified && called {
            out.push(Finding {
                file: scan.path.to_string(),
                line: scan.toks[ix].line,
                rule: RULE,
                msg: "`thread::sleep` in reactor code; a blocked shard stalls every \
                      connection it drives — wait via the event loop's tick/deadline \
                      machinery instead"
                    .to_string(),
            });
        }
    }
}
