//! `safety-comment`: every `unsafe` occurrence (blocks, `unsafe fn`,
//! `unsafe impl`) and every `extern "C"` *item* (foreign block or
//! ABI-declared function) must carry a `// SAFETY:` comment saying why
//! the compiler-unenforced obligation holds. Applies to test code too:
//! a harness poking `kill(2)` at child processes owes the same
//! justification as the signal handler it exercises.
//!
//! `extern "C"` in *type* position (`extern "C" fn(i32)` inside a
//! cast) carries no new obligation and is not flagged: an item is
//! recognized by the brace of a foreign block or by `fn` followed by a
//! function *name*.

use crate::scan::FileScan;
use crate::{Finding, LintConfig};

pub const RULE: &str = "safety-comment";

const MARKER: &str = "SAFETY:";

pub fn check(scan: &FileScan<'_>, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    // The comment may sit against the keyword itself or above the
    // enclosing statement (`let p = unsafe { .. };`).
    let marked =
        |ix: usize| scan.has_marker(ix, MARKER) || scan.has_marker(scan.stmt_start(ix), MARKER);
    for &ix in &scan.sig {
        if scan.is_ident(ix, "unsafe") {
            // `unsafe` inside an `extern "C"`-type cast never occurs;
            // every `unsafe` keyword starts an obligation.
            if !marked(ix) {
                out.push(finding(scan, ix, "`unsafe` without a `// SAFETY:` justification"));
            }
        } else if scan.is_ident(ix, "extern") && is_extern_c_item(scan, ix) && !marked(ix) {
            out.push(finding(scan, ix, "`extern \"C\"` item without a `// SAFETY:` justification"));
        }
    }
}

/// True when the `extern` at `ix` opens a `"C"` foreign block or an
/// ABI-declared named function — the item forms — rather than a
/// function-pointer type.
fn is_extern_c_item(scan: &FileScan<'_>, ix: usize) -> bool {
    let Some(abi) = scan.sig_after(ix, 1) else { return false };
    if scan.text(abi) != "\"C\"" {
        return false;
    }
    match scan.sig_after(ix, 2).map(|j| scan.text(j)) {
        Some("{") => true,
        Some("fn") => {
            // `extern "C" fn name(` is an item; `extern "C" fn(` is a
            // type.
            scan.sig_after(ix, 3).is_some_and(|j| scan.toks[j].kind == crate::lexer::TokKind::Ident)
        }
        _ => false,
    }
}

fn finding(scan: &FileScan<'_>, ix: usize, msg: &str) -> Finding {
    Finding {
        file: scan.path.to_string(),
        line: scan.toks[ix].line,
        rule: RULE,
        msg: msg.to_string(),
    }
}
