//! `journal-exhaustive`: every variant of the coordinator's journal
//! `Record` enum must be handled in the line encoder, the line
//! decoder, and the crash-recovery fold. The daemon's resumption
//! argument rests on the journal being the authority for what a
//! crashed period had committed — a variant that appends
//! (`to_json_line`) but is missing from `parse` comes back from a
//! crash as a "torn line" and silently vanishes from the recovered
//! state; one missing from `apply` parses and is then dropped on the
//! floor. The compiler forces the *encoder* match to be exhaustive,
//! but `parse` is string-keyed and `apply` may use a wildcard arm, so
//! nothing forces the recovery path until this rule (the
//! `msg-exhaustive` analogue for durable state instead of wire
//! protocol).

use crate::rules::msg_exhaustive::{enum_variants, file, fn_refs};
use crate::{Finding, JournalConfig, LintConfig};

pub const RULE: &str = "journal-exhaustive";

/// Runs against the whole workspace's `(path, source)` list.
pub fn check(sources: &[(String, String)], cfg: &LintConfig, out: &mut Vec<Finding>) {
    let Some(journal) = &cfg.journal else { return };
    let Some(scan) = file(sources, &journal.journal_file) else {
        out.push(missing(journal, "journal file not found"));
        return;
    };
    let variants = enum_variants(&scan, &journal.enum_name);
    if variants.is_empty() {
        out.push(missing(
            journal,
            &format!("enum `{}` not found or has no variants", journal.enum_name),
        ));
        return;
    }
    let places = [
        (&journal.encode_fn, "journal encoder"),
        (&journal.decode_fn, "journal decoder"),
        (&journal.apply_fn, "recovery fold"),
    ];
    for (fn_name, what) in places {
        let Some(refs) = fn_refs(&scan, &journal.enum_name, fn_name) else {
            out.push(missing(journal, &format!("{what} `{fn_name}` not found")));
            continue;
        };
        for (variant, line) in &variants {
            if !refs.contains(variant) {
                out.push(Finding {
                    file: journal.journal_file.clone(),
                    line: *line,
                    rule: RULE,
                    msg: format!(
                        "`{}::{variant}` never appears in the {what} (`{fn_name}`); a \
                         journal variant outside the recovery path is state a crash \
                         silently loses",
                        journal.enum_name
                    ),
                });
            }
        }
    }
}

fn missing(journal: &JournalConfig, msg: &str) -> Finding {
    Finding { file: journal.journal_file.clone(), line: 1, rule: RULE, msg: msg.to_string() }
}
