//! `durability`: in crates that hold durable state (the coordinator,
//! whose journal and consensus documents must survive SIGKILL), every
//! file write goes through `flashflow-procutil::persist` — that is
//! where the fsync discipline lives (`atomic_write`'s
//! stage/fsync/rename/dirsync, `append_line`'s O_APPEND +
//! one-write-per-line + fsync). A raw `File::create`, `OpenOptions`,
//! or `std::fs::write` in such a crate is a write the crash-recovery
//! proof does not cover, even in tests: a test helper that bypasses
//! the discipline rots into a production pattern.
//!
//! Other crates are implicitly allowlisted — the measurer's config
//! reader or a fixture writer owes no durability — and
//! `procutil/persist.rs` itself is where the raw calls are *supposed*
//! to be.

use crate::scan::FileScan;
use crate::{Finding, LintConfig};

pub const RULE: &str = "durability";

pub fn check(scan: &FileScan<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let Some(krate) = LintConfig::crate_of(scan.path) else { return };
    if !cfg.durable_crates.iter().any(|c| c == krate) {
        return;
    }
    for &ix in &scan.sig {
        if scan.is_ident(ix, "OpenOptions") {
            out.push(finding(
                scan,
                ix,
                "raw `OpenOptions` in a durable-state crate; open files through \
                 `flashflow_procutil::persist` so the fsync discipline is not bypassed",
            ));
        } else if scan.is_ident(ix, "File")
            && scan.sig_after(ix, 1).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_after(ix, 2).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_after(ix, 3).is_some_and(|j| scan.is_ident(j, "create"))
        {
            out.push(finding(
                scan,
                ix,
                "raw `File::create` in a durable-state crate; use \
                 `flashflow_procutil::atomic_write` (stage, fsync, rename, dirsync)",
            ));
        } else if scan.is_ident(ix, "write")
            && scan.sig_before(ix, 1).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_before(ix, 2).is_some_and(|j| scan.text(j) == ":")
            && scan.sig_before(ix, 3).is_some_and(|j| scan.is_ident(j, "fs"))
        {
            out.push(finding(
                scan,
                ix,
                "raw `fs::write` in a durable-state crate; use \
                 `flashflow_procutil::atomic_write` — `fs::write` syncs nothing and tears \
                 on crash",
            ));
        }
    }
}

fn finding(scan: &FileScan<'_>, ix: usize, msg: &str) -> Finding {
    Finding {
        file: scan.path.to_string(),
        line: scan.toks[ix].line,
        rule: RULE,
        msg: msg.to_string(),
    }
}
