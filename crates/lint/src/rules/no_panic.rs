//! `no-panic`: the long-running binaries (`measurer`, `relay`,
//! `coord`, `top`) must not contain `unwrap()` / `expect()` /
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test
//! code. PR 7's crash-recovery guarantee — SIGKILL the daemon, restart
//! it, resume the roster — is only meaningful if the daemon does not
//! *put itself down* on a torn line, a poisoned lock, or a closed
//! descriptor: those must drain through an error path that logs via
//! the obs sink and exits nonzero instead of unwinding.
//!
//! Test modules (`#[cfg(test)]`, `#[test]`) and files under `tests/`
//! or `benches/` directories are exempt: a failed assertion *is* a
//! test's error path.

use crate::lexer::TokKind;
use crate::scan::FileScan;
use crate::{Finding, LintConfig};

pub const RULE: &str = "no-panic";

/// Method calls that panic on the error/None arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that panic unconditionally when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(scan: &FileScan<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let Some(krate) = LintConfig::crate_of(scan.path) else { return };
    if !cfg.panic_crates.iter().any(|c| c == krate) {
        return;
    }
    for &ix in &scan.sig {
        if scan.test_mask[ix] || scan.toks[ix].kind != TokKind::Ident {
            continue;
        }
        let word = scan.text(ix);
        if PANIC_METHODS.contains(&word) {
            // A method call: `.unwrap(` — not a local named `expect`
            // or a call to some other crate's free `unwrap`.
            let dotted = scan.sig_before(ix, 1).is_some_and(|j| scan.text(j) == ".");
            let called = scan.sig_after(ix, 1).is_some_and(|j| scan.text(j) == "(");
            if dotted && called {
                out.push(finding(
                    scan,
                    ix,
                    format!(
                        "`.{word}()` in a long-running binary; recover or route the error to \
                         the obs sink and exit nonzero"
                    ),
                ));
            }
        } else if PANIC_MACROS.contains(&word)
            && scan.sig_after(ix, 1).is_some_and(|j| scan.text(j) == "!")
        {
            out.push(finding(
                scan,
                ix,
                format!(
                    "`{word}!` in a long-running binary; crash recovery cannot protect a \
                     process that panics itself"
                ),
            ));
        }
    }
}

fn finding(scan: &FileScan<'_>, ix: usize, msg: String) -> Finding {
    Finding { file: scan.path.to_string(), line: scan.toks[ix].line, rule: RULE, msg }
}
