//! `atomic-ordering`: atomic memory orderings must be deliberate, in
//! both directions.
//!
//! * In the hot-path modules (the metrics registry and the blast data
//!   plane, where the <3% instrumentation-overhead gate lives),
//!   `SeqCst` is the *expensive* choice: a full fence per counter
//!   bump. Any `SeqCst` there must carry an `// ORDERING:` comment
//!   saying why the fence is worth it.
//! * Everywhere, `Relaxed` on a **store** is the *dangerous* choice:
//!   stores are how one thread hands a flag or value to another, and
//!   a relaxed store makes no visibility promise about anything
//!   written before it. Any `.store(.., Relaxed)` must carry an
//!   `// ORDERING:` comment saying why no other memory needs to be
//!   published with it. Relaxed *loads* and `fetch_add`s of
//!   independent counters are the normal cheap case and pass silently.

use crate::scan::FileScan;
use crate::{Finding, LintConfig};

pub const RULE: &str = "atomic-ordering";

const MARKER: &str = "ORDERING:";

pub fn check(scan: &FileScan<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let hot = cfg.hot_path_files.iter().any(|f| scan.path.ends_with(f.as_str()));
    // The justification naturally sits above the whole statement, not
    // wedged against the `Ordering::` path — accept either placement.
    let marked =
        |ix: usize| scan.has_marker(ix, MARKER) || scan.has_marker(scan.stmt_start(ix), MARKER);
    for &ix in &scan.sig {
        if hot && scan.is_ident(ix, "SeqCst") && !marked(ix) {
            out.push(Finding {
                file: scan.path.to_string(),
                line: scan.toks[ix].line,
                rule: RULE,
                msg: "`SeqCst` in a hot-path module without an `// ORDERING:` justification \
                      (a full fence on the instrumented path)"
                    .into(),
            });
        }
        if scan.is_ident(ix, "Relaxed") && in_store_call(scan, ix) && !marked(ix) {
            out.push(Finding {
                file: scan.path.to_string(),
                line: scan.toks[ix].line,
                rule: RULE,
                msg: "relaxed store without an `// ORDERING:` justification (a cross-thread \
                      handoff through a relaxed store publishes nothing written before it)"
                    .into(),
            });
        }
    }
}

/// True when the token at `ix` sits inside the argument list of a
/// `.store(...)` call: walking backwards, the unmatched `(` enclosing
/// `ix` is preceded by the identifier `store`. The walk stops at a
/// statement boundary so an ordering named *near* a store is not
/// confused with one passed *to* it.
fn in_store_call(scan: &FileScan<'_>, ix: usize) -> bool {
    let mut depth = 0i32;
    let mut j = ix;
    loop {
        let Some(prev) = scan.sig_before(j, 1) else { return false };
        j = prev;
        match scan.text(j) {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    return scan.sig_before(j, 1).is_some_and(|k| scan.is_ident(k, "store"));
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => return false,
            _ => {}
        }
    }
}
