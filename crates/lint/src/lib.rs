//! `flashflow-lint`: offline, dependency-free static analysis that
//! machine-checks the invariants FlashFlow's security and durability
//! arguments rest on but Rust's type system cannot see.
//!
//! The rules (one module each under [`rules`]):
//!
//! | id              | invariant |
//! |-----------------|-----------|
//! | `safety-comment`  | every `unsafe` block and `extern "C"` item carries `// SAFETY:` |
//! | `atomic-ordering` | `SeqCst` in hot-path modules and `Relaxed` flag stores carry `// ORDERING:` |
//! | `no-panic`        | no `unwrap()`/`expect()`/`panic!` in non-test code of the long-running binaries |
//! | `durability`      | durable-state crates write files only through `flashflow-procutil::persist` |
//! | `lock-order`      | the workspace-wide lock acquisition graph is acyclic |
//! | `msg-exhaustive`  | every `Msg::` variant appears in encode, decode, and the codec property test |
//! | `journal-exhaustive` | every journal `Record::` variant appears in the encoder, decoder, and recovery fold |
//! | `no-sleep-in-reactor` | no `thread::sleep` in non-test reactor code — a blocked shard stalls every connection it drives |
//!
//! Findings print as `file:line: rule-id: message`; `--json` emits the
//! same findings machine-readably; `--allow RULE` downgrades one rule
//! to advisory while a violation is being burned down. The workspace
//! itself lints clean — `tests/self_lint.rs` pins that at zero.

pub mod lexer;
pub mod rules;
pub mod scan;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use scan::FileScan;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id, e.g. `safety-comment`.
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Every rule id, in reporting order.
pub const RULES: &[&str] = &[
    rules::safety::RULE,
    rules::ordering::RULE,
    rules::no_panic::RULE,
    rules::durability::RULE,
    rules::lock_order::RULE,
    rules::msg_exhaustive::RULE,
    rules::journal_exhaustive::RULE,
    rules::no_sleep_in_reactor::RULE,
];

/// What the rules key off: which files are hot paths, which crates are
/// long-running daemons, which hold durable state, and where the
/// protocol codec lives. The defaults encode *this* workspace's
/// layout; tests override fields to lint fixtures.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Files (suffix-matched) where `SeqCst` must justify its cost
    /// with `// ORDERING:` — the <3%-overhead hot paths.
    pub hot_path_files: Vec<String>,
    /// Crates (by `crates/<name>/` directory) whose non-test code must
    /// not panic: the binaries that are supposed to run for months.
    pub panic_crates: Vec<String>,
    /// Crates holding durable state: raw `File::create` /
    /// `OpenOptions` / `fs::write` are forbidden — writes go through
    /// `flashflow-procutil::persist`.
    pub durable_crates: Vec<String>,
    /// The protocol-exhaustiveness rule's anchors; `None` disables the
    /// rule (fixture trees have no codec).
    pub codec: Option<CodecConfig>,
    /// The journal-exhaustiveness rule's anchors; `None` disables the
    /// rule (fixture trees have no journal).
    pub journal: Option<JournalConfig>,
    /// Path fragments naming reactor modules (matched against each
    /// `/`-separated segment): non-test code there must never
    /// `thread::sleep` — a blocked shard stalls every connection the
    /// epoll loop drives.
    pub reactor_path_fragments: Vec<String>,
    /// Rules downgraded to advisory: still reported, but exempt from
    /// the nonzero exit.
    pub allow: BTreeSet<String>,
}

/// Where the wire codec lives and which functions must handle every
/// message variant.
#[derive(Debug, Clone)]
pub struct CodecConfig {
    /// File declaring the message enum.
    pub enum_file: String,
    /// The enum's name (`Msg`).
    pub enum_name: String,
    /// File holding the codec functions.
    pub codec_file: String,
    /// Encoder function name; every variant must be constructed or
    /// matched inside it.
    pub encode_fn: String,
    /// Decoder function name; likewise.
    pub decode_fn: String,
    /// The codec property test; every variant must round-trip there.
    pub prop_file: String,
}

/// Where the coordinator's crash journal lives and which functions
/// must handle every record variant (the durable-state analogue of
/// [`CodecConfig`]).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// File declaring the record enum, its codec, and the recovery
    /// fold (they live together in the journal module).
    pub journal_file: String,
    /// The enum's name (`Record`).
    pub enum_name: String,
    /// Line-encoder method; every variant must be matched inside it.
    pub encode_fn: String,
    /// Line-decoder method; a variant missing here comes back from a
    /// crash as a torn line.
    pub decode_fn: String,
    /// Recovery fold; a variant missing here parses and is dropped.
    pub apply_fn: String,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            hot_path_files: vec![
                "crates/obs/src/metrics.rs".into(),
                "crates/proto/src/blast.rs".into(),
            ],
            panic_crates: vec!["measurer".into(), "relay".into(), "coord".into(), "top".into()],
            durable_crates: vec!["coord".into()],
            codec: Some(CodecConfig {
                enum_file: "crates/proto/src/msg.rs".into(),
                enum_name: "Msg".into(),
                codec_file: "crates/proto/src/frame.rs".into(),
                encode_fn: "encode".into(),
                decode_fn: "decode_payload".into(),
                prop_file: "crates/proto/tests/prop_codec.rs".into(),
            }),
            journal: Some(JournalConfig {
                journal_file: "crates/coord/src/journal.rs".into(),
                enum_name: "Record".into(),
                encode_fn: "to_json_line".into(),
                decode_fn: "parse".into(),
                apply_fn: "apply".into(),
            }),
            reactor_path_fragments: vec!["reactor".into()],
            allow: BTreeSet::new(),
        }
    }
}

impl LintConfig {
    /// The `crates/<name>/` segment of a workspace-relative path, if
    /// the path is inside a crate.
    pub fn crate_of(path: &str) -> Option<&str> {
        let rest = path.strip_prefix("crates/")?;
        rest.split('/').next()
    }
}

/// Lints one file's source text under its workspace-relative path.
/// Used directly by the fixture tests; [`lint_workspace`] adds the
/// cross-file codec rule on top.
pub fn lint_file(path: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let scan = FileScan::new(path, src);
    let mut findings = Vec::new();
    rules::safety::check(&scan, cfg, &mut findings);
    rules::ordering::check(&scan, cfg, &mut findings);
    rules::no_panic::check(&scan, cfg, &mut findings);
    rules::durability::check(&scan, cfg, &mut findings);
    rules::no_sleep_in_reactor::check(&scan, cfg, &mut findings);
    findings
}

/// Walks every workspace `.rs` file under `root` and returns all
/// findings, sorted by file, line, and rule.
///
/// # Errors
/// I/O errors reading the tree; an unreadable workspace is a lint
/// failure, not a silent pass.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> std::io::Result<Vec<Finding>> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    let mut lock_graph = rules::lock_order::LockGraph::default();
    let mut sources = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        sources.push((rel.clone(), src));
    }
    for (rel, src) in &sources {
        findings.extend(lint_file(rel, src, cfg));
        let scan = FileScan::new(rel, src);
        rules::lock_order::collect(&scan, &mut lock_graph);
    }
    rules::lock_order::check(&lock_graph, &mut findings);
    rules::msg_exhaustive::check(&sources, cfg, &mut findings);
    rules::journal_exhaustive::check(&sources, cfg, &mut findings);
    findings.sort();
    Ok(findings)
}

/// Every workspace-relative `.rs` path under `root`, sorted, skipping
/// build output, VCS internals, and lint fixture trees (which contain
/// deliberate violations).
///
/// # Errors
/// Directory traversal errors.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Escapes `s` for inclusion in a JSON string literal (the `--json`
/// output; kept local so the linter depends on nothing, not even
/// `flashflow-obs`).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
