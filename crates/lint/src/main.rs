//! The `flashflow-lint` binary: lints the workspace and exits nonzero
//! on findings. See the crate docs (and README § "Static analysis")
//! for the rule catalogue.

use std::path::PathBuf;
use std::process::ExitCode;

use flashflow_lint::{json_escape, lint_workspace, Finding, LintConfig, RULES};

const USAGE: &str = "\
flashflow-lint: enforce FlashFlow's concurrency, durability, and protocol invariants

USAGE: flashflow-lint [OPTIONS]

OPTIONS:
    --root DIR      workspace root to lint (default: auto-detected from cwd)
    --allow RULE    downgrade RULE to advisory: reported, but exempt from
                    the nonzero exit (repeatable; the burndown baseline)
    --deny-all      ignore every --allow: all rules gate (the CI mode)
    --json          machine-readable findings on stdout
    --list-rules    print the rule ids and exit
    -h, --help      this text

EXIT: 0 clean, 1 findings under denied rules, 2 usage or I/O error.";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_all = false;
    let mut cfg = LintConfig::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--list-rules" => {
                for rule in RULES {
                    println!("{rule}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                let dir = it.next().ok_or("--root wants a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--allow" => {
                let rule = it.next().ok_or("--allow wants a rule id")?;
                if !RULES.contains(&rule.as_str()) {
                    return Err(format!("--allow {rule}: unknown rule (see --list-rules)"));
                }
                cfg.allow.insert(rule);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if deny_all {
        cfg.allow.clear();
    }
    let root = match root {
        Some(r) => r,
        None => detect_root().ok_or(
            "no workspace root found (no ancestor with Cargo.toml + crates/); pass --root",
        )?,
    };
    let findings =
        lint_workspace(&root, &cfg).map_err(|e| format!("lint {}: {e}", root.display()))?;
    let denied: Vec<&Finding> = findings.iter().filter(|f| !cfg.allow.contains(f.rule)).collect();
    if json {
        print_json(&findings, &cfg);
    } else {
        for f in &findings {
            let note = if cfg.allow.contains(f.rule) { " (allowed)" } else { "" };
            println!("{f}{note}");
        }
        eprintln!(
            "flashflow-lint: {} finding(s), {} gating, {} file(s) checked under {}",
            findings.len(),
            denied.len(),
            flashflow_lint::workspace_files(&root).map(|f| f.len()).unwrap_or(0),
            root.display()
        );
    }
    Ok(if denied.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

/// Ascends from the cwd to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn detect_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_json(findings: &[Finding], cfg: &LintConfig) {
    let mut lines = Vec::with_capacity(findings.len());
    for f in findings {
        lines.push(format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"allowed\":{},\"msg\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            cfg.allow.contains(f.rule),
            json_escape(&f.msg)
        ));
    }
    println!("[{}]", lines.join(","));
}
