//! Figure 16 (Appendix E.3): measurement-duration strategies — the CDF
//! of relative accuracy when summarising the same 60-second runs by the
//! median of their first 10, 20, 30, or all 60 seconds.
//!
//! Paper: the 30-second median has the tightest range (0.84–1.01 of
//! ground truth) and is chosen as the deployment setting.

use flashflow_bench::{compare, header, print_cdf};
use flashflow_core::measure::{run_measurement, Assignment};
use flashflow_core::params::Params;
use flashflow_core::verify::TargetBehavior;
use flashflow_simnet::host::Net;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::median;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

fn main() {
    let seed = 16;
    header("fig16", "Measurement duration strategies (median of first k seconds)", seed);
    let mut params = Params::paper();
    params.slot = flashflow_simnet::time::SimDuration::from_secs(60);
    let members = [(2usize, 941.0), (3, 1076.0), (4, 1611.0)];
    let limits: [Option<f64>; 4] = [Some(250.0), Some(500.0), Some(750.0), None];

    // Collect 60-second per-second series across configurations.
    let mut runs: Vec<(Vec<f64>, f64)> = Vec::new(); // (z series, ground truth)
    for (li, limit) in limits.iter().enumerate() {
        let gt = limit
            .map(|v| Rate::from_mbit(v).bytes_per_sec())
            .unwrap_or(Rate::from_mbit(890.0).bytes_per_sec());
        for run in 0..6u64 {
            let jitter_seed = seed ^ (li as u64) << 8 ^ run << 24;
            let (net, ids) = Net::table1_seeded(Some(jitter_seed));
            let mut tor = TorNet::from_net(net);
            let mut config = RelayConfig::new("target");
            if let Some(l) = limit {
                config = config.with_rate_limit(Rate::from_mbit(*l));
            }
            let relay = tor.add_relay(ids[0], config);
            let needed = params.multiplier * gt;
            let share = needed / members.len() as f64;
            let assignments: Vec<Assignment> = members
                .iter()
                .map(|(host_idx, _)| Assignment {
                    host: ids[*host_idx],
                    allocation: Rate::from_bytes_per_sec(share),
                    processes: 1,
                    sockets: 53,
                })
                .collect();
            let mut rng = SimRng::seed_from_u64(jitter_seed ^ 0xD00D);
            let m = run_measurement(
                &mut tor,
                relay,
                &assignments,
                &params,
                TargetBehavior::Honest,
                &mut rng,
            );
            let z: Vec<f64> = m.seconds.iter().map(|s| s.z).collect();
            runs.push((z, gt));
        }
    }

    let mut best: Option<(&str, f64)> = None;
    for (label, k) in [("10s", 10usize), ("20s", 20), ("30s", 30), ("60s", 60)] {
        let fractions: Vec<f64> =
            runs.iter().map(|(z, gt)| median(&z[..k.min(z.len())]).unwrap_or(0.0) / gt).collect();
        print_cdf(&format!("{label} median, fraction of capacity"), &fractions, 7);
        let lo = fractions.iter().cloned().fold(f64::MAX, f64::min);
        let hi = fractions.iter().cloned().fold(f64::MIN, f64::max);
        let range = hi - lo;
        println!("  {label}: range [{lo:.3}, {hi:.3}] width {range:.3}");
        if best.map(|(_, w)| range < w).unwrap_or(true) {
            best = Some((label, range));
        }
    }
    compare("tightest strategy", "30s median [0.84, 1.01]", &format!("{:?}", best.map(|b| b.0)));
}
