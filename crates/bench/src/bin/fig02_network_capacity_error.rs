//! Figure 2: network capacity error (Eq. 3) over time for windows of a
//! day, week, month, and year.
//!
//! Paper: median NCE 5% (day), 14% (week), 22% (month), 36% (year);
//! maximum observed 60%.

use flashflow_bench::{compare, header, print_series};
use flashflow_metrics::error::nce_series;
use flashflow_metrics::synth::{generate, SynthConfig};
use flashflow_simnet::stats::{median, min_max};

fn main() {
    let seed = 2;
    header("fig02", "Network capacity error over time (11-year archive)", seed);
    let synth = generate(&SynthConfig::paper_scale(seed));
    let archive = &synth.archive;
    let (d, w, m, y) = archive.period_steps();

    let mut overall_max = 0.0f64;
    for (label, p, paper) in
        [("day", d, "5%"), ("week", w, "14%"), ("month", m, "22%"), ("year", y, "36%")]
    {
        let series: Vec<f64> = nce_series(archive, p).iter().map(|v| v * 100.0).collect();
        // Skip the window warm-up at the start of the archive.
        let settled = &series[p.min(series.len() / 4)..];
        print_series(&format!("NCE %, p = 1 {label}"), "step", settled, 12);
        let med = median(settled).unwrap_or(0.0);
        let (_, hi) = min_max(settled).unwrap_or((0.0, 0.0));
        overall_max = overall_max.max(hi);
        compare(&format!("median NCE (p = {label})"), paper, &format!("{med:.1}%"));
    }
    compare("maximum NCE (any window)", "60%", &format!("{overall_max:.1}%"));
}
