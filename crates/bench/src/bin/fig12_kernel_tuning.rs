//! Figure 12 (Appendix D.1): single-socket throughput with the default
//! vs tuned kernel at 28/120/340 ms RTT, measured by FlashFlow against a
//! lab relay.
//!
//! Paper: tuned beats default at every RTT; throughput falls as RTT
//! rises; tuned at 28 ms reaches 1,269 Mbit/s, consistent with the
//! 1,248 Mbit/s lab Tor CPU limit.

use flashflow_bench::{compare, header};
use flashflow_simnet::host::{HostProfile, Net};
use flashflow_simnet::stats::median;
use flashflow_simnet::stats::SecondsAccumulator;
use flashflow_simnet::tcp::KernelProfile;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

fn run(rtt_ms: u64, tuned: bool) -> f64 {
    let mut net = Net::new();
    let kernel = if tuned { KernelProfile::tuned() } else { KernelProfile::default_linux() };
    let measurer = net.add_host(HostProfile::lab("lab-measurer").with_kernel(kernel));
    let target_host = net.add_host(HostProfile::lab("lab-target").with_kernel(kernel));
    net.set_rtt(measurer, target_host, SimDuration::from_millis(rtt_ms));
    let mut tor = TorNet::from_net(net);
    let target = tor.add_relay(target_host, RelayConfig::new("target"));
    let flow = tor.start_measurement_flow(measurer, target, 1, None);
    let mut acc = SecondsAccumulator::new();
    let dt = tor.net.engine().tick_duration().as_secs_f64();
    let end = tor.now() + SimDuration::from_secs(240);
    while tor.now() < end {
        tor.tick();
        acc.push(tor.net.engine().flow_bytes_last_tick(flow), dt);
    }
    let med = median(acc.seconds()).unwrap_or(0.0);
    Rate::from_bytes_per_sec(med).as_mbit()
}

fn main() {
    header("fig12", "Single-socket throughput: default vs tuned kernel", 0);
    println!("{:>8} {:>14} {:>14}", "rtt(ms)", "default(Mbit)", "tuned(Mbit)");
    let mut results = Vec::new();
    for rtt in [28u64, 120, 340] {
        let d = run(rtt, false);
        let t = run(rtt, true);
        println!("{rtt:>8} {d:>14.0} {t:>14.0}");
        results.push((rtt, d, t));
    }
    for (rtt, d, t) in &results {
        assert!(t >= d, "tuned must beat default at {rtt} ms");
    }
    compare("tuned @28ms", "1269 Mbit/s (Tor CPU-limited)", &format!("{:.0} Mbit/s", results[0].2));
    compare(
        "default falls with RTT",
        "yes",
        &format!("{:.0} -> {:.0} -> {:.0} Mbit/s", results[0].1, results[1].1, results[2].1),
    );
}
