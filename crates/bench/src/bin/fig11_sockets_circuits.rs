//! Figure 11 (Appendix C): lab Tor throughput sweeping the number of
//! client sockets vs the number of circuits on a single socket.
//!
//! Paper: the sockets curve rises to a 1,248 Mbit/s peak around 13–20
//! sockets (Tor pegs a CPU core from 13), then declines slightly; the
//! circuits curve stays flat at the single-socket KIST limit.

use flashflow_bench::{compare, header};
use flashflow_simnet::host::{HostProfile, Net};
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;
use flashflow_tornet::sched::Scheduler;

fn lab_pair() -> (TorNet, flashflow_simnet::host::HostId, flashflow_simnet::host::HostId) {
    let mut net = Net::new();
    let client = net.add_host(HostProfile::lab("lab-client"));
    let target = net.add_host(HostProfile::lab("lab-target"));
    net.set_rtt(client, target, SimDuration::from_micros(130));
    (TorNet::from_net(net), client, target)
}

fn main() {
    header("fig11", "Lab throughput vs sockets and vs circuits", 0);
    println!("{:>8} {:>16} {:>16}", "n", "sockets(Mbit/s)", "circuits(Mbit/s)");
    let mut peak = (0u32, 0.0f64);
    let mut circuits_values = Vec::new();
    for n in [1u32, 2, 5, 10, 13, 20, 40, 60, 80, 100] {
        // Sockets experiment: n one-socket clients through the target.
        let (mut tor, client, target_host) = lab_pair();
        let relay = tor.add_relay(target_host, RelayConfig::new("target"));
        let flow = tor.start_client_traffic(client, &[relay], client, n, Scheduler::Kist);
        tor.run_for(SimDuration::from_secs(120));
        let sockets_mbit = Rate::from_bytes_per_sec(tor.net.engine().flow_rate(flow)).as_mbit();
        if sockets_mbit > peak.1 {
            peak = (n, sockets_mbit);
        }

        // Circuits experiment: one socket carrying n circuits.
        let (mut tor2, client2, target_host2) = lab_pair();
        let relay2 = tor2.add_relay(target_host2, RelayConfig::new("target"));
        let flow2 = tor2.start_client_traffic(client2, &[relay2], client2, 1, Scheduler::Kist);
        // n circuits on one socket: the window cap scales, the KIST
        // single-socket cap does not.
        let rtt = tor2.circuit_rtt(client2, &[relay2], client2).as_secs_f64().max(1e-4);
        let window_cap = n as f64 * flashflow_tornet::circuit::circuit_window_rate_cap(rtt);
        let kist_cap = Scheduler::Kist.bundle_cap(1).unwrap();
        tor2.net.engine_mut().set_flow_cap(flow2, Some(window_cap.min(kist_cap)));
        tor2.run_for(SimDuration::from_secs(120));
        let circuits_mbit = Rate::from_bytes_per_sec(tor2.net.engine().flow_rate(flow2)).as_mbit();
        circuits_values.push(circuits_mbit);
        println!("{n:>8} {sockets_mbit:>16.0} {circuits_mbit:>16.0}");
    }
    compare(
        "sockets-curve peak",
        "1248 Mbit/s near 13-20 sockets",
        &format!("{:.0} Mbit/s at {}", peak.1, peak.0),
    );
    let spread = circuits_values.iter().cloned().fold(f64::MIN, f64::max)
        - circuits_values.iter().cloned().fold(f64::MAX, f64::min);
    compare(
        "circuits curve flat",
        "yes (KIST single-socket limit)",
        &format!("spread {spread:.0} Mbit/s"),
    );
}
