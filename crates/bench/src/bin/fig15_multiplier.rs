//! Figure 15 (Appendix E.2): the multiplier sweep — relative measured
//! throughput at m ∈ {1.5, 1.75, 2.0, 2.25, 2.5} across team subsets
//! and target capacities.
//!
//! Paper: m = 2.25 is the smallest multiplier with no outliers below
//! 0.8× ground truth.

use flashflow_bench::{header, Boxplot};
use flashflow_core::measure::{run_measurement, Assignment};
use flashflow_core::params::Params;
use flashflow_core::verify::TargetBehavior;
use flashflow_simnet::host::Net;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

fn main() {
    let seed = 15;
    header("fig15", "Multiplier sweep: relative throughput vs m", seed);
    let params = Params::paper();
    let members = [(1usize, 946.0), (2, 941.0), (3, 1076.0), (4, 1611.0)];
    let limits: [Option<f64>; 5] = [Some(10.0), Some(250.0), Some(500.0), Some(750.0), None];
    let gts: Vec<f64> = limits
        .iter()
        .map(|l| {
            l.map(|v| Rate::from_mbit(v).bytes_per_sec())
                .unwrap_or(Rate::from_mbit(890.0).bytes_per_sec())
        })
        .collect();

    println!("{:>6} {:>60}", "m", "estimate / ground truth");
    let mut first_clean = None;
    for m in [1.5f64, 1.75, 2.0, 2.25, 2.5] {
        let mut fractions = Vec::new();
        for (limit, gt) in limits.iter().zip(&gts) {
            let needed = m * gt;
            for subset_mask in 1u32..16 {
                let subset: Vec<(usize, f64)> = members
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| subset_mask & (1 << k) != 0)
                    .map(|(_, v)| *v)
                    .collect();
                let share = needed / subset.len() as f64;
                let total: f64 = subset.iter().map(|(_, c)| c * 1e6 / 8.0).sum();
                if total < needed || subset.iter().any(|(_, c)| c * 1e6 / 8.0 < share) {
                    continue;
                }
                let jitter_seed = seed ^ (subset_mask as u64) << 16 ^ (m * 100.0) as u64;
                let (net, ids) = Net::table1_seeded(Some(jitter_seed));
                let mut tor = TorNet::from_net(net);
                let mut config = RelayConfig::new("target");
                if let Some(l) = limit {
                    config = config.with_rate_limit(Rate::from_mbit(*l));
                }
                let relay = tor.add_relay(ids[0], config);
                let sockets_each = (params.sockets as usize / subset.len()).max(1) as u32;
                let assignments: Vec<Assignment> = subset
                    .iter()
                    .map(|(host_idx, _)| Assignment {
                        host: ids[*host_idx],
                        allocation: Rate::from_bytes_per_sec(share),
                        processes: 1,
                        sockets: sockets_each,
                    })
                    .collect();
                let mut rng = SimRng::seed_from_u64(jitter_seed ^ 0xBEEF);
                let meas = run_measurement(
                    &mut tor,
                    relay,
                    &assignments,
                    &params,
                    TargetBehavior::Honest,
                    &mut rng,
                );
                fractions.push(meas.estimate.bytes_per_sec() / gt);
            }
        }
        let bp = Boxplot::of(&fractions).expect("non-empty");
        let min = fractions.iter().cloned().fold(f64::MAX, f64::min);
        println!("{m:>6.2} {bp}  min={min:.3}  n={}", fractions.len());
        if min >= 0.8 && first_clean.is_none() {
            first_clean = Some(m);
        }
    }
    println!("smallest m with no result below 0.8x ground truth: {:?} (paper: 2.25)", first_clean);
}
