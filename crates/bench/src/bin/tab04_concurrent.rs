//! Table 4 (Appendix F): concurrent measurement accuracy — eight
//! 100 Mbit/s relays, four 200 Mbit/s relays, or two 400 Mbit/s relays
//! on US-SW, measured simultaneously by US-E + NL.
//!
//! Paper ground truths 94.2/191/393 Mbit/s; all but one estimate within
//! the (−20%, +5%) bounds.

use flashflow_bench::{compare, header};
use flashflow_core::measure::{run_concurrent_measurements, Assignment, BatchItem};
use flashflow_core::params::Params;
use flashflow_core::verify::TargetBehavior;
use flashflow_simnet::host::Net;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

fn main() {
    let seed = 40;
    header("tab04", "FlashFlow estimates during concurrent measurement", seed);
    let params = Params::paper();
    println!("{:>8} {:>8} {:>24} {:>18}", "limit", "relays", "absolute (Mbit/s)", "relative (%)");

    for (limit, count) in [(100.0, 8usize), (200.0, 4), (400.0, 2)] {
        let (net, ids) = Net::table1_seeded(Some(seed ^ (limit as u64)));
        let mut tor = TorNet::from_net(net);
        // All relays share the US-SW machine (one Tor CPU each, shared
        // NIC), as in the paper's parallelised setup.
        let relays: Vec<_> = (0..count)
            .map(|i| {
                tor.add_relay(
                    ids[0],
                    RelayConfig::new(format!("r{i}")).with_rate_limit(Rate::from_mbit(limit)),
                )
            })
            .collect();
        // US-E and NL split the demand for each relay evenly.
        let share = params.excess_factor() * Rate::from_mbit(limit).bytes_per_sec() / 2.0;
        let sockets = (params.sockets as usize / 2 / count).max(1) as u32;
        let items: Vec<BatchItem> = relays
            .iter()
            .map(|r| BatchItem {
                target: *r,
                assignments: vec![
                    Assignment {
                        host: ids[2],
                        allocation: Rate::from_bytes_per_sec(share),
                        processes: 1,
                        sockets,
                    },
                    Assignment {
                        host: ids[4],
                        allocation: Rate::from_bytes_per_sec(share),
                        processes: 1,
                        sockets,
                    },
                ],
                behavior: TargetBehavior::Honest,
            })
            .collect();
        let mut rng = SimRng::seed_from_u64(seed ^ 0xCAFE);
        let results = run_concurrent_measurements(&mut tor, &items, &params, &mut rng);
        let estimates: Vec<f64> = results.iter().map(|m| m.estimate.as_mbit()).collect();
        let lo = estimates.iter().cloned().fold(f64::MAX, f64::min);
        let hi = estimates.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "{:>8.0} {:>8} {:>24} {:>18}",
            limit,
            count,
            format!("[{lo:.1}, {hi:.1}]"),
            format!("[{:.0}, {:.0}]", lo / limit * 100.0, hi / limit * 100.0)
        );
    }
    compare("estimates within (-20%,+5%)", "all but one", "see rows above");
}
