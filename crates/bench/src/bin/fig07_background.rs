//! Figure 7: Tor throughput during a measurement of a relay carrying
//! real client background traffic (250 Mbit/s guard with ~50 Mbit/s of
//! client load, r = 0.1, one NL measurer).
//!
//! Paper: background + measurement as reported by FlashFlow equals the
//! relay's own total; background is clamped to 25 Mbit/s during the
//! measurement (r/(1−r)·x with r=0.1); a one-second token-bucket burst
//! spikes at measurement start; background recovers immediately after.

use flashflow_bench::{compare, header};
use flashflow_core::params::Params;
use flashflow_simnet::host::{HostProfile, Net};
use flashflow_simnet::stats::SecondsAccumulator;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;
use flashflow_tornet::sched::Scheduler;

fn main() {
    header("fig07", "Measurement of a relay with client background traffic", 7);
    let mut params = Params::paper();
    params.slot = SimDuration::from_secs(30);

    let mut net = Net::new();
    net.enable_wan_loss();
    let nl = net.add_host(HostProfile::host_nl());
    let target_host = net.add_host(HostProfile::us_sw());
    let client = net.add_host(HostProfile::new("clients", Rate::from_gbit(2.0)));
    let server = net.add_host(HostProfile::new("server", Rate::from_gbit(10.0)));
    net.set_rtt(nl, target_host, SimDuration::from_millis(137));
    net.set_rtt(client, target_host, SimDuration::from_millis(40));
    net.set_rtt(server, target_host, SimDuration::from_millis(30));
    let mut tor = TorNet::from_net(net);
    let relay = tor.add_relay(
        target_host,
        RelayConfig::new("guard").with_rate_limit(Rate::from_mbit(250.0)).with_ratio(0.1),
    );

    // ~50 Mbit/s of client traffic: 25 circuits window/KIST-capped.
    let bg = tor.start_client_traffic(server, &[relay], client, 25, Scheduler::Kist);
    tor.net.engine_mut().set_flow_cap(bg, Some(Rate::from_mbit(50.0).bytes_per_sec()));

    let dt = tor.net.engine().tick_duration().as_secs_f64();
    let mut all_acc = SecondsAccumulator::new();
    let mut meas_acc = SecondsAccumulator::new();
    let mut bg_acc = SecondsAccumulator::new();

    // 50 s before, 30 s measurement, 70 s after.
    let sample = |tor: &TorNet,
                  meas_bytes: f64,
                  all_acc: &mut SecondsAccumulator,
                  meas_acc: &mut SecondsAccumulator,
                  bg_acc: &mut SecondsAccumulator| {
        all_acc.push(tor.relay_forwarded_last_tick(relay), dt);
        meas_acc.push(meas_bytes, dt);
        bg_acc.push(tor.relay_background_last_tick(relay), dt);
    };
    let warm_end = tor.now() + SimDuration::from_secs(50);
    while tor.now() < warm_end {
        tor.tick();
        sample(&tor, 0.0, &mut all_acc, &mut meas_acc, &mut bg_acc);
    }
    let flow = tor.start_measurement_flow(nl, relay, 160, Some(Rate::from_mbit(738.0)));
    tor.begin_measurement(relay, vec![flow]);
    let meas_end = tor.now() + params.slot;
    while tor.now() < meas_end {
        tor.tick();
        let mb = tor.net.engine().flow_bytes_last_tick(flow);
        sample(&tor, mb, &mut all_acc, &mut meas_acc, &mut bg_acc);
    }
    tor.end_measurement(relay);
    tor.net.engine_mut().stop_flow(flow);
    let tail_end = tor.now() + SimDuration::from_secs(70);
    while tor.now() < tail_end {
        tor.tick();
        sample(&tor, 0.0, &mut all_acc, &mut meas_acc, &mut bg_acc);
    }

    let all = all_acc.into_seconds();
    let meas = meas_acc.into_seconds();
    let bg = bg_acc.into_seconds();
    println!("{:>6} {:>12} {:>12} {:>12}", "t(s)", "all(Mbit)", "meas(Mbit)", "bg(Mbit)");
    for t in (0..all.len()).step_by(5) {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1}",
            t as i64 - 50,
            all[t] * 8.0 / 1e6,
            meas[t] * 8.0 / 1e6,
            bg[t] * 8.0 / 1e6
        );
    }

    // Checks mirroring the paper's observations.
    let mid = 65; // mid-measurement
    let sum = (meas[mid] + bg[mid]) * 8.0 / 1e6;
    let total = all[mid] * 8.0 / 1e6;
    compare(
        "reported meas+bg equals relay total",
        "yes",
        &format!("{sum:.1} vs {total:.1} Mbit/s"),
    );
    compare(
        "background clamped during measurement",
        "25 Mbit/s",
        &format!("{:.1} Mbit/s", bg[mid] * 8.0 / 1e6),
    );
    let before = bg[30] * 8.0 / 1e6;
    let after = bg[all.len() - 20] * 8.0 / 1e6;
    compare("background recovers afterwards", "yes", &format!("{before:.1} -> {after:.1} Mbit/s"));
    let burst = all[50].max(all[51]) * 8.0 / 1e6;
    compare("one-second burst at start", ">250 Mbit/s", &format!("{burst:.1} Mbit/s"));
}
