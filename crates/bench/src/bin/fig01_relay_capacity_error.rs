//! Figure 1: CDF of mean relay capacity error (Eq. 2) per relay, for
//! true-capacity windows of a day, week, month, and year.
//!
//! Paper: median of mean error 7% (day) rising to 28% (year); ≥25% of
//! relays at 18%+ (day) and 49%+ (year); >85% of relays non-zero error.

use flashflow_bench::{compare, header, print_cdf};
use flashflow_metrics::error::mean_rce_per_relay;
use flashflow_metrics::synth::{generate, SynthConfig};
use flashflow_simnet::stats::quantile;

fn main() {
    let seed = 1;
    header("fig01", "Relative error in relay capacity (11-year archive)", seed);
    let synth = generate(&SynthConfig::paper_scale(seed));
    let archive = &synth.archive;
    let (d, w, m, y) = archive.period_steps();
    let min_steps = d * 3;

    for (label, p, paper_median) in
        [("day", d, "7%"), ("week", w, "—"), ("month", m, "—"), ("year", y, "28%")]
    {
        let errors: Vec<f64> =
            mean_rce_per_relay(archive, p, min_steps).iter().map(|e| e * 100.0).collect();
        print_cdf(&format!("mean capacity error %, p = 1 {label}"), &errors, 11);
        let med = quantile(&errors, 0.5).unwrap_or(0.0);
        let p75 = quantile(&errors, 0.75).unwrap_or(0.0);
        compare(&format!("median mean-RCE (p = {label})"), paper_median, &format!("{med:.1}%"));
        compare(
            &format!("75th-pct mean-RCE (p = {label})"),
            if label == "day" {
                "18%"
            } else if label == "year" {
                "49%"
            } else {
                "—"
            },
            &format!("{p75:.1}%"),
        );
    }
}
