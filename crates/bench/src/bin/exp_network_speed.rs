//! §7 "Network Measurement Efficiency": how fast a 3 × 1 Gbit/s team
//! measures the whole July-2019 network with greedy slot packing, and
//! how quickly new relays get their first measurement.
//!
//! Paper: median day needs 599 30-second slots (~5 h, range 4.9–5.1) for
//! a median 6,419 relays / 608 Gbit/s; new relays (median 3 per
//! consensus, prior = 51 Mbit/s) are measured within a median 30 s,
//! max 13 min.

use flashflow_bench::{compare, header};
use flashflow_core::params::Params;
use flashflow_core::schedule::{assign_new_relay, build_randomized_schedule, greedy_pack};
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::median;
use flashflow_simnet::units::Rate;

fn main() {
    let seed = 77;
    header("exp_network_speed", "Whole-network measurement efficiency", seed);
    let params = Params::paper();
    let team = Rate::from_gbit(3.0);

    // 31 "days" of July: re-sample the network each day.
    let mut slot_counts = Vec::new();
    let mut relay_counts = Vec::new();
    let mut totals = Vec::new();
    use flashflow_simnet::host::HostProfile;
    for day in 0..31u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ day);
        let mut tor = flashflow_tornet::netbuild::TorNet::new();
        let h = tor.add_host(HostProfile::new("all", Rate::from_gbit(1.0)));
        let n = 6355 + rng.gen_index(174); // paper range 6355..6528
        let relays: Vec<_> = (0..n)
            .map(|i| {
                let relay =
                    tor.add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("r{i}")));
                let cap = (36.0 * rng.gen_lognormal(0.0, 1.45)).min(998.0);
                (relay, Rate::from_mbit(cap))
            })
            .collect();
        let schedule = greedy_pack(&relays, team, &params).expect("packable");
        slot_counts.push(schedule.slots.len() as f64);
        relay_counts.push(n as f64);
        totals.push(relays.iter().map(|(_, c)| c.as_gbit()).sum::<f64>());
    }
    let med_slots = median(&slot_counts).unwrap();
    let med_hours = med_slots * params.slot.as_secs_f64() / 3600.0;
    let (lo, hi) = flashflow_simnet::stats::min_max(&slot_counts).unwrap();
    compare("median slots for whole network", "599", &format!("{med_slots:.0}"));
    compare(
        "median hours (min-max)",
        "5.0 (4.9-5.1)",
        &format!(
            "{med_hours:.1} ({:.1}-{:.1})",
            lo * params.slot.as_secs_f64() / 3600.0,
            hi * params.slot.as_secs_f64() / 3600.0
        ),
    );
    compare("median relays measured", "6419", &format!("{:.0}", median(&relay_counts).unwrap()));
    compare(
        "median total capacity",
        "608 Gbit/s",
        &format!("{:.0} Gbit/s", median(&totals).unwrap()),
    );

    // New-relay latency: a period schedule for the old relays, then new
    // arrivals (median 3 per hourly consensus, prior 51 Mbit/s) assigned
    // to the earliest free slot after arrival.
    let mut rng = SimRng::seed_from_u64(seed ^ 0x4E455721);
    let mut tor = flashflow_tornet::netbuild::TorNet::new();
    let h = tor.add_host(HostProfile::new("all", Rate::from_gbit(1.0)));
    let old: Vec<_> = (0..6419)
        .map(|i| {
            let relay =
                tor.add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("r{i}")));
            let cap = (36.0 * rng.gen_lognormal(0.0, 1.45)).min(998.0);
            (relay, Rate::from_mbit(cap))
        })
        .collect();
    let mut schedule =
        build_randomized_schedule(&old, team, &params, seed).expect("period schedulable");
    let prior = Rate::from_mbit(51.0);
    let slots_per_hour = 3600 / params.slot.as_secs() as usize;
    let mut waits_secs = Vec::new();
    for hour in 0..24usize {
        let arrivals = [3usize, 0, 5, 2, 3, 1][hour % 6];
        for a in 0..arrivals {
            let relay = tor
                .add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("new-{hour}-{a}")));
            let arrival_slot = hour * slots_per_hour;
            match assign_new_relay(&mut schedule, relay, prior, &params, arrival_slot) {
                Ok(slot) => waits_secs
                    .push(((slot - arrival_slot) as f64 + 1.0) * params.slot.as_secs_f64()),
                Err(e) => println!("  new relay unschedulable: {e}"),
            }
        }
    }
    let med_wait = median(&waits_secs).unwrap();
    let max_wait = waits_secs.iter().cloned().fold(f64::MIN, f64::max);
    compare("median time to measure a new relay", "30 s", &format!("{med_wait:.0} s"));
    compare("max time to measure a new relay", "13 min", &format!("{:.1} min", max_wait / 60.0));
}
