//! Figure 5: the §3.4 relay speed-test experiment — estimated network
//! capacity and network weight error around a 51-hour flood campaign.
//!
//! Paper: the flood reveals ≈200 Gbit/s (≈50%) of hidden capacity; the
//! network weight error rises 5–10% (to a maximum of 23%) while
//! consensus weights lag the suddenly accurate capacity estimates, then
//! decays.

use flashflow_bench::{compare, header, print_series};
use flashflow_metrics::speedtest::{run_speed_test, SpeedTestConfig};
use flashflow_simnet::stats::mean;

fn main() {
    let seed = 5;
    header("fig05", "Relay speed test: discovered capacity and weight error", seed);
    let out = run_speed_test(&SpeedTestConfig::paper_scale(seed));

    let capacity_gbit: Vec<f64> = out.capacity_series.iter().map(|b| b * 8.0 / 1e9).collect();
    print_series("estimated network capacity (Gbit/s)", "hour", &capacity_gbit, 24);
    let weight_err_pct: Vec<f64> = out.weight_error_series.iter().map(|v| v * 100.0).collect();
    print_series("network weight error (%)", "hour", &weight_err_pct, 24);

    println!(
        "flood: steps {}..{}; measured {} relays, {} timeouts",
        out.flood_start_step, out.flood_end_step, out.measured, out.timeouts
    );
    compare(
        "capacity discovered by the flood",
        "+~50%",
        &format!("+{:.0}%", out.discovered_fraction() * 100.0),
    );
    let before = mean(&weight_err_pct[out.flood_start_step - 24..out.flood_start_step]).unwrap();
    let after_start = out.flood_start_step + 18; // descriptor lag
    let campaign =
        &weight_err_pct[after_start..(out.flood_end_step + 36).min(weight_err_pct.len())];
    let peak = campaign.iter().cloned().fold(0.0f64, f64::max);
    compare(
        "weight error increase during test",
        "+5-10% (max 23%)",
        &format!("{before:.1}% -> peak {peak:.1}%"),
    );
    compare(
        "timeout fraction",
        "2132/6999 = 30%",
        &format!(
            "{}/{} = {:.0}%",
            out.timeouts,
            out.timeouts + out.measured,
            100.0 * out.timeouts as f64 / (out.timeouts + out.measured) as f64
        ),
    );
}
