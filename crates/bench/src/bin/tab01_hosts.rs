//! Table 1: the Internet-experiment hosts and their measured bandwidth
//! (all other hosts saturate each target with concurrent UDP iPerf for
//! 60 seconds; the entry is the median per-second total).
//!
//! Paper measured: US-SW 954, US-NW 946, US-E 941, IN 1076, NL 1611
//! Mbit/s.

use flashflow_bench::{compare, header};
use flashflow_simnet::host::Net;
use flashflow_simnet::iperf::{saturate_target, IPERF_DURATION};

fn main() {
    header("tab01", "Summary of hosts used in Internet experiments", 0);
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>12} {:>6} {:>6}",
        "host", "virtual", "network", "claim(Mbit)", "meas(Mbit)", "rtt", "cores"
    );
    let paper = [954.0, 946.0, 941.0, 1076.0, 1611.0];
    let rtts = [0, 40, 62, 210, 137];
    for (i, paper_bw) in paper.iter().enumerate() {
        // Fresh network per target so earlier probes don't interfere.
        let (mut net, ids) = Net::table1();
        let target = ids[i];
        let sources: Vec<_> = ids.iter().copied().filter(|h| *h != target).collect();
        let report = saturate_target(&mut net, target, &sources, IPERF_DURATION);
        let profile = net.profile(target);
        let claimed = if i < 3 { "1000" } else { "N/A" };
        println!(
            "{:<8} {:>8} {:>10} {:>12} {:>12.0} {:>6} {:>6}",
            profile.name,
            if profile.virtualized { "yes" } else { "no" },
            match profile.network_type {
                flashflow_simnet::host::NetworkType::Datacenter => "D.C.",
                flashflow_simnet::host::NetworkType::Residential => "Res.",
            },
            claimed,
            report.median_rate.as_mbit(),
            rtts[i],
            profile.cores,
        );
        compare(
            &format!("{} measured bandwidth", profile.name),
            &format!("{paper_bw:.0} Mbit/s"),
            &format!("{:.0} Mbit/s", report.median_rate.as_mbit()),
        );
    }
}
