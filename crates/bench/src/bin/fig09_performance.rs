//! Figure 9: client performance with TorFlow vs FlashFlow weights at
//! 100%, 115%, and 130% load — transfer-time boxplots, timeout rates,
//! and total relay throughput.
//!
//! Paper (100% load): FlashFlow cuts median 50 KiB/1 MiB/5 MiB transfer
//! times by 15/29/37% and their std-devs by 55/61/41%; timeout rate
//! drops from 5–23% (TorFlow, by load) to ~0%; FlashFlow's advantage
//! grows with load, and its throughput scales with added load.

use flashflow_bench::{compare, header, Boxplot};
use flashflow_shadow::benchmark::SizeClass;
use flashflow_shadow::config::ShadowConfig;
use flashflow_shadow::run::{run_experiment, System};
use flashflow_simnet::stats::{median, std_dev};

fn main() {
    let seed = 9;
    header("fig09", "Benchmark performance under TorFlow vs FlashFlow weights", seed);
    let cfg = ShadowConfig::paper_scale(seed);
    let exp = run_experiment(&cfg, &[1.0, 1.15, 1.30]);

    println!("--- (a) transfer times (seconds) ---");
    for class in SizeClass::all() {
        println!("[TTLB {}]", class.label());
        for load in &exp.loads {
            let samples = load.ttlb(class);
            if let Some(bp) = Boxplot::of(&samples) {
                println!(
                    "  {}{:<4} {}",
                    load.system.label(),
                    format!("{:.0}%", load.load * 100.0),
                    bp
                );
            }
        }
    }
    println!("[TTFB all]");
    for load in &exp.loads {
        if let Some(bp) = Boxplot::of(&load.ttfb()) {
            println!("  {}{:<4} {}", load.system.label(), format!("{:.0}%", load.load * 100.0), bp);
        }
    }

    println!("--- (b) transfer error (timeout) rates ---");
    for load in &exp.loads {
        println!(
            "  {}{:<4} {:.1}%",
            load.system.label(),
            format!("{:.0}%", load.load * 100.0),
            load.failure_rate() * 100.0
        );
    }

    println!("--- (c) total relay throughput (Gbit/s) ---");
    for load in &exp.loads {
        let gbit: Vec<f64> = load.throughput_series.iter().map(|b| b * 8.0 / 1e9).collect();
        if let Some(bp) = Boxplot::of(&gbit) {
            println!("  {}{:<4} {}", load.system.label(), format!("{:.0}%", load.load * 100.0), bp);
        }
    }

    // Headline comparisons at 100% load.
    let tf100 = exp.loads.iter().find(|l| l.system == System::TorFlow && l.load == 1.0).unwrap();
    let ff100 = exp.loads.iter().find(|l| l.system == System::FlashFlow && l.load == 1.0).unwrap();
    for (class, paper_med, paper_sd) in [
        (SizeClass::Small, "15%", "55%"),
        (SizeClass::Medium, "29%", "61%"),
        (SizeClass::Large, "37%", "41%"),
    ] {
        let tf = tf100.ttlb(class);
        let ff = ff100.ttlb(class);
        let med_drop = 100.0 * (1.0 - median(&ff).unwrap() / median(&tf).unwrap());
        let sd_drop = 100.0 * (1.0 - std_dev(&ff).unwrap() / std_dev(&tf).unwrap());
        compare(
            &format!("median {} transfer-time reduction", class.label()),
            paper_med,
            &format!("{med_drop:.0}%"),
        );
        compare(
            &format!("std-dev {} reduction", class.label()),
            paper_sd,
            &format!("{sd_drop:.0}%"),
        );
    }
    compare(
        "timeout rate (TF 100% -> FF 100%)",
        "5% -> 0%",
        &format!("{:.1}% -> {:.1}%", tf100.failure_rate() * 100.0, ff100.failure_rate() * 100.0),
    );
}
