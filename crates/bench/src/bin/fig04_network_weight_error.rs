//! Figure 4: network weight error (Eq. 6) over time.
//!
//! Paper: median NWE 21% (day), 22% (week), 24% (month), 30% (year);
//! 15–25% over the latest year of data.

use flashflow_bench::{compare, header, print_series};
use flashflow_metrics::error::nwe_series;
use flashflow_metrics::synth::{generate, SynthConfig};
use flashflow_simnet::stats::median;

fn main() {
    let seed = 4;
    header("fig04", "Network weight error over time (11-year archive)", seed);
    let synth = generate(&SynthConfig::paper_scale(seed));
    let archive = &synth.archive;
    let (d, w, m, y) = archive.period_steps();

    for (label, p, paper) in
        [("day", d, "21%"), ("week", w, "22%"), ("month", m, "24%"), ("year", y, "30%")]
    {
        let series: Vec<f64> = nwe_series(archive, p).iter().map(|v| v * 100.0).collect();
        let settled = &series[p.min(series.len() / 4)..];
        print_series(&format!("NWE %, p = 1 {label}"), "step", settled, 12);
        let med = median(settled).unwrap_or(0.0);
        compare(&format!("median NWE (p = {label})"), paper, &format!("{med:.1}%"));
    }
    // The last year of the archive (the paper's 2019 reading: 15–25%).
    let (d, ..) = archive.period_steps();
    let series: Vec<f64> = nwe_series(archive, d).iter().map(|v| v * 100.0).collect();
    let last_year = &series[series.len().saturating_sub(archive.steps_for_hours(24.0 * 365.0))..];
    let med = median(last_year).unwrap_or(0.0);
    compare("median NWE over final year (day window)", "15-25%", &format!("{med:.1}%"));
}
