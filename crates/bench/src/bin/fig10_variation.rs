//! Figure 10: CDFs of mean relative standard deviation of (a) advertised
//! bandwidth and (b) normalized consensus weight, per relay.
//!
//! Paper: advertised-bandwidth RSD medians 32% (day), 55% (week), 62%
//! (month), 65% (year); weight RSD medians 14%, 31%, 43%, 50%.

use flashflow_bench::{compare, header, print_cdf};
use flashflow_metrics::synth::{generate, SynthConfig};
use flashflow_metrics::variation::{mean_advertised_rsd_per_relay, mean_weight_rsd_per_relay};
use flashflow_simnet::stats::quantile;

fn main() {
    let seed = 10;
    header("fig10", "Relay capacity and weight variation (Eq. 7)", seed);
    let synth = generate(&SynthConfig::paper_scale(seed));
    let archive = &synth.archive;
    let (d, w, m, y) = archive.period_steps();
    let min_steps = d * 3;

    println!("--- (a) advertised bandwidth RSD ---");
    for (label, p, paper) in
        [("day", d, "32%"), ("week", w, "55%"), ("month", m, "62%"), ("year", y, "65%")]
    {
        let rsd: Vec<f64> = mean_advertised_rsd_per_relay(archive, p, min_steps)
            .iter()
            .map(|v| v * 100.0)
            .collect();
        print_cdf(&format!("capacity RSD %, p = 1 {label}"), &rsd, 9);
        let med = quantile(&rsd, 0.5).unwrap_or(0.0);
        compare(&format!("median capacity RSD (p = {label})"), paper, &format!("{med:.0}%"));
    }

    println!("--- (b) normalized consensus weight RSD ---");
    for (label, p, paper) in
        [("day", d, "14%"), ("week", w, "31%"), ("month", m, "43%"), ("year", y, "50%")]
    {
        let rsd: Vec<f64> =
            mean_weight_rsd_per_relay(archive, p, min_steps).iter().map(|v| v * 100.0).collect();
        print_cdf(&format!("weight RSD %, p = 1 {label}"), &rsd, 9);
        let med = quantile(&rsd, 0.5).unwrap_or(0.0);
        compare(&format!("median weight RSD (p = {label})"), paper, &format!("{med:.0}%"));
    }
}
