//! Table 2: comparison of Tor load-balancing systems — added server
//! bandwidth, demonstrated attack advantage, capacity availability, and
//! whole-network measurement speed.

use flashflow_balance::attacks::{
    eigenspeed_drift_attack, flashflow_advantage_bound, peerflow_advantage_bound, torflow_attack,
};
use flashflow_bench::{compare, header};
use flashflow_core::params::Params;
use flashflow_core::schedule::greedy_pack;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;

fn july_2019_network(seed: u64) -> Vec<(flashflow_tornet::relay::RelayId, Rate)> {
    // 6,500 relays, log-normal capacities clamped at 998 Mbit/s,
    // calibrated to the paper's ≈608 Gbit/s total.
    use flashflow_simnet::host::HostProfile;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut tor = flashflow_tornet::netbuild::TorNet::new();
    let h = tor.add_host(HostProfile::new("all", Rate::from_gbit(1.0)));
    (0..6500)
        .map(|i| {
            let relay =
                tor.add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("r{i}")));
            let cap = (36.0 * rng.gen_lognormal(0.0, 1.45)).min(998.0);
            (relay, Rate::from_mbit(cap))
        })
        .collect()
}

fn main() {
    header("tab02", "Comparison of Tor load-balancing systems", 42);
    let params = Params::paper();

    // FlashFlow speed: greedy-pack the July-2019-like network on a
    // 3 Gbit/s team.
    let relays = july_2019_network(42);
    let total: f64 = relays.iter().map(|(_, c)| c.as_gbit()).sum();
    let schedule = greedy_pack(&relays, Rate::from_gbit(3.0), &params).expect("packable");
    let hours = schedule.slots.len() as f64 * params.slot.as_secs_f64() / 3600.0;

    let tf = torflow_attack(10_000, 177.0);
    let es = eigenspeed_drift_attack(100, 3, 7, 2.0, 7);
    let pf_bound = peerflow_advantage_bound(0.2);
    let ff_bound = flashflow_advantage_bound(params.ratio);

    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "system", "server BW", "attack adv", "capacity?", "speed"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "TorFlow",
        "1 Gbit/s",
        format!("{:.0}x", tf.advantage()),
        "partial",
        "2 days"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "EigenSpeed",
        "0",
        format!("{:.1}x", es.advantage()),
        "no",
        "1 day"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "PeerFlow",
        "0",
        format!("{:.0}x", pf_bound),
        "partial",
        "14 days+"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "FlashFlow",
        "3 Gbit/s",
        format!("{:.2}x", ff_bound),
        "yes",
        format!("{hours:.1} h")
    );

    compare("TorFlow attack advantage", "177x", &format!("{:.0}x", tf.advantage()));
    compare("EigenSpeed attack advantage", "21.5x", &format!("{:.1}x", es.advantage()));
    compare("PeerFlow attack advantage (2/tau)", "10x", &format!("{pf_bound:.0}x"));
    compare("FlashFlow attack advantage (1/(1-r))", "1.33x", &format!("{ff_bound:.2}x"));
    compare("FlashFlow network measurement time", "5 hours", &format!("{hours:.1} h"));
    println!("modelled July-2019 network: {} relays, {total:.0} Gbit/s total (paper: 6419 relays, 608 Gbit/s)", relays.len());
}
