//! Figure 13 (Appendix D.2): ratio of default-kernel to tuned-kernel
//! median throughput as the measurement socket count grows, per WAN
//! host measuring US-SW.
//!
//! Paper: ratios start below 1 (tuning helps a single socket) and trend
//! to 1 as sockets aggregate enough buffer to cover the path BDP.

use flashflow_bench::{compare, header};
use flashflow_simnet::host::Net;
use flashflow_simnet::tcp::KernelProfile;
use flashflow_simnet::time::SimDuration;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

fn run(host_idx: usize, sockets: u32, tuned: bool) -> f64 {
    // Build the Table 1 hosts with the kernel profile applied to every
    // endpoint, as in the paper's experiment.
    let mut net2 = Net::new();
    net2.enable_wan_loss();
    let mut ids2 = Vec::new();
    for (i, mut p) in flashflow_simnet::host::HostProfile::table1().into_iter().enumerate() {
        if tuned {
            p = p.with_kernel(KernelProfile::tuned());
        }
        ids2.push(net2.add_host(p));
        let _ = i;
    }
    for (i, row) in flashflow_simnet::host::TABLE1_RTT_MS.iter().enumerate() {
        for (j, &ms) in row.iter().enumerate() {
            if i != j {
                net2.set_rtt(ids2[i], ids2[j], SimDuration::from_millis(ms));
            }
        }
    }
    let mut tor = TorNet::from_net(net2);
    let target = tor.add_relay(ids2[0], RelayConfig::new("target"));
    let flow = tor.start_measurement_flow(ids2[host_idx], target, sockets, None);
    tor.run_for(SimDuration::from_secs(60));
    tor.net.engine().flow_rate(flow)
}

fn main() {
    header("fig13", "Default/tuned kernel throughput ratio vs socket count", 0);
    println!("{:>8} {:>8} {:>8} {:>8} {:>8}", "sockets", "US-NW", "US-E", "IN", "NL");
    let counts = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let mut last_row = Vec::new();
    let mut first_row = Vec::new();
    for &s in &counts {
        let mut ratios = Vec::new();
        for host_idx in 1..5 {
            let d = run(host_idx, s, false);
            let t = run(host_idx, s, true);
            ratios.push(if t > 0.0 { d / t } else { 1.0 });
        }
        println!(
            "{:>8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            s, ratios[0], ratios[1], ratios[2], ratios[3]
        );
        if s == counts[0] {
            first_row = ratios.clone();
        }
        last_row = ratios;
    }
    let improved = first_row.iter().zip(&last_row).filter(|(f, l)| l > f).count();
    compare(
        "ratio trends toward 1 as sockets grow",
        "yes (all hosts)",
        &format!("{improved}/4 hosts"),
    );
}
