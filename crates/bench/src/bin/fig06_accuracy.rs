//! Figure 6: FlashFlow accuracy without background traffic — CDFs of
//! estimate/ground-truth over every sufficient measurement-team subset,
//! target limits of 10/250/500/750/unlimited Mbit/s, 7 repetitions each.
//!
//! Paper: 99.8% of runs inside the (−20%, +5%) error bounds; 95% within
//! ±11%.

use flashflow_bench::{compare, header, print_cdf};
use flashflow_core::measure::{run_measurement, Assignment};
use flashflow_core::params::Params;
use flashflow_core::verify::TargetBehavior;
use flashflow_simnet::host::Net;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

/// Ground-truth Tor capacity of a limit on US-SW (measured once on a
/// jitter-free run, like the paper's two-hop lab calibration).
fn ground_truth(limit: Option<f64>, params: &Params) -> f64 {
    let (net, ids) = Net::table1_seeded(None);
    let mut tor = TorNet::from_net(net);
    let mut config = RelayConfig::new("target");
    if let Some(l) = limit {
        config = config.with_rate_limit(Rate::from_mbit(l));
    }
    let relay = tor.add_relay(ids[0], config);
    let mut rng = SimRng::seed_from_u64(0xC0DE);
    let assignments = vec![
        Assignment { host: ids[4], allocation: Rate::from_mbit(1611.0), processes: 2, sockets: 80 },
        Assignment { host: ids[2], allocation: Rate::from_mbit(941.0), processes: 2, sockets: 80 },
    ];
    let m =
        run_measurement(&mut tor, relay, &assignments, params, TargetBehavior::Honest, &mut rng);
    m.estimate.bytes_per_sec()
}

fn main() {
    let seed = 6;
    header("fig06", "FlashFlow accuracy across team subsets and capacities", seed);
    let params = Params::paper();
    // Team member capacities (Table 1 measured): US-NW, US-E, IN, NL.
    let members = [(1usize, 946.0), (2, 941.0), (3, 1076.0), (4, 1611.0)];
    let limits: [(&str, Option<f64>); 5] = [
        ("10 Mbit/s", Some(10.0)),
        ("250 Mbit/s", Some(250.0)),
        ("500 Mbit/s", Some(500.0)),
        ("750 Mbit/s", Some(750.0)),
        ("unlimited", None),
    ];

    let mut all_fractions: Vec<f64> = Vec::new();
    for (label, limit) in limits {
        let gt = ground_truth(limit, &params);
        let needed = params.excess_factor() * gt;
        let mut fractions = Vec::new();
        // All 15 non-empty subsets of the four measurers.
        for subset_mask in 1u32..16 {
            let subset: Vec<(usize, f64)> = members
                .iter()
                .enumerate()
                .filter(|(k, _)| subset_mask & (1 << k) != 0)
                .map(|(_, m)| *m)
                .collect();
            let total: f64 = subset.iter().map(|(_, c)| c * 1e6 / 8.0).sum();
            let share = needed / subset.len() as f64;
            // Paper: even split across the subset; requires sufficiency.
            if total < needed || subset.iter().any(|(_, c)| c * 1e6 / 8.0 < share) {
                continue;
            }
            for run in 0..7u64 {
                let jitter_seed = seed ^ (subset_mask as u64) << 8 ^ run << 32;
                let (net, ids) = Net::table1_seeded(Some(jitter_seed));
                let mut tor = TorNet::from_net(net);
                let mut config = RelayConfig::new("target");
                if let Some(l) = limit {
                    config = config.with_rate_limit(Rate::from_mbit(l));
                }
                let relay = tor.add_relay(ids[0], config);
                let sockets_each = (params.sockets as usize / subset.len()).max(1) as u32;
                let assignments: Vec<Assignment> = subset
                    .iter()
                    .map(|(host_idx, _)| Assignment {
                        host: ids[*host_idx],
                        allocation: Rate::from_bytes_per_sec(share),
                        processes: 1,
                        sockets: sockets_each,
                    })
                    .collect();
                let mut rng = SimRng::seed_from_u64(jitter_seed ^ 0xF00D);
                let m = run_measurement(
                    &mut tor,
                    relay,
                    &assignments,
                    &params,
                    TargetBehavior::Honest,
                    &mut rng,
                );
                fractions.push(m.estimate.bytes_per_sec() / gt);
            }
        }
        print_cdf(&format!("throughput fraction of capacity, {label}"), &fractions, 9);
        all_fractions.extend(fractions);
    }

    let within_11 = all_fractions.iter().filter(|f| (0.89..=1.11).contains(*f)).count() as f64
        / all_fractions.len() as f64;
    let within_bounds = all_fractions
        .iter()
        .filter(|f| (1.0 - params.epsilon1..=1.0 + params.epsilon2).contains(*f))
        .count() as f64
        / all_fractions.len() as f64;
    compare("runs within +-11% of capacity", "95%", &format!("{:.1}%", within_11 * 100.0));
    compare("runs within (-20%,+5%) bounds", "99.8%", &format!("{:.1}%", within_bounds * 100.0));
    println!("total runs: {}", all_fractions.len());
}
