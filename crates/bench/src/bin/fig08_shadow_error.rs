//! Figure 8: measurement error in the private-network simulation —
//! (a) FlashFlow's relay capacity error CDF and (b) relay weight error
//! CDFs for FlashFlow vs TorFlow.
//!
//! Paper: FlashFlow median relay capacity error 16%, network capacity
//! error 14%; network weight error 4% (FlashFlow) vs 29% (TorFlow);
//! >80% of relays under-weighted by TorFlow.

use flashflow_bench::{compare, header, print_cdf};
use flashflow_shadow::config::ShadowConfig;
use flashflow_shadow::run::run_measurement_phase;
use flashflow_simnet::stats::{median, quantile};

fn main() {
    let seed = 8;
    header("fig08", "Measurement error during concurrent relay measurement", seed);
    let phase = run_measurement_phase(&ShadowConfig::paper_scale(seed));

    let rce_pct: Vec<f64> = phase.flashflow_rce.iter().map(|v| v * 100.0).collect();
    print_cdf("(a) FlashFlow relay capacity error %", &rce_pct, 11);
    compare("median relay capacity error", "16%", &format!("{:.1}%", median(&rce_pct).unwrap()));
    compare(
        "interquartile range",
        "~16%",
        &format!("{:.1}%", quantile(&rce_pct, 0.75).unwrap() - quantile(&rce_pct, 0.25).unwrap()),
    );
    compare("network capacity error", "14%", &format!("{:.1}%", phase.flashflow_nce.abs() * 100.0));

    print_cdf("(b) log10 relay weight error, FlashFlow", &phase.flashflow_rwe_log10, 11);
    print_cdf("(b) log10 relay weight error, TorFlow", &phase.torflow_rwe_log10, 11);
    let tf_under = phase.torflow_rwe_log10.iter().filter(|v| **v < 0.0).count() as f64
        / phase.torflow_rwe_log10.len() as f64;
    compare("TorFlow relays under-weighted", ">80%", &format!("{:.0}%", tf_under * 100.0));
    compare(
        "network weight error, FlashFlow",
        "4%",
        &format!("{:.1}%", phase.flashflow_nwe * 100.0),
    );
    compare("network weight error, TorFlow", "29%", &format!("{:.1}%", phase.torflow_nwe * 100.0));
}
