//! Figure 14 (Appendix E.1): Tor throughput at the US-SW target relay as
//! measured by each WAN host, sweeping the socket count. Determines
//! FlashFlow's s = 160 (the count at which the slowest host, IN, peaks).
//!
//! Paper: every host rises with socket count, peaks, then declines
//! slightly; IN is the slowest to peak (at 160 sockets).

use flashflow_bench::{compare, header};
use flashflow_simnet::host::Net;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

fn main() {
    header("fig14", "Throughput at US-SW vs number of measurement sockets", 0);
    let socket_counts = [1u32, 2, 5, 10, 20, 40, 80, 120, 160, 200, 240, 300];
    println!("{:>8} {:>10} {:>10} {:>10} {:>10}", "sockets", "US-NW", "US-E", "IN", "NL");
    let mut peaks = [0u32; 4];
    let mut best = [0.0f64; 4];
    let mut rows = Vec::new();
    for &s in &socket_counts {
        let mut row = vec![s as f64];
        for (k, host_idx) in [1usize, 2, 3, 4].iter().enumerate() {
            let (net, ids) = Net::table1();
            let mut tor = TorNet::from_net(net);
            let target = tor.add_relay(ids[0], RelayConfig::new("target"));
            let flow = tor.start_measurement_flow(ids[*host_idx], target, s, None);
            tor.run_for(SimDuration::from_secs(60));
            let mbit = Rate::from_bytes_per_sec(tor.net.engine().flow_rate(flow)).as_mbit();
            row.push(mbit);
            if mbit > best[k] {
                best[k] = mbit;
                peaks[k] = s;
            }
        }
        println!("{:>8} {:>10.0} {:>10.0} {:>10.0} {:>10.0}", s, row[1], row[2], row[3], row[4]);
        rows.push(row);
    }
    for (k, name) in ["US-NW", "US-E", "IN", "NL"].iter().enumerate() {
        println!("  {name}: peak {:.0} Mbit/s at {} sockets", best[k], peaks[k]);
    }
    compare("slowest host to peak", "IN at 160 sockets", &format!("IN at {}", peaks[2]));
}
