//! Figure 3: CDF of log10 mean relay weight error (Eq. 5) per relay.
//!
//! Paper: more than 85% of relays are under-weighted (log10 < 0) relative
//! to their capacity; few are ideally weighted.

use flashflow_bench::{compare, header, print_cdf};
use flashflow_metrics::error::mean_rwe_per_relay;
use flashflow_metrics::synth::{generate, SynthConfig};

fn main() {
    let seed = 3;
    header("fig03", "Relative error in relay weights (11-year archive)", seed);
    let synth = generate(&SynthConfig::paper_scale(seed));
    let archive = &synth.archive;
    let (d, w, m, y) = archive.period_steps();
    let min_steps = d * 3;

    for (label, p) in [("day", d), ("week", w), ("month", m), ("year", y)] {
        let log_rwe: Vec<f64> =
            mean_rwe_per_relay(archive, p, min_steps).iter().map(|v| v.max(1e-6).log10()).collect();
        print_cdf(&format!("log10(mean RWE), p = 1 {label}"), &log_rwe, 11);
        let under = log_rwe.iter().filter(|v| **v < 0.0).count() as f64 / log_rwe.len() as f64;
        compare(
            &format!("fraction under-weighted (p = {label})"),
            if label == "year" { ">85%" } else { "—" },
            &format!("{:.0}%", under * 100.0),
        );
    }
}
