//! Table 3 (Appendix B): pairwise bidirectional TCP and UDP iPerf
//! between each host and US-SW, plus the all-to-one UDP saturation.
//!
//! Paper: TCP ranges mostly 670–920 Mbit/s (US-NW variable); UDP ranges
//! 740–956; saturation 954/946/941/1076/1611 Mbit/s.

use flashflow_bench::header;
use flashflow_simnet::host::Net;
use flashflow_simnet::iperf::{pairwise_bidirectional, saturate_target, Transport};
use flashflow_simnet::time::SimDuration;

fn main() {
    header("tab03", "Throughput estimation of Internet hosts using iPerf", 0);
    println!("{:<8} {:>12} {:>12} {:>12}", "host", "TCP(Mbit/s)", "UDP(Mbit/s)", "UDP(many)");
    let probe = SimDuration::from_secs(60);
    for i in 1..5 {
        let (mut net, ids) = Net::table1();
        let tcp = pairwise_bidirectional(&mut net, ids[0], ids[i], Transport::Tcp, probe);
        let (mut net2, ids2) = Net::table1();
        let udp = pairwise_bidirectional(&mut net2, ids2[0], ids2[i], Transport::Udp, probe);
        let (mut net3, ids3) = Net::table1();
        let sources: Vec<_> = ids3.iter().copied().filter(|h| *h != ids3[i]).collect();
        let many = saturate_target(&mut net3, ids3[i], &sources, probe);
        let name = {
            let (net4, ids4) = Net::table1();
            net4.profile(ids4[i]).name.clone()
        };
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0}",
            name,
            tcp.median_rate.as_mbit(),
            udp.median_rate.as_mbit(),
            many.median_rate.as_mbit()
        );
    }
    // US-SW's saturation row (first column of Table 1's measured value).
    let (mut net, ids) = Net::table1();
    let many = saturate_target(&mut net, ids[0], &ids[1..], probe);
    println!("{:<8} {:>12} {:>12} {:>12.0}", "US-SW", "-", "-", many.median_rate.as_mbit());
}
