//! # flashflow-bench
//!
//! The experiment harness: one binary per table and figure of the paper
//! (see DESIGN.md §3 for the index), plus Criterion micro-benchmarks.
//! Each binary prints the same rows/series the paper reports, with the
//! paper's published values alongside for comparison, and is
//! deterministic given its default seed.

use flashflow_simnet::stats::{mean, quantile, Ecdf};

/// Five-number summary matching the paper's boxplots (Figure 9): 5th
/// percentile, first quartile, median, mean, third quartile, 95th
/// percentile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Mean (the triangle in the paper's plots).
    pub mean: f64,
    /// Third quartile.
    pub q3: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
}

impl Boxplot {
    /// Computes the summary, or `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Boxplot> {
        Some(Boxplot {
            p5: quantile(values, 0.05)?,
            q1: quantile(values, 0.25)?,
            median: quantile(values, 0.5)?,
            mean: mean(values)?,
            q3: quantile(values, 0.75)?,
            p95: quantile(values, 0.95)?,
        })
    }
}

impl From<Boxplot> for flashflow_obs::Percentiles {
    fn from(b: Boxplot) -> flashflow_obs::Percentiles {
        flashflow_obs::Percentiles {
            p5: b.p5,
            q1: b.q1,
            median: b.median,
            mean: b.mean,
            q3: b.q3,
            p95: b.p95,
        }
    }
}

impl std::fmt::Display for Boxplot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p5={:7.2} q1={:7.2} med={:7.2} mean={:7.2} q3={:7.2} p95={:7.2}",
            self.p5, self.q1, self.median, self.mean, self.q3, self.p95
        )
    }
}

/// Prints a CDF as rows of `value fraction`, sampled at `points` evenly
/// spaced quantiles (the textual analogue of the paper's CDF figures).
pub fn print_cdf(label: &str, values: &[f64], points: usize) {
    if values.is_empty() {
        println!("{label}: (no data)");
        return;
    }
    let cdf = Ecdf::new(values.to_vec());
    println!("{label} (n={}):", cdf.len());
    for (v, q) in cdf.sampled(points) {
        println!("  {v:12.4}  {q:5.2}");
    }
}

/// Prints a time series as `t value` rows, thinned to at most
/// `max_rows`.
pub fn print_series(label: &str, step_label: &str, series: &[f64], max_rows: usize) {
    println!("{label} ({} points):", series.len());
    let stride = (series.len() / max_rows.max(1)).max(1);
    for (i, v) in series.iter().enumerate().step_by(stride) {
        println!("  {step_label}={i:6}  {v:12.4}");
    }
}

/// Prints a standard experiment header with the fixed seed.
pub fn header(id: &str, title: &str, seed: u64) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("(deterministic; seed = {seed})");
    println!("==============================================================");
}

/// Prints a paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<16} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_of_known_data() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let b = Boxplot::of(&v).unwrap();
        assert_eq!(b.median, 50.5);
        assert_eq!(b.mean, 50.5);
        assert!(b.p5 < b.q1 && b.q1 < b.median && b.median < b.q3 && b.q3 < b.p95);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(Boxplot::of(&[]).is_none());
    }

    /// `flashflow-obs` reimplements the quantile (it cannot depend on
    /// simnet without a cycle); the two must agree exactly, so a
    /// `PeriodExport` summary and a paper boxplot of the same series
    /// are the same numbers.
    #[test]
    fn obs_percentiles_conform_to_boxplot() {
        let mut v: Vec<f64> = (0..137).map(|i| f64::from((i * 7919) % 1000)).collect();
        v.push(0.25);
        let from_boxplot: flashflow_obs::Percentiles = Boxplot::of(&v).unwrap().into();
        let direct = flashflow_obs::Percentiles::of(&v).unwrap();
        assert_eq!(direct, from_boxplot);
    }
}
