//! Echo throughput scaling across channel counts on a fixed reactor
//! budget: the tent-pole claim of the reactor I/O core.
//!
//! A 4-shard [`Reactor`] serves verifying [`Echoer`] connections (the
//! relay's data plane, minus session binding); the measurer side dials
//! N rate-capped [`TrafficSource`] channels, blasts keyed pattern
//! frames, and verifies the echo stream — every byte costs two keyed
//! verifications plus two loopback crossings, exactly the workload a
//! FlashFlow relay serves. With a per-channel rate cap, aggregate
//! verified-echo throughput should scale with the channel count: the
//! recorded acceptance is **512 channels ≥ 2× the 64-channel aggregate
//! on the same 4 reactor threads** (thread-per-connection designs die
//! on context-switch churn well before that; the reactor's slabs and
//! level-triggered shards do not).
//!
//! Results land in `BENCH_reactor.json` at the repo root so the perf
//! trajectory is machine-tracked.
//!
//! Plain `harness = false` timing (Criterion is unavailable offline):
//! run with `cargo bench -p flashflow-bench --bench reactor_scaling`.
//! CI runs `FF_BENCH_SMOKE=1`, which shrinks the channel counts and
//! wall budget to prove the harness itself (accept, verify, echo,
//! drain) without asserting the scaling ratio or touching the JSON.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flashflow_obs::Json;
use flashflow_procutil::reactor::{AcceptFn, Driven, Reactor, ReactorConfig, Step};
use flashflow_proto::blast::{
    binding_nonce, secret_channel_key, BlastEvent, BlastParser, Echoer, TrafficSource,
};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::Transport;
use flashflow_simnet::time::SimTime;

/// Reactor shard threads — fixed across every round; the scaling claim
/// is about channels per thread, not threads.
const SHARDS: usize = 4;
/// Per-channel blast rate cap (bytes/second). Chosen so the largest
/// round's aggregate stays within a single modest core's verify+fill
/// budget: the bench measures event-loop scaling, not peak crypto.
const RATE_CAP: u64 = 64 * 1024;
/// The acceptance bound: the large round's aggregate verified-echo
/// rate must be at least this multiple of the small round's.
const SCALING_FLOOR: f64 = 2.0;
const SECRET: u64 = 0x5CA1_AB1E;

/// One echoing reactor connection: the relay data plane's hot loop
/// (verify inbound, loop verified bytes back) with none of the session
/// machinery.
struct EchoConn {
    fd: i32,
    echoer: Echoer<TcpTransport>,
    t0: Instant,
    backlog: bool,
}

impl EchoConn {
    fn step(&mut self) -> Step {
        let now = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64());
        for _ in 0..4 {
            match self.echoer.pump(now) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => panic!("echo framing broke: {e}"),
            }
        }
        if self.echoer.transport_error().is_some() {
            return Step::Done; // measurer hung up: the normal end
        }
        self.backlog =
            self.echoer.pending_echo() > 0 || self.echoer.transport_mut().pending_send_bytes() > 0;
        Step::Continue
    }
}

impl Driven for EchoConn {
    fn fd(&self) -> i32 {
        self.fd
    }

    fn on_ready(&mut self) -> Step {
        self.step()
    }

    fn on_tick(&mut self) -> Step {
        if self.backlog {
            return self.step();
        }
        Step::Continue
    }

    fn wants_write(&self) -> bool {
        self.backlog
    }
}

fn accept_factory(key: u64) -> Arc<AcceptFn> {
    Arc::new(move |stream: TcpStream, _peer: SocketAddr| {
        let transport = TcpTransport::from_stream(stream).ok()?;
        Some(Box::new(EchoConn {
            fd: transport.raw_fd(),
            echoer: Echoer::new(transport).with_key(key),
            t0: Instant::now(),
            backlog: false,
        }) as Box<dyn Driven>)
    })
}

/// One measurer lane: a capped source and the verifying parser for the
/// relay's echo stream.
struct Lane {
    source: TrafficSource<TcpTransport>,
    echo: BlastParser,
    verified: u64,
}

/// Dials `channels` lanes, blasts for `wall`, verifies the echo, and
/// drains to integrity. Returns (sent bytes, verified echoed bytes,
/// blast-phase seconds).
fn run_round(addr: SocketAddr, channels: usize, wall: Duration) -> (u64, u64, f64) {
    let key = secret_channel_key(SECRET);
    let nonce = binding_nonce(SECRET);
    let mut lanes = Vec::with_capacity(channels);
    for chan in 0..channels {
        let t = TcpTransport::connect(addr).expect("dial reactor");
        #[allow(clippy::cast_possible_truncation)]
        let mut source = TrafficSource::new(t, nonce, chan as u32).with_key(key);
        source.set_rate_cap(RATE_CAP);
        source.greet(SimTime::ZERO);
        source.start(SimTime::ZERO);
        lanes.push(Lane { source, echo: BlastParser::new().with_key(key), verified: 0 });
    }
    let t0 = Instant::now();
    let mut rx = Vec::new();
    let mut spin = |lanes: &mut Vec<Lane>, pumping: bool| -> bool {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        let mut idle = true;
        for lane in lanes.iter_mut() {
            if pumping && lane.source.pump(now) {
                idle = false;
            }
            if let Ok(got) = lane.source.transport_mut().recv_into(now, &mut rx) {
                if got > 0 {
                    idle = false;
                    for ev in lane.echo.push(&rx).expect("echo framing intact") {
                        if let BlastEvent::Data { bytes, corrupt } = ev {
                            assert_eq!(corrupt, 0, "echo must verify");
                            lane.verified += bytes;
                        }
                    }
                }
            }
        }
        idle
    };
    while t0.elapsed() < wall {
        if spin(&mut lanes, true) {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    let blast_secs = t0.elapsed().as_secs_f64();
    let stop_at = SimTime::from_secs_f64(blast_secs);
    for lane in &mut lanes {
        lane.source.stop(stop_at);
    }
    // Drain: everything sent must come back verified.
    let sent: u64 = lanes.iter().map(|l| l.source.sent_total()).sum();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let back: u64 = lanes.iter().map(|l| l.verified).sum();
        if back >= sent {
            break;
        }
        assert!(Instant::now() < deadline, "echo never drained: {back}/{sent}");
        if spin(&mut lanes, false) {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let back: u64 = lanes.iter().map(|l| l.verified).sum();
    assert_eq!(back, sent, "bytes lost in the echo round trip");
    (sent, back, blast_secs)
}

fn main() {
    let smoke = std::env::var_os("FF_BENCH_SMOKE").is_some();
    let (small, large, wall) = if smoke {
        (8usize, 32usize, Duration::from_millis(300))
    } else {
        (64, 512, Duration::from_secs(3))
    };

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let key = secret_channel_key(SECRET);
    let reactor = Reactor::serve(
        Some(listener),
        ReactorConfig { shards: SHARDS, tick: Duration::from_millis(1) },
        accept_factory(key),
    )
    .expect("start reactor");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "reactor_scaling: {SHARDS} shard threads, {RATE_CAP} B/s per channel, \
         {wall:?} per round, {cores} core(s) available{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("{:<10} {:>14} {:>14} {:>12}", "channels", "sent", "echoed back", "MB/s echoed");

    let mut rates = Vec::new();
    for channels in [small, large] {
        let (sent, back, secs) = run_round(addr, channels, wall);
        let rate = back as f64 / secs;
        rates.push((channels, sent, rate));
        println!("{:<10} {:>14} {:>14} {:>12.2}", channels, sent, back, rate / 1e6);
    }
    reactor.stop();
    reactor.join().expect("reactor shards");

    let (_, _, small_rate) = rates[0];
    let (_, _, large_rate) = rates[1];
    let ratio = large_rate / small_rate;
    println!(
        "scaling: {small} ch {:.2} MB/s -> {large} ch {:.2} MB/s, ratio {ratio:.2}x",
        small_rate / 1e6,
        large_rate / 1e6,
    );
    if smoke {
        // The smoke run proves the harness (accept, verify, echo,
        // drain), not the machine's scaling headroom.
        return;
    }

    let doc = Json::Obj(vec![
        ("schema".to_string(), Json::Int(1)),
        ("bench".to_string(), Json::Str("reactor_scaling/verified_echo".to_string())),
        ("shards".to_string(), Json::Int(SHARDS as i128)),
        ("rate_cap_bytes_per_sec".to_string(), Json::Int(RATE_CAP as i128)),
        ("small_channels".to_string(), Json::Int(small as i128)),
        ("small_bytes_per_sec".to_string(), Json::Num(small_rate)),
        ("large_channels".to_string(), Json::Int(large as i128)),
        ("large_bytes_per_sec".to_string(), Json::Num(large_rate)),
        ("scaling_ratio".to_string(), Json::Num(ratio)),
        ("floor_ratio".to_string(), Json::Num(SCALING_FLOOR)),
    ]);
    let mut out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("BENCH_reactor.json");
    flashflow_procutil::atomic_write(&out, format!("{doc}\n").as_bytes())
        .expect("write BENCH_reactor.json");
    println!("wrote {}", out.display());

    assert!(
        ratio >= SCALING_FLOOR,
        "aggregate verified-echo rate scaled only {ratio:.2}x from {small} to {large} \
         channels (floor {SCALING_FLOOR}x)"
    );
}
