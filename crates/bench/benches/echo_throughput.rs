//! Echo data-plane throughput over loopback TCP: the full round trip.
//!
//! For 1, 2, and 4 measurer channels, a [`TrafficSource`] per channel
//! blasts keyed pattern frames at a relay-side [`Echoer`] thread that
//! *verifies every payload byte* and loops the verified bytes back;
//! the measurer side then verifies the echo again. The recorded rate
//! is **verified echoed bytes per second** — the quantity a FlashFlow
//! estimate is actually built from, costing two verifications and two
//! socket crossings per byte, not a memcpy.
//!
//! The run doubles as an integrity soak: at the end, every byte sent
//! must have come back verified, with zero corrupt and zero forged
//! bytes in either direction.
//!
//! The run ends with the **instrumentation overhead guards**: first
//! the verify hot path itself (a keyed [`BlastParser`] over a captured
//! blast stream) is timed bare and with `flashflow-obs` counters
//! attached, then the reactor-served round trip is timed bare
//! ([`Reactor::serve`]) and fully instrumented (`serve_observed` with
//! per-shard histograms, gauges, and the stall watchdog). Both
//! overheads must stay under 3%, and the numbers are written to
//! `BENCH_obs.json` at the repo root so the perf trajectory is
//! machine-tracked.
//!
//! Plain `harness = false` timing (Criterion is unavailable offline):
//! run with `cargo bench -p flashflow-bench --bench echo_throughput`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use flashflow_obs::{EventSink, Json, MetricsRegistry, Span};
use flashflow_procutil::reactor::{AcceptFn, Driven, Reactor, ReactorConfig, ReactorObs, Step};
use flashflow_proto::blast::{
    binding_nonce, secret_channel_key, BlastCounters, BlastEvent, BlastParser, Echoer,
    TrafficSource,
};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{Duplex, Transport};
use flashflow_simnet::time::SimTime;

const CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];
const ROUND_WALL: Duration = Duration::from_millis(300);
/// Pump only while the transport outbox is under this, so the source
/// runs exactly as fast as the kernel + echoer drain.
const OUTBOX_HIGH_WATER: usize = 1 << 20;
const SECRET: u64 = 0xEC40_BE4C;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    listener.set_nonblocking(true).expect("nonblocking");

    let key = secret_channel_key(SECRET);
    let nonce = binding_nonce(SECRET);
    let relay_received = Arc::new(AtomicU64::new(0));
    let relay_corrupt = Arc::new(AtomicU64::new(0));
    let relay_forged = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Relay side: every accepted connection gets a verifying echo
    // thread that loops bytes back until the measurer hangs up.
    let acceptor = {
        let (received, corrupt, forged, stop) =
            (relay_received.clone(), relay_corrupt.clone(), relay_forged.clone(), stop.clone());
        thread::spawn(move || {
            let mut echoers = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let (received, corrupt, forged) =
                            (received.clone(), corrupt.clone(), forged.clone());
                        echoers.push(thread::spawn(move || {
                            let t = TcpTransport::from_stream(stream).expect("wrap");
                            let mut echo = Echoer::new(t).with_key(key);
                            let t0 = Instant::now();
                            loop {
                                let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
                                match echo.pump(now) {
                                    Ok(moved) => {
                                        if echo.transport_error().is_some() {
                                            break;
                                        }
                                        if !moved {
                                            thread::sleep(Duration::from_micros(200));
                                        }
                                    }
                                    Err(e) => panic!("echo framing broke: {e}"),
                                }
                            }
                            received.fetch_add(echo.received_total(), Ordering::SeqCst);
                            corrupt.fetch_add(echo.corrupt_total(), Ordering::SeqCst);
                            forged.fetch_add(echo.forged_total(), Ordering::SeqCst);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept: {e}"),
                }
            }
            for e in echoers {
                let _ = e.join();
            }
        })
    };

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "echo_throughput: loopback TCP, verified echo round trip, \
         {ROUND_WALL:?} per round, {cores} core(s) available"
    );
    println!("{:<10} {:>14} {:>14} {:>12}", "channels", "sent", "echoed back", "MB/s echoed");

    let mut total_sent = 0u64;
    let mut total_back = 0u64;
    for channels in CHANNEL_COUNTS {
        // Fresh dials per round: the echo path is about the round trip,
        // not pooling (blast_throughput covers warm reuse).
        let mut lanes = Vec::new();
        for chan in 0..channels {
            let t = TcpTransport::connect(addr).expect("dial relay");
            let mut src = TrafficSource::new(t, nonce, chan as u32).with_key(key);
            src.greet(SimTime::ZERO);
            src.start(SimTime::ZERO);
            lanes.push((src, BlastParser::new().with_key(key), 0u64));
        }
        let t0 = Instant::now();
        let spin = |lanes: &mut Vec<(TrafficSource<TcpTransport>, BlastParser, u64)>,
                    pumping: bool| {
            let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
            let mut idle = true;
            for (src, back, verified) in lanes.iter_mut() {
                if pumping {
                    if src.transport_mut().pending_send_bytes() < OUTBOX_HIGH_WATER {
                        src.pump(now);
                        idle = false;
                    } else {
                        let _ = src.transport_mut().send(now, &[]);
                    }
                }
                if let Ok(bytes) = src.transport_mut().recv(now) {
                    if !bytes.is_empty() {
                        idle = false;
                        for ev in back.push(&bytes).expect("echo framing intact") {
                            if let BlastEvent::Data { bytes, corrupt } = ev {
                                assert_eq!(corrupt, 0, "echo must verify");
                                *verified += bytes;
                            }
                        }
                    }
                }
            }
            idle
        };
        while t0.elapsed() < ROUND_WALL {
            if spin(&mut lanes, true) {
                thread::sleep(Duration::from_micros(100));
            }
        }
        let blast_elapsed = t0.elapsed();
        for (src, ..) in lanes.iter_mut() {
            src.stop(SimTime::from_secs_f64(blast_elapsed.as_secs_f64()));
        }
        // Drain: everything sent must come back verified.
        let sent: u64 = lanes.iter().map(|(s, ..)| s.sent_total()).sum();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let back: u64 = lanes.iter().map(|(.., v)| *v).sum();
            if back >= sent {
                break;
            }
            assert!(Instant::now() < deadline, "echo never drained: {back}/{sent}");
            if spin(&mut lanes, false) {
                thread::sleep(Duration::from_micros(200));
            }
        }
        let elapsed = t0.elapsed();
        let back: u64 = lanes.iter().map(|(.., v)| *v).sum();
        total_sent += sent;
        total_back += back;
        println!(
            "{:<10} {:>14} {:>14} {:>12.1}",
            channels,
            sent,
            back,
            back as f64 / elapsed.as_secs_f64() / 1e6
        );
        drop(lanes); // hang up; the echo threads publish their totals
    }

    // Integrity soak: the relay verified exactly what was sent, echoed
    // it all back, and nothing was corrupt or forged in either
    // direction.
    let deadline = Instant::now() + Duration::from_secs(30);
    while relay_received.load(Ordering::SeqCst) < total_sent {
        assert!(Instant::now() < deadline, "relay threads never drained");
        thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    acceptor.join().expect("acceptor");
    assert_eq!(relay_received.load(Ordering::SeqCst), total_sent, "bytes lost measurer → relay");
    assert_eq!(relay_corrupt.load(Ordering::SeqCst), 0, "corrupt bytes on a healthy loopback");
    assert_eq!(relay_forged.load(Ordering::SeqCst), 0, "forged frames on an honest channel");
    assert_eq!(total_back, total_sent, "bytes lost relay → measurer");
    println!("integrity: {total_sent} bytes sent == verified at relay == echoed back, 0 corrupt");

    let parser_block = instrumentation_overhead_guard();
    let reactor_block = reactor_overhead_guard();

    let doc = Json::Obj(vec![
        ("schema".to_string(), Json::Int(2)),
        ("bench".to_string(), Json::Str("echo_throughput/obs_overhead".to_string())),
        ("limit_pct".to_string(), Json::Num(OVERHEAD_LIMIT_PCT)),
        ("blast_parser".to_string(), parser_block),
        ("reactor".to_string(), reactor_block),
    ]);
    let mut out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("BENCH_obs.json");
    flashflow_procutil::atomic_write(&out, format!("{doc}\n").as_bytes())
        .expect("write BENCH_obs.json");
    println!("wrote {}", out.display());
}

/// Bytes of captured blast stream the overhead rounds parse.
const OVERHEAD_STREAM: usize = 32 << 20;
/// Interleaved timing rounds per variant; minimums are compared (the
/// best observed run is the least noisy estimate of the code's cost).
const OVERHEAD_ROUNDS: usize = 5;
/// The acceptance bound: counters on the verified-echo hot path must
/// cost less than this much relative to the bare parser.
const OVERHEAD_LIMIT_PCT: f64 = 3.0;

/// Times the verify hot path bare vs counter-instrumented over one
/// captured in-memory blast stream, asserts the overhead bound, and
/// returns the `blast_parser` block of `BENCH_obs.json`.
fn instrumentation_overhead_guard() -> Json {
    let key = secret_channel_key(SECRET);
    let nonce = binding_nonce(SECRET);

    // Capture a pattern-stamped stream once, off the clock: an uncapped
    // source over a zero-latency duplex, no sockets involved.
    let (a, mut b) = Duplex::loopback().into_endpoints();
    let mut src = TrafficSource::new(a, nonce, 0).with_key(key);
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    let mut stream: Vec<u8> = Vec::with_capacity(OVERHEAD_STREAM + (1 << 16));
    while stream.len() < OVERHEAD_STREAM {
        src.pump(SimTime::ZERO);
        stream.extend(b.recv(SimTime::ZERO).expect("in-memory recv"));
    }

    // Parse it through the identical keyed parser, with and without
    // counters, interleaved so cache/thermal drift hits both equally.
    let chunk = 64 << 10;
    let run = |counters: Option<BlastCounters>| -> f64 {
        let mut parser = BlastParser::new().with_key(key);
        if let Some(c) = counters {
            parser = parser.with_counters(c);
        }
        let t0 = Instant::now();
        for piece in stream.chunks(chunk) {
            parser.push(piece).expect("captured stream parses");
        }
        assert_eq!(parser.corrupt_total(), 0, "captured stream must verify");
        t0.elapsed().as_secs_f64()
    };
    let counters = BlastCounters::default();
    let mut bare = f64::INFINITY;
    let mut instrumented = f64::INFINITY;
    for _ in 0..OVERHEAD_ROUNDS {
        bare = bare.min(run(None));
        instrumented = instrumented.min(run(Some(counters.clone())));
    }
    assert!(counters.verified.get() > 0, "instrumented rounds must feed the counters");

    let bytes = stream.len() as f64;
    let overhead_pct = ((instrumented - bare) / bare * 100.0).max(0.0);
    println!(
        "obs overhead: bare {:.1} MB/s, instrumented {:.1} MB/s, overhead {overhead_pct:.2}%",
        bytes / bare / 1e6,
        bytes / instrumented / 1e6,
    );

    assert!(
        overhead_pct < OVERHEAD_LIMIT_PCT,
        "instrumented blast parse is {overhead_pct:.2}% slower than bare \
         (limit {OVERHEAD_LIMIT_PCT}%)"
    );

    Json::Obj(vec![
        ("stream_bytes".to_string(), Json::Int(stream.len() as i128)),
        ("rounds".to_string(), Json::Int(OVERHEAD_ROUNDS as i128)),
        ("bare_secs".to_string(), Json::Num(bare)),
        ("instrumented_secs".to_string(), Json::Num(instrumented)),
        ("bare_bytes_per_sec".to_string(), Json::Num(bytes / bare)),
        ("instrumented_bytes_per_sec".to_string(), Json::Num(bytes / instrumented)),
        ("overhead_pct".to_string(), Json::Num(overhead_pct)),
    ])
}

/// Bytes each reactor-overhead round pushes through the verified-echo
/// round trip (smaller than the parser rounds: every byte crosses the
/// loopback twice and is verified twice).
const REACTOR_STREAM: u64 = 8 << 20;
/// Interleaved rounds per reactor variant; minimums are compared.
const REACTOR_ROUNDS: usize = 5;
/// Shards for the overhead reactors — enough to exercise the sharded
/// accept without spreading the tiny workload thin.
const REACTOR_SHARDS: usize = 2;

/// One echoing reactor connection, as in `reactor_scaling`: the relay
/// data plane's hot loop with none of the session machinery.
struct EchoConn {
    fd: i32,
    echoer: Echoer<TcpTransport>,
    t0: Instant,
    backlog: bool,
}

impl EchoConn {
    fn step(&mut self) -> Step {
        let now = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64());
        for _ in 0..4 {
            match self.echoer.pump(now) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => panic!("echo framing broke: {e}"),
            }
        }
        if self.echoer.transport_error().is_some() {
            return Step::Done; // measurer hung up: the normal end
        }
        self.backlog =
            self.echoer.pending_echo() > 0 || self.echoer.transport_mut().pending_send_bytes() > 0;
        Step::Continue
    }
}

impl Driven for EchoConn {
    fn fd(&self) -> i32 {
        self.fd
    }

    fn on_ready(&mut self) -> Step {
        self.step()
    }

    fn on_tick(&mut self) -> Step {
        if self.backlog {
            return self.step();
        }
        Step::Continue
    }

    fn wants_write(&self) -> bool {
        self.backlog
    }
}

fn echo_accept_factory(key: u64) -> Arc<AcceptFn> {
    Arc::new(move |stream: TcpStream, _peer: SocketAddr| {
        let transport = TcpTransport::from_stream(stream).ok()?;
        Some(Box::new(EchoConn {
            fd: transport.raw_fd(),
            echoer: Echoer::new(transport).with_key(key),
            t0: Instant::now(),
            backlog: false,
        }) as Box<dyn Driven>)
    })
}

/// One verified-echo round against the reactor at `addr`: blast
/// `REACTOR_STREAM` bytes down one channel, verify every echoed byte,
/// and return the wall seconds for the full round trip.
fn reactor_round(addr: SocketAddr, key: u64, nonce: u64) -> f64 {
    let t = TcpTransport::connect(addr).expect("dial reactor");
    let mut src = TrafficSource::new(t, nonce, 0).with_key(key);
    let mut back = BlastParser::new().with_key(key);
    let mut verified = 0u64;
    let t0 = Instant::now();
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut stopped = false;
    loop {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        let mut idle = true;
        if !stopped {
            if src.sent_total() >= REACTOR_STREAM {
                src.stop(now);
                stopped = true;
            } else if src.transport_mut().pending_send_bytes() < OUTBOX_HIGH_WATER {
                src.pump(now);
                idle = false;
            } else {
                let _ = src.transport_mut().send(now, &[]);
            }
        }
        if let Ok(bytes) = src.transport_mut().recv(now) {
            if !bytes.is_empty() {
                idle = false;
                for ev in back.push(&bytes).expect("echo framing intact") {
                    if let BlastEvent::Data { bytes, corrupt } = ev {
                        assert_eq!(corrupt, 0, "echo must verify");
                        verified += bytes;
                    }
                }
            }
        }
        if stopped && verified >= src.sent_total() {
            break;
        }
        assert!(Instant::now() < deadline, "echo never drained: {verified}");
        if idle {
            thread::sleep(Duration::from_micros(100));
        }
    }
    assert_eq!(verified, src.sent_total(), "bytes lost in the echo round trip");
    t0.elapsed().as_secs_f64()
}

/// Times the reactor-served verified-echo round trip bare
/// (`Reactor::serve`) vs fully instrumented (`serve_observed` with
/// per-shard histograms, gauges, and the stall watchdog), asserts the
/// same overhead bound, and returns the `reactor` block of
/// `BENCH_obs.json`.
fn reactor_overhead_guard() -> Json {
    let key = secret_channel_key(SECRET);
    let nonce = binding_nonce(SECRET);

    let start = |obs: Option<ReactorObs>| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        let reactor = Reactor::serve_observed(
            Some(listener),
            ReactorConfig { shards: REACTOR_SHARDS, tick: Duration::from_millis(1) },
            echo_accept_factory(key),
            obs,
        )
        .expect("start reactor");
        (reactor, addr)
    };
    let registry = MetricsRegistry::new();
    let (bare_reactor, bare_addr) = start(None);
    let (observed_reactor, observed_addr) = start(Some(ReactorObs {
        registry: registry.clone(),
        prefix: "bench.reactor".to_string(),
        span: Span::root(EventSink::new()),
        stall_budget: Duration::from_millis(50),
    }));

    let mut bare = f64::INFINITY;
    let mut observed = f64::INFINITY;
    for _ in 0..REACTOR_ROUNDS {
        bare = bare.min(reactor_round(bare_addr, key, nonce));
        observed = observed.min(reactor_round(observed_addr, key, nonce));
    }
    bare_reactor.stop();
    bare_reactor.join().expect("bare reactor shards");
    observed_reactor.stop();
    observed_reactor.join().expect("observed reactor shards");

    // The instrumented variant must actually have been measuring.
    let snap = registry.snapshot();
    let dwell_turns: u64 = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.ends_with(".epoll_dwell_us"))
        .map(|(_, h)| h.count)
        .sum();
    assert!(dwell_turns > 0, "observed reactor rounds must feed the histograms");

    let bytes = REACTOR_STREAM as f64;
    let overhead_pct = ((observed - bare) / bare * 100.0).max(0.0);
    println!(
        "reactor overhead: bare {:.1} MB/s, observed {:.1} MB/s, overhead {overhead_pct:.2}%",
        bytes / bare / 1e6,
        bytes / observed / 1e6,
    );
    assert!(
        overhead_pct < OVERHEAD_LIMIT_PCT,
        "observed reactor echo is {overhead_pct:.2}% slower than bare \
         (limit {OVERHEAD_LIMIT_PCT}%)"
    );

    Json::Obj(vec![
        ("stream_bytes".to_string(), Json::Int(REACTOR_STREAM as i128)),
        ("rounds".to_string(), Json::Int(REACTOR_ROUNDS as i128)),
        ("shards".to_string(), Json::Int(REACTOR_SHARDS as i128)),
        ("bare_secs".to_string(), Json::Num(bare)),
        ("observed_secs".to_string(), Json::Num(observed)),
        ("bare_bytes_per_sec".to_string(), Json::Num(bytes / bare)),
        ("observed_bytes_per_sec".to_string(), Json::Num(bytes / observed)),
        ("overhead_pct".to_string(), Json::Num(overhead_pct)),
    ])
}
