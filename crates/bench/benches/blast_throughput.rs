//! Data-plane throughput over loopback TCP with pooled connections.
//!
//! For 1, 2, and 4 data channels checked out of one
//! [`ConnectionPool`], a [`TrafficSource`] per channel blasts
//! pattern-stamped frames at a sink thread that parses and *verifies
//! every payload byte* (the honest-counting path — this bench measures
//! the verified rate, not a memcpy). Connections are approved and
//! parked between rounds, so rounds 2 and 3 ride warm connections: the
//! printed pool stats show dials staying at the channel high-water mark
//! instead of growing per round.
//!
//! The run doubles as an integrity soak: at the end, the sinks must
//! have received exactly what the sources sent, with zero corrupt
//! bytes, across every round and reuse.
//!
//! Plain `harness = false` timing (Criterion is unavailable offline):
//! run with `cargo bench -p flashflow-bench --bench blast_throughput`.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use flashflow_core::pool::{ChannelKind, ConnectionPool};
use flashflow_proto::blast::{BlastParser, TrafficSource};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::Transport;
use flashflow_simnet::time::SimTime;

const CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];
const ROUND_WALL: Duration = Duration::from_millis(300);
/// Pump only while the transport outbox is under this: the source then
/// runs exactly as fast as the kernel + sink drain, with bounded memory.
const OUTBOX_HIGH_WATER: usize = 1 << 20;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    listener.set_nonblocking(true).expect("nonblocking");

    let received = Arc::new(AtomicU64::new(0));
    let corrupt = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Acceptor: every data connection gets a verifying sink thread that
    // counts until the peer hangs up.
    let acceptor = {
        let (received, corrupt, stop) = (received.clone(), corrupt.clone(), stop.clone());
        thread::spawn(move || {
            let mut sinks = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let (received, corrupt) = (received.clone(), corrupt.clone());
                        sinks.push(thread::spawn(move || {
                            let mut t = TcpTransport::from_stream(stream).expect("wrap");
                            let mut parser = BlastParser::new();
                            loop {
                                match t.recv(SimTime::ZERO) {
                                    Ok(bytes) if !bytes.is_empty() => {
                                        parser.push(&bytes).expect("stream framing intact");
                                    }
                                    Ok(_) => thread::sleep(Duration::from_micros(200)),
                                    Err(_) => break,
                                }
                            }
                            received.fetch_add(parser.received_total(), Ordering::SeqCst);
                            corrupt.fetch_add(parser.corrupt_total(), Ordering::SeqCst);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("accept: {e}"),
                }
            }
            for s in sinks {
                let _ = s.join();
            }
        })
    };

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "blast_throughput: loopback TCP, verified pattern frames, \
         {ROUND_WALL:?} per round, {cores} core(s) available"
    );
    println!("{:<10} {:>14} {:>12} {:>8} {:>8}", "channels", "bytes", "MB/s", "dials", "reuses");

    let pool = ConnectionPool::new();
    let mut total_sent = 0u64;
    for channels in CHANNEL_COUNTS {
        let mut sources = Vec::new();
        for chan in 0..channels {
            let conn = pool.checkout(addr, ChannelKind::Data).expect("checkout data channel");
            let handle = conn.reuse_handle();
            let mut src = TrafficSource::new(conn, 0xBE9C_0000 + chan as u64, chan as u32);
            src.greet(SimTime::ZERO);
            src.start(SimTime::ZERO);
            sources.push((src, handle));
        }
        let t0 = Instant::now();
        while t0.elapsed() < ROUND_WALL {
            let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
            let mut all_stalled = true;
            for (src, _) in sources.iter_mut() {
                if src.transport_mut().pending_send_bytes() < OUTBOX_HIGH_WATER {
                    src.pump(now);
                    all_stalled = false;
                } else {
                    // Nudge the queued outbox toward the kernel.
                    let _ = src.transport_mut().send(now, &[]);
                }
            }
            if all_stalled {
                thread::sleep(Duration::from_micros(100));
            }
        }
        let elapsed = t0.elapsed();
        let sent: u64 = sources.iter().map(|(s, _)| s.sent_total()).sum();
        total_sent += sent;
        // Flush the outboxes, then park the warm connections for the
        // next round.
        for (src, handle) in sources.iter_mut() {
            src.stop(SimTime::from_secs_f64(elapsed.as_secs_f64()));
            let deadline = Instant::now() + Duration::from_secs(10);
            while src.transport_mut().pending_send_bytes() > 0 {
                let _ = src.transport_mut().send(SimTime::ZERO, &[]);
                assert!(Instant::now() < deadline, "outbox never drained");
                thread::sleep(Duration::from_micros(200));
            }
            handle.approve();
        }
        drop(sources);
        let mbps = sent as f64 / elapsed.as_secs_f64() / 1e6;
        println!(
            "{:<10} {:>14} {:>12.1} {:>8} {:>8}",
            channels,
            sent,
            mbps,
            pool.dials(),
            pool.reuses()
        );
    }
    assert!(
        pool.reuses() >= (CHANNEL_COUNTS[0] + CHANNEL_COUNTS[1]) as u64,
        "warm connections were not reused across rounds (dials {}, reuses {})",
        pool.dials(),
        pool.reuses()
    );

    // Integrity: close everything, join the sinks, compare the counters.
    let (dials, reuses) = (pool.dials(), pool.reuses());
    drop(pool);
    let deadline = Instant::now() + Duration::from_secs(30);
    while received.load(Ordering::SeqCst) < total_sent {
        assert!(Instant::now() < deadline, "sinks never drained the blast");
        thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    acceptor.join().expect("acceptor");
    assert_eq!(received.load(Ordering::SeqCst), total_sent, "bytes lost on the data plane");
    assert_eq!(corrupt.load(Ordering::SeqCst), 0, "corrupt bytes on a healthy loopback");
    println!(
        "integrity: {total_sent} bytes sent == received, 0 corrupt; \
         {dials} dials served {} checkouts ({reuses} warm reuses)",
        dials + reuses
    );
}
