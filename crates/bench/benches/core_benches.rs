//! Criterion micro-benchmarks of FlashFlow's core algorithms: the
//! allocator, the scheduler, the max-min fair solver, and the metrics
//! analyses — the hot paths of a deployment and of this reproduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use flashflow_core::alloc::greedy_allocate;
use flashflow_core::params::Params;
use flashflow_core::schedule::{build_randomized_schedule, greedy_pack};
use flashflow_simnet::flow::{max_min_rates, AllocFlow};
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;

fn bench_greedy_allocate(c: &mut Criterion) {
    let residual: Vec<f64> = (0..64).map(|i| 1e8 + (i as f64) * 1e6).collect();
    c.bench_function("alloc/greedy_allocate_64_measurers", |b| {
        b.iter(|| greedy_allocate(std::hint::black_box(&residual), 3e9).unwrap())
    });
}

fn relay_set(n: usize) -> Vec<(flashflow_tornet::relay::RelayId, Rate)> {
    use flashflow_simnet::host::HostProfile;
    let mut rng = SimRng::seed_from_u64(1);
    let mut tor = flashflow_tornet::netbuild::TorNet::new();
    let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
    (0..n)
        .map(|i| {
            let r = tor.add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("r{i}")));
            (r, Rate::from_mbit((36.0 * rng.gen_lognormal(0.0, 1.45)).min(998.0)))
        })
        .collect()
}

fn bench_greedy_pack(c: &mut Criterion) {
    let params = Params::paper();
    let relays = relay_set(6500);
    let mut group = c.benchmark_group("schedule");
    group.sample_size(10);
    group.bench_function("greedy_pack_6500_relays", |b| {
        b.iter_batched(
            || relays.clone(),
            |r| greedy_pack(&r, Rate::from_gbit(3.0), &params).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_randomized_schedule(c: &mut Criterion) {
    let params = Params::paper();
    let relays = relay_set(1000);
    c.bench_function("schedule/randomized_period_1000_relays", |b| {
        b.iter(|| build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params, 7).unwrap())
    });
}

fn bench_max_min(c: &mut Criterion) {
    // A shadow-sim-scale allocation: 400 flows over 1500 resources.
    use flashflow_simnet::resource::ResourceId;
    let mut rng = SimRng::seed_from_u64(2);
    let capacities: Vec<f64> = (0..1500).map(|_| rng.gen_range_f64(1e6, 1e9)).collect();
    // Fabricate ResourceIds through an engine.
    let mut eng = flashflow_simnet::engine::Engine::new(Default::default());
    let ids: Vec<ResourceId> = (0..1500)
        .map(|_| {
            eng.add_resource(flashflow_simnet::resource::Resource::pipe(
                "r",
                Rate::from_mbit(1.0),
            ))
        })
        .collect();
    let paths: Vec<Vec<ResourceId>> = (0..400)
        .map(|_| (0..17).map(|_| ids[rng.gen_index(1500)]).collect())
        .collect();
    let flows: Vec<AllocFlow<'_>> = paths
        .iter()
        .map(|p| AllocFlow { path: p, weight: 1.0 + rng.gen_index(4) as f64, cap: None })
        .collect();
    c.bench_function("simnet/max_min_400_flows_1500_resources", |b| {
        b.iter(|| max_min_rates(std::hint::black_box(&capacities), std::hint::black_box(&flows)))
    });
}

fn bench_measurement_slot(c: &mut Criterion) {
    use flashflow_core::measure::{measure_once, };
    use flashflow_core::team::Team;
    use flashflow_simnet::host::HostProfile;
    use flashflow_tornet::netbuild::TorNet;
    use flashflow_tornet::relay::RelayConfig;
    let mut group = c.benchmark_group("core");
    group.sample_size(10);
    group.bench_function("measure_once_30s_slot", |b| {
        b.iter_batched(
            || {
                let mut tor = TorNet::new();
                let m1 = tor.add_host(HostProfile::us_e());
                let m2 = tor.add_host(HostProfile::host_nl());
                let h = tor.add_host(HostProfile::us_sw());
                let relay = tor.add_relay(
                    h,
                    RelayConfig::new("t").with_rate_limit(Rate::from_mbit(250.0)),
                );
                let team = Team::with_capacities(&[
                    (m1, Rate::from_mbit(941.0)),
                    (m2, Rate::from_mbit(1611.0)),
                ]);
                (tor, team, relay)
            },
            |(mut tor, team, relay)| {
                let mut rng = SimRng::seed_from_u64(3);
                measure_once(
                    &mut tor,
                    relay,
                    &team,
                    Rate::from_mbit(250.0),
                    &Params::paper(),
                    &mut rng,
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_archive_analysis(c: &mut Criterion) {
    use flashflow_metrics::error::nwe_series;
    use flashflow_metrics::synth::{generate, SynthConfig};
    let synth = generate(&SynthConfig::test_scale(4));
    let (d, ..) = synth.archive.period_steps();
    c.bench_function("metrics/nwe_series_2y_archive", |b| {
        b.iter(|| nwe_series(std::hint::black_box(&synth.archive), d))
    });
}

fn bench_onion_crypto(c: &mut Criterion) {
    use flashflow_tornet::cell::PAYLOAD_LEN;
    use flashflow_tornet::crypto::{RelayLayer, SharedKey};
    let mut layer = RelayLayer::new(SharedKey::from_raw(42));
    let mut payload = [0xA5u8; PAYLOAD_LEN];
    c.bench_function("tornet/relay_peel_one_cell", |b| {
        b.iter(|| {
            layer.peel_outbound(std::hint::black_box(&mut payload));
        })
    });
}

criterion_group!(
    benches,
    bench_greedy_allocate,
    bench_greedy_pack,
    bench_randomized_schedule,
    bench_max_min,
    bench_measurement_slot,
    bench_archive_analysis,
    bench_onion_crypto
);
criterion_main!(benches);
