//! Micro-benchmarks of FlashFlow's core algorithms: the allocator, the
//! scheduler, the max-min fair solver, the metrics analyses, the onion
//! crypto, and a full measurement slot — the hot paths of a deployment
//! and of this reproduction.
//!
//! Criterion is unavailable in the build environment, so this is a plain
//! `harness = false` benchmark: each case is timed with
//! `std::time::Instant` over enough iterations to smooth noise, and the
//! median per-iteration time is printed in Criterion-like rows.

use std::hint::black_box;
use std::time::Instant;

use flashflow_core::alloc::greedy_allocate;
use flashflow_core::measure::measure_once;
use flashflow_core::params::Params;
use flashflow_core::schedule::{build_randomized_schedule, greedy_pack};
use flashflow_core::team::Team;
use flashflow_simnet::flow::{max_min_rates, AllocFlow};
use flashflow_simnet::host::HostProfile;
use flashflow_simnet::resource::ResourceId;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::{RelayConfig, RelayId};

/// Times `f` over `iters` iterations, repeated `samples` times; returns
/// the median nanoseconds per iteration.
fn time_ns<T>(samples: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    per_iter[per_iter.len() / 2]
}

fn report(name: &str, ns: f64) {
    if ns >= 1e9 {
        println!("{name:<55} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<55} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<55} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("{name:<55} {ns:>12.0} ns/iter");
    }
}

fn bench_greedy_allocate() {
    let residual: Vec<f64> = (0..64).map(|i| 1e8 + (i as f64) * 1e6).collect();
    let ns = time_ns(9, 2000, || greedy_allocate(black_box(&residual), 3e9).unwrap());
    report("alloc/greedy_allocate_64_measurers", ns);
}

fn relay_set(n: usize) -> Vec<(RelayId, Rate)> {
    let mut rng = SimRng::seed_from_u64(1);
    let mut tor = TorNet::new();
    let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
    (0..n)
        .map(|i| {
            let r = tor.add_relay(h, RelayConfig::new(format!("r{i}")));
            (r, Rate::from_mbit((36.0 * rng.gen_lognormal(0.0, 1.45)).min(998.0)))
        })
        .collect()
}

fn bench_greedy_pack() {
    let params = Params::paper();
    let relays = relay_set(6500);
    let ns = time_ns(5, 1, || greedy_pack(&relays, Rate::from_gbit(3.0), &params).unwrap());
    report("schedule/greedy_pack_6500_relays", ns);
}

fn bench_randomized_schedule() {
    let params = Params::paper();
    let relays = relay_set(1000);
    let ns = time_ns(7, 5, || {
        build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params, 7).unwrap()
    });
    report("schedule/randomized_period_1000_relays", ns);
}

fn bench_max_min() {
    // A shadow-sim-scale allocation: 400 flows over 1500 resources.
    let mut rng = SimRng::seed_from_u64(2);
    let capacities: Vec<f64> = (0..1500).map(|_| rng.gen_range_f64(1e6, 1e9)).collect();
    // Fabricate ResourceIds through an engine.
    let mut eng = flashflow_simnet::engine::Engine::new(Default::default());
    let ids: Vec<ResourceId> = (0..1500)
        .map(|_| {
            eng.add_resource(flashflow_simnet::resource::Resource::pipe("r", Rate::from_mbit(1.0)))
        })
        .collect();
    let paths: Vec<Vec<ResourceId>> =
        (0..400).map(|_| (0..17).map(|_| ids[rng.gen_index(1500)]).collect()).collect();
    let flows: Vec<AllocFlow<'_>> = paths
        .iter()
        .map(|p| AllocFlow { path: p, weight: 1.0 + rng.gen_index(4) as f64, cap: None })
        .collect();
    let ns = time_ns(9, 20, || max_min_rates(black_box(&capacities), black_box(&flows)));
    report("simnet/max_min_400_flows_1500_resources", ns);
}

fn bench_measurement_slot() {
    let ns = time_ns(3, 1, || {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let h = tor.add_host(HostProfile::us_sw());
        let relay = tor.add_relay(h, RelayConfig::new("t").with_rate_limit(Rate::from_mbit(250.0)));
        let team =
            Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
        let mut rng = SimRng::seed_from_u64(3);
        measure_once(&mut tor, relay, &team, Rate::from_mbit(250.0), &Params::paper(), &mut rng)
            .unwrap()
    });
    report("core/measure_once_30s_slot", ns);
}

fn bench_archive_analysis() {
    use flashflow_metrics::error::nwe_series;
    use flashflow_metrics::synth::{generate, SynthConfig};
    let synth = generate(&SynthConfig::test_scale(4));
    let (d, ..) = synth.archive.period_steps();
    let ns = time_ns(5, 3, || nwe_series(black_box(&synth.archive), d));
    report("metrics/nwe_series_2y_archive", ns);
}

fn bench_onion_crypto() {
    use flashflow_tornet::cell::PAYLOAD_LEN;
    use flashflow_tornet::crypto::{RelayLayer, SharedKey};
    let mut layer = RelayLayer::new(SharedKey::from_raw(42));
    let mut payload = [0xA5u8; PAYLOAD_LEN];
    let ns = time_ns(9, 5000, || {
        layer.peel_outbound(black_box(&mut payload));
    });
    report("tornet/relay_peel_one_cell", ns);
}

fn main() {
    bench_greedy_allocate();
    bench_greedy_pack();
    bench_randomized_schedule();
    bench_max_min();
    bench_measurement_slot();
    bench_archive_analysis();
    bench_onion_crypto();
}
