//! Scaling benchmark for the sharded period driver: a full 6500-item
//! simulated measurement period (the paper's network size, §7) driven
//! through `ShardedEngine::run_partitioned` at increasing shard counts.
//!
//! Every item is a real protocol conversation — handshake, Go barrier,
//! 30 `SecondReport`s, `SlotDone` — between a coordinator engine and
//! scripted peers over in-memory `Duplex` transports, grouped into
//! slot-sized item groups exactly as `SlotRunner` partitions a batch.
//! The work is embarrassingly parallel across groups (that is the point
//! of the sharding layer), so wall clock should drop as shards go
//! 1 → 4 on a multi-core host; the run also verifies every one of the
//! 6500 items completed cleanly with the expected sample count, so the
//! benchmark doubles as a correctness soak of the fan-in at scale.
//!
//! Plain `harness = false` timing (Criterion is unavailable offline):
//! run with `cargo bench -p flashflow-bench --bench sharded_period`.

use std::time::Instant;

use flashflow_core::engine::EngineEvent;
use flashflow_core::shard::script::{group as scripted_group, ScriptConfig, ScriptedPeer};
use flashflow_core::shard::{GroupRunner, ShardedEngine};
use flashflow_simnet::time::SimDuration;

const TOTAL_ITEMS: usize = 6_500;
const ITEMS_PER_GROUP: usize = 10;
const SLOT_SECS: u32 = 30;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One slot-packed item group: `count` items, each one measurer and one
/// target over thread-local loopback links, driven on simulated seconds
/// (the shared scripted-peer harness from `flashflow_core::shard::script`).
fn group(first_item: usize, count: usize) -> Box<dyn GroupRunner> {
    let items = (0..count)
        .map(|local_item| {
            let rate = 1_000_000 + (first_item + local_item) as u64;
            vec![ScriptedPeer::measurer(rate), ScriptedPeer::target(rate / 8)]
        })
        .collect();
    scripted_group(
        items,
        ScriptConfig {
            slot_secs: SLOT_SECS,
            hard_deadline: SimDuration::from_secs(300),
            ..ScriptConfig::default()
        },
    )
}

fn groups() -> Vec<Box<dyn GroupRunner>> {
    (0..TOTAL_ITEMS)
        .step_by(ITEMS_PER_GROUP)
        .map(|first| group(first, ITEMS_PER_GROUP.min(TOTAL_ITEMS - first)))
        .collect()
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "sharded_period: {TOTAL_ITEMS} items, {ITEMS_PER_GROUP} per group, \
              slot {SLOT_SECS}s, {cores} core(s) available"
    );
    println!("{:<28} {:>12} {:>10}", "shards", "wall clock", "speedup");
    let mut baseline = None;
    for shards in SHARD_COUNTS {
        let start = Instant::now();
        let run = ShardedEngine::run_partitioned(groups(), shards);
        let elapsed = start.elapsed();

        // Correctness soak: every item completed cleanly, every sample
        // arrived, the fan-in lost nothing.
        assert!(run.all_clean(), "shards={shards}: a session failed");
        let completions = run
            .events
            .iter()
            .filter(|e| matches!(e.event, EngineEvent::ItemComplete { .. }))
            .count();
        assert_eq!(completions, TOTAL_ITEMS, "shards={shards}: items lost in the fan-in");
        let samples =
            run.events.iter().filter(|e| matches!(e.event, EngineEvent::Sample { .. })).count();
        assert_eq!(
            samples,
            TOTAL_ITEMS * 2 * SLOT_SECS as usize,
            "shards={shards}: samples lost in the fan-in"
        );

        let secs = elapsed.as_secs_f64();
        let speedup = baseline.get_or_insert(secs).max(1e-9) / secs.max(1e-9);
        println!("{:<28} {:>11.3}s {:>9.2}x", shards, secs, speedup);
    }
    if cores < 2 {
        println!("(single core available: shard counts > 1 cannot improve wall clock here)");
    }
}
