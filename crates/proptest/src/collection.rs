//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let n = self.size.lo + rng.gen_index(span);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
