//! The case-loop configuration and the deterministic RNG behind it.

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Builds a generator whose seed is derived from `tag` (typically the
    /// test's module path and name), optionally perturbed by the
    /// `PROPTEST_SEED` environment variable.
    pub fn deterministic(tag: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.rotate_left(32);
            }
        }
        TestRng::from_seed(h)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        (self.next_u64() % n as u64) as usize
    }
}
