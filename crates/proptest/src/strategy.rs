//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a sampler: it draws
/// a fresh value from the RNG each case, with no shrink tree.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "bad f64 range {}..{}",
            self.start,
            self.end
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                let span = *self.end() as u128 - *self.start() as u128 + 1;
                (*self.start() as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*}
}

uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*}
}

int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
