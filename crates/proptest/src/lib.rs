//! A vendored, dependency-free property-testing shim.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the real `proptest` crate cannot be fetched. This crate implements
//! the subset of its API that the workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`option::of`], [`arbitrary::any`], and the `prop_assert*` /
//! `prop_assume!` macros — on top of a deterministic xoshiro256** RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via the
//!   normal `assert!` panic message (every `prop_assert!` in this
//!   workspace interpolates the relevant values), but no minimization is
//!   attempted.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so runs are reproducible; set
//!   `PROPTEST_SEED=<u64>` to perturb the seed for an exploratory run.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr)
        $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its sampled inputs are uninteresting.
///
/// Expands to `continue` on the case loop, so it is only valid directly
/// inside a `proptest!` body (as in the real crate).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
