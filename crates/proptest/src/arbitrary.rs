//! `any::<T>()` — the full-range strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide-dynamic-range values; property
        // tests in this workspace never want NaN from `any`.
        let mag = rng.next_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
