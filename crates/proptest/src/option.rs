//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        // 1-in-4 None, matching the real crate's default bias toward Some.
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// A strategy yielding `None` sometimes and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
