//! Umbrella crate for the FlashFlow reproduction.
//!
//! Re-exports the workspace crates under short names so the examples and
//! integration tests can use a single dependency:
//!
//! ```
//! use flashflow_repro::core::Params;
//! let p = Params::default();
//! // f = m(1+eps2)/(1-eps1) = 2.25 * 1.05 / 0.80
//! assert!((p.excess_factor() - 2.953).abs() < 0.001);
//! ```

pub use flashflow_balance as balance;
pub use flashflow_core as core;
pub use flashflow_metrics as metrics;
pub use flashflow_proto as proto;
pub use flashflow_shadow as shadow;
pub use flashflow_simnet as simnet;
pub use flashflow_tornet as tornet;
