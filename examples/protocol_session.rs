//! Protocol session walkthrough: one measurement slot executed entirely
//! through the `flashflow-proto` control plane.
//!
//! Builds a two-measurer team and a 600 Mbit/s target (large enough that
//! both measurers must participate), runs the slot through coordinator ↔
//! measurer sessions over the in-memory byte-stream transport, and then
//! demonstrates the failure handling: a measurer that crashes mid-slot
//! is aborted by the coordinator's report timeout and the measurement
//! degrades instead of wedging.
//!
//! Run with: `cargo run --example protocol_session`

use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

fn testbed() -> (TorNet, Team, RelayId) {
    let mut tor = TorNet::new();
    let us_e = tor.add_host(HostProfile::us_e());
    let nl = tor.add_host(HostProfile::host_nl());
    let target_host = tor.add_host(HostProfile::us_sw());
    tor.net.set_rtt(us_e, target_host, SimDuration::from_millis(62));
    tor.net.set_rtt(nl, target_host, SimDuration::from_millis(137));
    let relay = tor.add_relay(
        target_host,
        RelayConfig::new("proto-target").with_rate_limit(Rate::from_mbit(600.0)),
    );
    let team =
        Team::with_capacities(&[(us_e, Rate::from_mbit(941.0)), (nl, Rate::from_mbit(1611.0))]);
    (tor, team, relay)
}

fn main() {
    let params = Params::paper();
    let prior = Rate::from_mbit(600.0);

    // --- A clean slot over the protocol. -----------------------------
    let (mut tor, team, relay) = testbed();
    let mut rng = SimRng::seed_from_u64(1);
    println!("== clean protocol slot ==");
    println!(
        "fingerprint {}  slot {}s  sockets {}",
        hex(&fingerprint_for(relay)[..8]),
        params.slot.as_secs(),
        params.sockets
    );
    let m = SlotRunner::new(&params).measure(&mut tor, relay, &team, prior, &mut rng).unwrap();
    println!(
        "sessions clean: {} | coordinator frames tx {} rx {}",
        m.clean(),
        m.frames_tx,
        m.frames_rx
    );
    println!("  sec |     x (Mbit/s) |  y-accepted |          z");
    for (j, s) in m.measurement.seconds.iter().enumerate().take(5) {
        println!(
            "  {j:>3} | {:>14.1} | {:>11.1} | {:>10.1}",
            s.x * 8.0 / 1e6,
            s.y_accepted * 8.0 / 1e6,
            s.z * 8.0 / 1e6
        );
    }
    println!("  ... ({} seconds total)", m.measurement.seconds.len());
    println!(
        "estimate {} (verified: {}, conclusive: {})",
        m.measurement.estimate,
        m.measurement.verified(),
        m.measurement.conclusive(&params)
    );

    // --- The same slot with a crashing measurer. ----------------------
    let (mut tor, team, relay) = testbed();
    let mut rng = SimRng::seed_from_u64(2);
    println!("\n== slot with a measurer crash at t+5s ==");
    let reserved = vec![Rate::ZERO; team.len()];
    let allocations = team.allocate(prior, &params, &reserved).unwrap();
    let assignments = assignments_for(&team, &allocations, &params);
    let faults = vec![FaultSpec {
        item: 0,
        host: team.measurers[0].host,
        fault: PeerFault::StallAfterSeconds(5),
    }];
    let start = tor.now();
    let m = SlotRunner::new(&params).with_faults(faults).run_one(
        &mut tor,
        relay,
        &assignments,
        TargetBehavior::Honest,
        &mut rng,
    );
    for f in &m.failures {
        println!("peer {:?} ({:?}) aborted: {}", f.host, f.role, f.reason);
    }
    println!("slot still terminated after {} of simulated time", tor.now().duration_since(start));
    println!(
        "degraded estimate {} over {} reported seconds",
        m.measurement.estimate,
        m.measurement.seconds.len()
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
