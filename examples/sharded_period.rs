//! A sharded measurement period in miniature: item groups partitioned
//! across worker threads, each with its own `MeasurementEngine`, events
//! fanned into one stream and samples into a shared ledger.
//!
//! This is the deployment topology of the period driver (the full-size
//! version is `crates/bench/benches/sharded_period.rs`, and the real
//! multi-process variant — against spawned `flashflow-measurer`
//! binaries — is `crates/measurer/tests/multiprocess.rs`). Here each
//! group scripts its peers over in-memory transports so the example
//! runs instantly and deterministically.
//!
//! Run with: `cargo run --example sharded_period`

use flashflow_repro::core::measure::build_second_samples;
use flashflow_repro::core::shard::script::{group as scripted_group, ScriptConfig, ScriptedPeer};
use flashflow_repro::core::shard::{GroupRunner, ShardedEngine};
use flashflow_repro::simnet::stats::median;

const ITEMS: usize = 6;
const SHARDS: usize = 2;
const SLOT_SECS: u32 = 5;

/// One measurement item: a measurer blasting `rate` bytes per second
/// and the target reporting a tenth of that as background, both
/// scripted over thread-local loopback links (the shared harness from
/// `flashflow_core::shard::script`).
fn item_group(item: usize) -> Box<dyn GroupRunner> {
    let rate = 10_000_000 * (item as u64 + 1);
    scripted_group(
        vec![vec![ScriptedPeer::measurer(rate), ScriptedPeer::target(rate / 10)]],
        ScriptConfig { slot_secs: SLOT_SECS, ..ScriptConfig::default() },
    )
}

fn main() {
    println!("sharded period: {ITEMS} items across {SHARDS} worker threads");
    let run =
        ShardedEngine::run_partitioned((0..ITEMS).map(item_group).collect::<Vec<_>>(), SHARDS);

    assert!(run.all_clean(), "a session failed");
    println!("fan-in stream: {} events, group-local order preserved", run.events.len());
    for group in 0..ITEMS {
        let (x, y) = run.merged_series(group, 0);
        let seconds = build_second_samples(&x, &y, 0.25);
        let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
        let estimate = median(&z).expect("seconds");
        let (tx, rx) = run.snapshots[group].peers().fold((0, 0), |(tx, rx), p| {
            let (ptx, prx) = run.snapshots[group].frames(p);
            (tx + ptx, rx + prx)
        });
        println!(
            "  item {group}: estimate {:>6.1} MB/s  (frames tx {tx}, rx {rx})",
            estimate / 1e6
        );
    }
}
