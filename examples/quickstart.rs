//! Quickstart: measure one Tor relay with FlashFlow.
//!
//! Builds a two-measurer team (US-E + NL from the paper's Table 1), a
//! 250 Mbit/s target relay on US-SW, runs one 30-second measurement, and
//! prints the per-second protocol records and the final estimate.
//!
//! Run with: `cargo run --example quickstart`

use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

fn main() {
    // 1. A small Internet: two measurer hosts and the target host.
    let mut tor = TorNet::new();
    let us_e = tor.add_host(HostProfile::us_e());
    let nl = tor.add_host(HostProfile::host_nl());
    let target_host = tor.add_host(HostProfile::us_sw());
    tor.net.set_rtt(us_e, target_host, SimDuration::from_millis(62));
    tor.net.set_rtt(nl, target_host, SimDuration::from_millis(137));

    // 2. The target: a relay rate-limited to 250 Mbit/s.
    let relay = tor.add_relay(
        target_host,
        RelayConfig::new("example-target").with_rate_limit(Rate::from_mbit(250.0)),
    );

    // 3. The measurement team and the paper's parameters.
    let team =
        Team::with_capacities(&[(us_e, Rate::from_mbit(941.0)), (nl, Rate::from_mbit(1611.0))]);
    let params = Params::paper();
    println!(
        "team capacity {:.0} Mbit/s, excess factor f = {:.2}",
        team.total_capacity().as_mbit(),
        params.excess_factor()
    );

    // 4. Measure, starting from a 250 Mbit/s prior.
    let mut rng = SimRng::seed_from_u64(1);
    let outcome = measure_relay(
        &mut tor,
        relay,
        &team,
        Rate::from_mbit(250.0),
        &params,
        TargetBehavior::Honest,
        &mut rng,
        5,
    )
    .expect("team has capacity for this prior");

    // 5. Inspect the result.
    let last = outcome.rounds.last().expect("at least one round");
    println!("per-second records (x = measurement, y = accepted background, z = x + y):");
    for (j, s) in last.seconds.iter().enumerate().step_by(5) {
        println!(
            "  t={j:2}s  x={:7.1}  y={:6.1}  z={:7.1} Mbit/s",
            s.x * 8.0 / 1e6,
            s.y_accepted * 8.0 / 1e6,
            s.z * 8.0 / 1e6
        );
    }
    println!(
        "estimate: {} after {} round(s); verified: {}; converged: {}",
        outcome.estimate,
        outcome.rounds.len(),
        last.verification.passed(),
        outcome.converged()
    );
    assert!(outcome.converged(), "a correct prior should converge in one round");
}
