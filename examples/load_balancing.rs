//! Load balancing end to end: measure a private Tor network with both
//! TorFlow and FlashFlow, then compare client performance under each
//! system's weights (the paper's §7 experiment at example scale).
//!
//! Run with: `cargo run --example load_balancing --release`

use flashflow_repro::shadow::prelude::*;
use flashflow_repro::simnet::prelude::*;

fn main() {
    let cfg = ShadowConfig::test_scale(21);
    println!(
        "private network: {} relays, {} markov clients, {} benchmark clients",
        cfg.relays, cfg.markov_clients, cfg.benchmark_clients
    );

    let exp = run_experiment(&cfg, &[1.0]);
    println!(
        "network weight error: FlashFlow {:.1}% vs TorFlow {:.1}%",
        exp.measurement.flashflow_nwe * 100.0,
        exp.measurement.torflow_nwe * 100.0
    );

    for load in &exp.loads {
        let med_1m = median(&load.ttlb(SizeClass::Medium)).unwrap_or(f64::NAN);
        println!(
            "{:9?} @ {:.0}%: {} transfers, median 1MiB TTLB {:.2}s, timeouts {:.1}%",
            load.system,
            load.load * 100.0,
            load.records.len(),
            med_1m,
            load.failure_rate() * 100.0
        );
    }
    assert!(
        exp.measurement.flashflow_nwe < exp.measurement.torflow_nwe,
        "FlashFlow should balance better"
    );
}
