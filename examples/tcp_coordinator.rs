//! A real coordinator process driving measurer threads over TCP.
//!
//! This is the deployment shape from §4.1/§7 in miniature: the
//! `MeasurementEngine` (the coordinator) on the main thread, two
//! measurers and the target relay's reporting endpoint each on their own
//! OS thread, and nothing between them but loopback TCP carrying the
//! length-prefixed control frames. The sessions, timeouts, nonce
//! handshake, and sample quarantine are the exact same hardened code the
//! deterministic simulation exercises — only the transport differs.
//!
//! Run with: `cargo run --example tcp_coordinator`

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use flashflow_repro::core::engine::{EngineEvent, MeasurementEngine, SampleLedger};
use flashflow_repro::core::measure::build_second_samples;
use flashflow_repro::proto::endpoint::Endpoint;
use flashflow_repro::proto::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_repro::proto::session::{
    CoordinatorSession, MeasurerAction, MeasurerSession, SessionTimeouts,
};
use flashflow_repro::proto::tcp::TcpTransport;
use flashflow_repro::simnet::stats::median;
use flashflow_repro::simnet::time::SimTime;

const SLOT_SECS: u32 = 5;

/// OS-seeded random u64 for handshake nonces (std-only; the simulation
/// paths use the deterministic `SimRng` instead).
fn random_nonce() -> u64 {
    RandomState::new().build_hasher().finish()
}

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    println!("coordinator listening on {addr}");

    // (name, role, per-second measured bytes, per-second background bytes)
    let peers: [(&str, PeerRole, u64, u64); 3] = [
        ("measurer-us-e", PeerRole::Measurer, 40_000_000, 0),
        ("measurer-nl", PeerRole::Measurer, 20_000_000, 0),
        ("target-relay", PeerRole::Target, 0, 2_000_000),
    ];
    let timeouts = SessionTimeouts::default();
    let mut builder = MeasurementEngine::builder();
    let mut threads = Vec::new();

    for (ix, &(name, role, measured, bg)) in peers.iter().enumerate() {
        let token = [ix as u8 + 1; AUTH_TOKEN_LEN];
        // Spawn-then-accept keeps connection order deterministic.
        let handle = thread::spawn(move || {
            let transport = TcpTransport::connect(addr).expect("connect");
            let mut endpoint =
                Endpoint::new(MeasurerSession::new(token, role, ix as u64, timeouts), transport);
            let t0 = Instant::now();
            let mut started = false;
            let mut reported = 0u32;
            loop {
                let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
                endpoint.pump(now);
                endpoint.tick(now);
                while let Some(action) = endpoint.session_mut().poll_action() {
                    match action {
                        MeasurerAction::Prepare { spec } => println!(
                            "[{name}] preparing: {} sockets toward fp {:02x}{:02x}…",
                            spec.sockets, spec.relay_fp[0], spec.relay_fp[1]
                        ),
                        MeasurerAction::Start { .. } => {
                            println!("[{name}] go — blasting");
                            started = true;
                        }
                        MeasurerAction::Stop => println!("[{name}] stopped"),
                    }
                }
                if started && reported < SLOT_SECS && !endpoint.is_terminal() {
                    // A real measurer reads these numbers off its sockets;
                    // here each thread scripts a steady rate.
                    endpoint.session_mut().report_second(bg, measured);
                    reported += 1;
                    // Pace roughly like a per-second reporter (sped up
                    // 10×; the protocol does not care).
                    thread::sleep(Duration::from_millis(100));
                }
                if endpoint.is_terminal() {
                    for _ in 0..3 {
                        endpoint.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
                        thread::sleep(Duration::from_millis(1));
                    }
                    return;
                }
                thread::sleep(Duration::from_millis(1));
            }
        });
        threads.push(handle);

        let (stream, peer_addr) = listener.accept().expect("accept");
        println!("accepted {name} from {peer_addr}");
        let spec = MeasureSpec {
            relay_fp: [0xAB; FINGERPRINT_LEN],
            slot_secs: SLOT_SECS,
            sockets: if role == PeerRole::Measurer { 80 } else { 0 },
            rate_cap: measured,
            ..MeasureSpec::default()
        };
        builder.add_peer(
            0,
            CoordinatorSession::new(token, role, spec, random_nonce(), timeouts),
            Box::new(TcpTransport::from_stream(stream).expect("wrap")),
        );
    }

    // Drive the engine on wall-clock time until the slot completes.
    let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
    let t0 = Instant::now();
    let events = engine.run_to_completion(|| {
        thread::sleep(Duration::from_millis(1));
        SimTime::from_secs_f64(t0.elapsed().as_secs_f64())
    });
    for handle in threads {
        handle.join().expect("peer thread");
    }

    let mut ledger = SampleLedger::new();
    for event in &events {
        ledger.observe(event);
        match event {
            EngineEvent::GoReleased { at, .. } => {
                println!("[coordinator] barrier released at {at}")
            }
            EngineEvent::PeerDone { peer } => println!("[coordinator] peer {peer:?} done"),
            EngineEvent::PeerFailed { peer, reason } => {
                println!("[coordinator] peer {peer:?} FAILED: {reason}");
            }
            _ => {}
        }
    }

    let (x, y) = ledger.merged_series(&engine, 0);
    let seconds = build_second_samples(&x, &y, 0.25);
    let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
    let estimate = median(&z).unwrap_or(0.0);
    println!("\nper-second series ({} seconds):", seconds.len());
    for (j, s) in seconds.iter().enumerate() {
        println!(
            "  sec {j}: x {:>6.1} MB  y {:>4.1} MB  z {:>6.1} MB",
            s.x / 1e6,
            s.y_accepted / 1e6,
            s.z / 1e6
        );
    }
    println!(
        "estimate: {:.1} MB/s over TCP in {:.0} ms of wall time",
        estimate / 1e6,
        t0.elapsed().as_secs_f64() * 1e3
    );
}
