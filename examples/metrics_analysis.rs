//! The §3 analysis in miniature: generate a synthetic metrics archive,
//! quantify capacity/weight error (Eqs. 1-6), and run the §3.4 speed
//! test that reveals the hidden capacity.
//!
//! Run with: `cargo run --example metrics_analysis --release`

use flashflow_repro::metrics::prelude::*;
use flashflow_repro::simnet::prelude::*;

fn main() {
    // Two simulated years of descriptors and consensuses.
    let synth = generate(&SynthConfig::test_scale(5));
    let archive = &synth.archive;
    println!("archive: {} relays over {} steps", archive.relay_count(), archive.steps);

    let (day, _, _, year) = archive.period_steps();
    let rce_day = mean_rce_per_relay(archive, day, day * 3);
    let rce_year = mean_rce_per_relay(archive, year, day * 3);
    println!(
        "median mean capacity error: {:.1}% (day window) vs {:.1}% (year window)",
        median(&rce_day).unwrap() * 100.0,
        median(&rce_year).unwrap() * 100.0
    );

    let nwe = nwe_series(archive, day);
    println!("median network weight error: {:.1}%", median(&nwe[nwe.len() / 2..]).unwrap() * 100.0);

    // The speed test: flood every relay and watch the estimates jump.
    let outcome = run_speed_test(&SpeedTestConfig::test_scale(5));
    println!(
        "speed test: baseline {:.1} Gbit/s -> peak {:.1} Gbit/s (+{:.0}%), {} measured / {} timeouts",
        outcome.baseline_capacity() * 8.0 / 1e9,
        outcome.peak_capacity() * 8.0 / 1e9,
        outcome.discovered_fraction() * 100.0,
        outcome.measured,
        outcome.timeouts
    );
    assert!(outcome.discovered_fraction() > 0.15);
}
