//! Whole-network measurement: schedule and measure a 60-relay network
//! with one BWAuth and its 3-measurer team, then aggregate three BWAuths'
//! files with the DirAuth median.
//!
//! Run with: `cargo run --example measure_network`

use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

fn main() {
    let params = Params::paper();

    // A network of 60 relays with log-normal capacities.
    let mut tor = TorNet::new();
    let mut rng = SimRng::seed_from_u64(7);
    let mut relays = Vec::new();
    for i in 0..60 {
        let cap = Rate::from_mbit((20.0 * rng.gen_lognormal(0.0, 1.0)).min(400.0));
        let host = tor.add_host(HostProfile::new(format!("host-{i}"), cap));
        let relay = tor.add_relay(host, RelayConfig::new(format!("relay-{i}")));
        relays.push((relay, cap));
    }

    // Three measurers with 1 Gbit/s each.
    let m_hosts: Vec<_> = (0..3)
        .map(|i| tor.add_host(HostProfile::new(format!("measurer-{i}"), Rate::from_gbit(1.0))))
        .collect();
    let team = Team::with_capacities(
        &m_hosts.iter().map(|h| (*h, Rate::from_gbit(1.0))).collect::<Vec<_>>(),
    );

    // The period schedule: seeded, randomized, capacity-packed.
    let schedule = build_randomized_schedule(&relays, team.total_capacity(), &params, 99)
        .expect("schedulable");
    println!(
        "scheduled {} measurements across {} slots (last busy slot {})",
        schedule.measurement_count(),
        schedule.slots.len(),
        schedule.last_busy_slot().unwrap()
    );

    // Three independent BWAuths measure; the DirAuths take the median.
    let mut files = Vec::new();
    for (i, seed) in [(0u64, 11u64), (1, 22), (2, 33)] {
        let mut auth = BwAuth::new(format!("bwauth-{i}"), team.clone(), params, seed);
        let file = auth.measure_network(&mut tor, &relays, &|_| TargetBehavior::Honest);
        println!("bwauth-{i}: measured {} relays", file.entries.len());
        files.push(file);
    }
    let consensus_caps = aggregate_bwauths(&files);

    // Compare against ground truth.
    let mut errors: Vec<f64> = Vec::new();
    for (relay, true_cap) in &relays {
        let est = consensus_caps[relay];
        errors.push((1.0 - est.bytes_per_sec() / true_cap.bytes_per_sec()).abs());
    }
    let med = median(&errors).unwrap();
    println!("median capacity error vs ground truth: {:.1}%", med * 100.0);
    assert!(med < 0.25, "median error too high: {med}");
}
