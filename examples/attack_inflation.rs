//! Security demo: a malicious relay that lies about its background
//! traffic gains at most 1/(1-r) = 1.33x — while the same relay attacking
//! TorFlow gains 177x.
//!
//! Run with: `cargo run --example attack_inflation`

use flashflow_repro::balance::attacks::{flashflow_advantage_bound, torflow_attack};
use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

fn main() {
    let params = Params::paper();

    // --- FlashFlow: the §5 bounded-inflation attack ---
    let mut tor = TorNet::new();
    let us_e = tor.add_host(HostProfile::us_e());
    let nl = tor.add_host(HostProfile::host_nl());
    let host = tor.add_host(HostProfile::us_sw());
    let true_capacity = Rate::from_mbit(200.0);
    // The liar forwards no client traffic during its measurement but
    // reports the maximum the ratio allows.
    let liar = tor.add_relay(
        host,
        RelayConfig::new("liar").with_rate_limit(true_capacity).with_inflated_reporting(),
    );
    let team =
        Team::with_capacities(&[(us_e, Rate::from_mbit(941.0)), (nl, Rate::from_mbit(1611.0))]);
    let mut rng = SimRng::seed_from_u64(2);
    let m =
        measure_once(&mut tor, liar, &team, true_capacity, &params, &mut rng).expect("allocatable");
    let gained = m.estimate.as_mbit() / true_capacity.as_mbit();
    println!(
        "FlashFlow: liar with true capacity {} measured at {} => {:.2}x \
         (analytical bound {:.2}x)",
        true_capacity,
        m.estimate,
        gained,
        flashflow_advantage_bound(params.ratio)
    );
    assert!(gained <= flashflow_advantage_bound(params.ratio) * 1.02);

    // --- TorFlow: the same adversary simply lies in its descriptor ---
    let outcome = torflow_attack(10_000, 177.0);
    println!(
        "TorFlow:   false advertised-bandwidth report => {:.0}x advantage",
        outcome.advantage()
    );

    // --- and forging echoes instead gets the relay caught ---
    let mut rng = SimRng::seed_from_u64(3);
    let outcome = spot_check(
        125e6 * 30.0, // a 30-second gigabit measurement
        params.check_probability,
        TargetBehavior::Forging { fraction: 1.0 },
        &mut rng,
    );
    println!(
        "forging every echo: {} of {} spot-checked cells mismatched -> measurement voided",
        outcome.mismatches, outcome.cells_checked
    );
    assert!(!outcome.passed());
}
