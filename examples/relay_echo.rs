//! Quickstart for the paper's **full topology**, in one process: a
//! coordinator commands two measurers and one target relay; at `Go`
//! the measurers blast the relay over data channels, the relay echoes
//! every verified byte back while admitting capped background traffic,
//! and all three report per second. The estimate is echoed measurement
//! bytes plus ratio-clamped background — §4.1 end to end, over
//! in-memory transports on a simulated clock.
//!
//! The deployed twin of this wiring is `flashflow-core::echo` +
//! `crates/relay` + `crates/measurer` over loopback TCP (see
//! `crates/relay/tests/three_party.rs`).
//!
//! Run with: `cargo run --example relay_echo`

use flashflow_repro::core::engine::{MeasurementEngine, SampleLedger};
use flashflow_repro::core::measure::build_second_samples;
use flashflow_repro::proto::blast::{
    binding_nonce, secret_channel_key, BackgroundMeter, BlastEvent, BlastParser, ByteCounter,
    Echoer, TrafficSource,
};
use flashflow_repro::proto::endpoint::Endpoint;
use flashflow_repro::proto::msg::{
    MeasureSpec, PeerRole, TargetEndpoint, AUTH_TOKEN_LEN, FINGERPRINT_LEN,
};
use flashflow_repro::proto::session::{
    CoordinatorSession, MeasurerAction, MeasurerSession, RelaySession, SessionState as _,
    SessionTimeouts,
};
use flashflow_repro::proto::transport::{Duplex, DuplexEnd, Transport as _};
use flashflow_repro::simnet::stats::median;
use flashflow_repro::simnet::time::SimTime;

const SLOT_SECS: u32 = 5;
const RATIO: f64 = 0.25;
const MEASURER_CAPS: [u64; 2] = [40_000, 20_000];
const BG_OFFERED: u64 = 9_000;
const BG_ALLOWANCE: u64 = 5_000;
const SECRET: u64 = 0x0EC0_5EC2_E7D0_0001;

/// One measurer: its control endpoint plus its echo lane to the relay.
struct Measurer {
    control: Endpoint<MeasurerSession, DuplexEnd>,
    source: Option<TrafficSource<DuplexEnd>>,
    back: BlastParser,
    verified: ByteCounter,
    counted_through: u64,
    reported: u32,
}

fn main() {
    let token = [7u8; AUTH_TOKEN_LEN];
    let timeouts = SessionTimeouts::default();
    let nonce = binding_nonce(SECRET);
    let key = secret_channel_key(SECRET);

    // Control wiring: the coordinator's engine holds one session per
    // peer; the peer halves live in this function.
    let mut builder = MeasurementEngine::builder();
    let mut measurers = Vec::new();
    let mut echo_lanes: Vec<Echoer<DuplexEnd>> = Vec::new();
    for (ix, &cap) in MEASURER_CAPS.iter().enumerate() {
        let spec = MeasureSpec {
            relay_fp: [0xEC; FINGERPRINT_LEN],
            slot_secs: SLOT_SECS,
            sockets: 1,
            rate_cap: cap,
            // In-process there is nothing to dial — the example wires
            // the data lanes itself — but the secret still rides the
            // command, exactly as it does over TCP.
            target: TargetEndpoint::NONE,
            measurement_secret: SECRET,
            trace_id: 0,
        };
        let (ca, cb) = Duplex::loopback().into_endpoints();
        builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec, 100 + ix as u64, timeouts)
                .with_report_ahead_cap(SLOT_SECS),
            Box::new(ca),
        );
        measurers.push(Measurer {
            control: Endpoint::new(
                MeasurerSession::new(token, PeerRole::Measurer, ix as u64, timeouts),
                cb,
            ),
            source: None,
            back: BlastParser::new().with_key(key),
            verified: ByteCounter::new(),
            counted_through: 0,
            reported: 0,
        });
    }
    // The relay's reporting session (target role); its rate_cap is the
    // background allowance.
    let relay_spec = MeasureSpec {
        relay_fp: [0xEC; FINGERPRINT_LEN],
        slot_secs: SLOT_SECS,
        sockets: 0,
        rate_cap: BG_ALLOWANCE,
        target: TargetEndpoint::NONE,
        measurement_secret: SECRET,
        trace_id: 0,
    };
    let (ca, cb) = Duplex::loopback().into_endpoints();
    builder.add_peer(
        0,
        CoordinatorSession::new(token, PeerRole::Target, relay_spec, 200, timeouts)
            .with_report_ahead_cap(SLOT_SECS),
        Box::new(ca),
    );
    let mut relay = Endpoint::new(RelaySession::new(token, 99, timeouts), cb);
    let mut meter = BackgroundMeter::new(BG_OFFERED);
    let mut relay_echoed = ByteCounter::new();
    let mut relay_echoed_through = 0u64;
    let mut relay_bg_through = 0u64;
    let mut relay_reported = 0u32;
    let mut relay_running = false;

    let mut engine = builder.hard_deadline(SimTime::from_secs(120)).build(SimTime::ZERO);
    let mut ledger = SampleLedger::new();
    let mut events = Vec::new();

    for tick in 0..2_000u64 {
        let now = SimTime::from_secs_f64(tick as f64 * 0.05);
        // Move control bytes until the tick quiesces.
        loop {
            let mut moved = engine.pump(now);
            for m in measurers.iter_mut() {
                moved |= m.control.pump(now);
            }
            moved |= relay.pump(now);
            if !moved {
                break;
            }
        }
        // Relay side: register the measurement, start the clocks at Go.
        while let Some(action) = relay.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { .. } => {
                    let binding = relay.session().echo_binding().expect("command accepted");
                    assert_eq!(binding.binding_nonce, nonce);
                    meter.set_cap(binding.background_allowance);
                }
                MeasurerAction::Start { .. } => {
                    relay_running = true;
                    meter.start(now);
                    relay_echoed.start(now);
                }
                MeasurerAction::Stop => {}
            }
        }
        // Measurer side: dial the echo lanes at Go (a fresh Duplex per
        // measurer stands in for the TCP dial to the relay's listener).
        for (ix, m) in measurers.iter_mut().enumerate() {
            while let Some(action) = m.control.session_mut().poll_action() {
                if let MeasurerAction::Start { spec } = action {
                    let (me, relay_end) = Duplex::loopback().into_endpoints();
                    let mut src = TrafficSource::new(me, nonce, ix as u32).with_key(key);
                    src.set_rate_cap(spec.rate_cap);
                    src.greet(now);
                    src.start(now);
                    m.source = Some(src);
                    m.verified.start(now);
                    let mut echoer = Echoer::new(relay_end).with_key(key);
                    echoer.start(now);
                    // The relay's session accounts the bound channel.
                    let hello = flashflow_repro::proto::blast::DataChannelHello {
                        nonce,
                        channel: ix as u32,
                    };
                    assert!(relay.session_mut().bind_channel(hello), "hello bound");
                    echo_lanes.push(echoer);
                }
            }
        }
        // Data plane: blast → echo → verify, all on this tick.
        let mut relay_echo_delta = 0u64;
        for (m, echoer) in measurers.iter_mut().zip(echo_lanes.iter_mut()) {
            let before = echoer.echoed_total();
            if let Some(src) = m.source.as_mut() {
                src.pump(now);
                echoer.pump(now).expect("clean inbound stream");
                relay_echo_delta += echoer.echoed_total() - before;
                let bytes = src.transport_mut().recv(now).expect("echo stream open");
                for ev in m.back.push(&bytes).expect("clean echo stream") {
                    if let BlastEvent::Data { bytes, corrupt } = ev {
                        m.verified.add(now, bytes - corrupt);
                    }
                }
            }
        }
        if relay_echoed.is_running() && relay_echo_delta > 0 {
            relay_echoed.add(now, relay_echo_delta);
        } else {
            relay_echoed.roll(now);
        }
        meter.tick(now);
        // Reports: one per completed second on each peer's own counters.
        for m in measurers.iter_mut() {
            while (m.reported as usize) < m.verified.completed().len()
                && m.reported < SLOT_SECS
                && !m.control.is_terminal()
            {
                let through: u64 = m.verified.completed()[..=m.reported as usize].iter().sum();
                let delta = through - m.counted_through;
                m.counted_through = through;
                m.control.session_mut().report_second(0, delta);
                m.reported += 1;
            }
        }
        if relay_running {
            let complete = relay_echoed.completed().len().min(meter.completed_seconds().len());
            while (relay_reported as usize) < complete
                && relay_reported < SLOT_SECS
                && !relay.is_terminal()
            {
                let j = relay_reported as usize;
                let echoed: u64 = relay_echoed.completed()[..=j].iter().sum();
                let echo_delta = echoed - relay_echoed_through;
                relay_echoed_through = echoed;
                let bg: u64 = meter.completed_seconds()[..=j].iter().sum();
                let bg_delta = bg - relay_bg_through;
                relay_bg_through = bg;
                relay.session_mut().report_second(bg_delta, echo_delta);
                relay_reported += 1;
            }
        }
        for m in measurers.iter_mut() {
            m.control.tick(now);
        }
        relay.tick(now);
        engine.finish_tick(now);
        while let Some(ev) = engine.poll_event() {
            ledger.observe(&ev);
            events.push(ev);
        }
        if engine.is_finished() {
            break;
        }
    }
    assert!(engine.is_finished(), "topology did not complete: {events:?}");

    // The estimate, exactly as §4.1 computes it.
    let (x, y) = ledger.merged_series(&engine, 0);
    let seconds = build_second_samples(&x, &y, RATIO);
    let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
    let estimate = median(&z).expect("seconds");
    let honest_x: u64 = MEASURER_CAPS.iter().sum();
    println!("echoed measurement rate (x): ~{honest_x} B/s commanded");
    println!("admitted background    (y): {BG_ALLOWANCE} B/s (offered {BG_OFFERED}, capped)");
    println!("estimate  median(x+y clamped): {estimate:.0} B/s");
    println!(
        "audit: {} rows, {} divergent",
        ledger.rows(&engine, 0).len(),
        ledger.divergent_count(&engine, 0)
    );
    let expect = (honest_x + BG_ALLOWANCE) as f64;
    assert!(
        (estimate - expect).abs() / expect < 0.10,
        "estimate {estimate:.0} differs from expected {expect:.0} by >10%"
    );
    assert_eq!(ledger.divergent_count(&engine, 0), 0, "honest topology flagged");
    println!("ok: full echo topology reproduced the commanded capacity");
}
